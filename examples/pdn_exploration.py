#!/usr/bin/env python3
"""PDN design-space exploration with the simulation substrate.

The library is useful below the ML layer too: this example uses the PDN
modelling and simulation subpackages directly to explore how decap budget and
bump count trade off against worst-case dynamic noise — the kind of what-if
loop a power-integrity engineer runs before committing a floorplan.

For each candidate PDN configuration it:

1. builds the design (grid + package + loads),
2. runs a static IR analysis and a dynamic power-virus simulation,
3. reports mean/max droop, the die-package resonance frequency, and the
   hotspot count, and finally
4. prints the classical-solver cross-check (direct LU vs multigrid).

Run with:  python examples/pdn_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.pdn import DesignSpec, LayerSpec, PackageModel, make_design
from repro.sim import DynamicNoiseAnalysis, MultigridSolver, run_static_analysis
from repro.workloads import build_scenario


def build_candidate(name: str, decap_per_area: float, bump_grid: int) -> DesignSpec:
    """A mid-size design with the given decap density and bump array."""
    return DesignSpec(
        name=name,
        die_width=1500.0,
        die_height=1500.0,
        tile_rows=16,
        tile_cols=16,
        layers=(
            LayerSpec(nx=32, ny=32, sheet_resistance=0.005, name="M1"),
            LayerSpec(nx=16, ny=16, sheet_resistance=0.002, name="M5"),
            LayerSpec(nx=8, ny=8, sheet_resistance=0.0008, name="M9"),
        ),
        bump_rows=bump_grid,
        bump_cols=bump_grid,
        num_loads=300,
        total_current=7.0,
        num_clusters=3,
        decap_per_area=decap_per_area,
        package=PackageModel(bump_resistance=30e-3, bump_inductance=12e-12,
                             bulk_decap=1e-9, bulk_decap_esr=5e-3),
    )


def main() -> None:
    candidates = [
        build_candidate("lean-decap / 4x4 bumps", 1.0e-15, 4),
        build_candidate("lean-decap / 6x6 bumps", 1.0e-15, 6),
        build_candidate("rich-decap / 4x4 bumps", 4.0e-15, 4),
        build_candidate("rich-decap / 6x6 bumps", 4.0e-15, 6),
    ]

    dt = 1e-11
    print(f"{'candidate':<28} {'static max':>10} {'dynamic max':>11} "
          f"{'mean WN':>8} {'hotspots':>8} {'resonance':>10}")
    for spec in candidates:
        design = make_design(spec, seed=0)
        static = run_static_analysis(design)
        virus = build_scenario("power_virus", design, num_steps=300, dt=dt)
        dynamic = DynamicNoiseAnalysis(design, dt).run(virus)
        resonance = spec.package.resonance_frequency(design.grid.total_decap)
        hotspots = int(np.count_nonzero(dynamic.hotspot_map))
        print(
            f"{spec.name:<28} {static.worst_case * 1e3:9.1f}mV {dynamic.worst_noise * 1e3:10.1f}mV "
            f"{dynamic.mean_tile_noise * 1e3:7.1f}mV {hotspots:8d} {resonance / 1e9:8.2f}GHz"
        )

    # Cross-check the simulation substrate: the multigrid solver reproduces
    # the direct static solution on the last candidate.
    design = make_design(candidates[-1], seed=0)
    matrix = design.mna.static_conductance()
    rhs = design.mna.load_vector(design.loads.nominal_currents)
    from repro.sim import DirectSolver

    direct = DirectSolver(matrix).solve(rhs)
    multigrid = MultigridSolver(matrix, tolerance=1e-10).solve(rhs)
    print(f"\nsolver cross-check: max |direct - multigrid| = "
          f"{np.max(np.abs(direct - multigrid)):.3e} V")


if __name__ == "__main__":
    main()
