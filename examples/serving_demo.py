#!/usr/bin/env python3
"""Serve worst-case noise screening for multiple designs from one process.

The paper's punchline is that the trained CNN screens test vectors orders of
magnitude faster than the simulator.  This example shows the serving layer
that turns that into a multi-design screening *service*:

1. trains a quick predictor for two small design variants and registers both
   in a :class:`~repro.serving.registry.PredictorRegistry`,
2. stands up a :class:`~repro.serving.service.ScreeningService` and screens a
   mixed stream of vectors against both designs — micro-batched, grouped by
   design, with an LRU result cache absorbing repeats,
3. fans the named workload scenarios out across worker processes with
   :func:`~repro.serving.sweep.screen_scenarios` and prints the aggregated
   table.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import dataclasses
import tempfile

from repro import (
    ModelConfig,
    PipelineConfig,
    ScenarioJob,
    ScreeningService,
    TrainingConfig,
    WorstCaseNoiseFramework,
    screen_scenarios,
)
from repro.io import format_table, latency_throughput_columns
from repro.pdn.designs import make_design, small_test_design
from repro.serving import PredictorRegistry
from repro.workloads import generate_test_vectors
from repro.workloads.scenarios import scenario_names
from repro.workloads.vectors import VectorConfig


def quick_predictor(design):
    """Train a small predictor on random vectors of one design."""
    config = PipelineConfig(
        num_vectors=16,
        num_steps=120,
        compression_rate=0.3,
        model=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4),
        training=TrainingConfig(epochs=15, learning_rate=2e-3, batch_size=4),
        seed=0,
    )
    result = WorstCaseNoiseFramework(design, config).run()
    return result.predictor


def serving_design(name: str):
    """Rebuild a demo design from its registry name (used by sweep workers)."""
    base = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    if name == base.name:
        return base
    return make_design(dataclasses.replace(base.spec, name=name), seed=1)


def main() -> None:
    print("=== 1. Train + register predictors for two design variants ===")
    primary = serving_design("unit-test")
    variant = serving_design("unit-test-b")
    registry = PredictorRegistry(tempfile.mkdtemp(prefix="serving-demo-"), capacity=4)
    for design in (primary, variant):
        registry.register(design.name, quick_predictor(design))
        print(f"registered {design.name} -> {registry.checkpoint_path(design.name).name}")

    print()
    print("=== 2. Screen a mixed vector stream through the service ===")
    vectors = {
        primary.name: generate_test_vectors(
            primary, 24, VectorConfig(num_steps=120, dt=1e-11), seed=5
        ),
        variant.name: generate_test_vectors(
            variant, 24, VectorConfig(num_steps=120, dt=1e-11), seed=6
        ),
    }
    with ScreeningService(registry, max_batch=16, max_wait=2e-3) as service:
        futures = []
        for design in (primary, variant):
            for trace in vectors[design.name]:
                futures.append(service.submit_async(trace, design))
        results = [future.result() for future in futures]
        # Re-screen the first design's vectors: pure cache hits.
        service.screen(vectors[primary.name], primary)
        stats = service.stats
        columns = latency_throughput_columns(service.latencies())

    worst = max(result.worst_noise for result in results)
    print(f"screened {stats.requests} requests ({stats.cache_hits} cache hits, "
          f"{stats.model_batches} model batches, mean batch {stats.mean_batch_size:.1f})")
    print(f"worst predicted noise across the stream: {worst * 1e3:.1f} mV")
    print(f"p50 latency {columns['p50_latency_ms']:.2f} ms, "
          f"p95 {columns['p95_latency_ms']:.2f} ms, "
          f"{columns['vectors_per_sec']:.0f} vectors/s")

    print()
    print("=== 3. Fan the named scenarios across worker processes ===")
    jobs = [
        ScenarioJob(design=design.name, scenario=scenario, num_steps=120)
        for design in (primary, variant)
        for scenario in scenario_names()
    ]
    records = screen_scenarios(
        jobs, registry.root, design_factory=serving_design, num_workers=2
    )
    print(format_table(records, title="Scenario sweep (predicted, no simulation)"))
    workers = {record.values["worker_pid"] for record in records}
    print(f"\n{len(jobs)} scenario screenings across {len(workers)} worker processes")


if __name__ == "__main__":
    main()
