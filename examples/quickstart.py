#!/usr/bin/env python3
"""Quickstart: train the worst-case noise predictor on a small design.

This walks through the paper's whole flow (Fig. 2) on a deliberately small
synthetic design so it finishes in about a minute:

1. build a PDN design (grid + package + loads),
2. generate random test vectors and simulate the ground-truth worst-case
   noise maps with the transient engine (the commercial-tool stand-in),
3. train the three-subnet CNN on the expansion-split training set,
4. predict the noise map of a held-out vector and compare accuracy and
   runtime against the simulator.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ModelConfig,
    PipelineConfig,
    TrainingConfig,
    WorstCaseNoiseFramework,
    small_test_design,
)
from repro.io import ascii_heatmap


def main() -> None:
    print("=== 1. Build a small PDN design ===")
    design = small_test_design(tile_rows=10, tile_cols=10, num_loads=80, seed=0)
    for key, value in design.summary().items():
        print(f"  {key}: {value}")

    print("\n=== 2-4. Simulate, train, evaluate ===")
    config = PipelineConfig(
        num_vectors=32,
        num_steps=200,
        compression_rate=0.3,
        model=ModelConfig(),  # C1 = C2 = 8, C3 = 16 as in the paper
        training=TrainingConfig(epochs=40, learning_rate=2e-3, batch_size=4),
        seed=0,
    )
    framework = WorstCaseNoiseFramework(design, config)
    result = framework.run()

    print("\nAccuracy on held-out test vectors:")
    for key, value in result.report.as_dict().items():
        print(f"  {key}: {value:.4g}" if isinstance(value, float) else f"  {key}: {value}")
    print("\nRuntime comparison (test vectors):")
    for key, value in result.runtime.as_dict().items():
        print(f"  {key}: {value:.4g}" if isinstance(value, float) else f"  {key}: {value}")

    print("\nWorst-case noise map of the worst test vector (ground truth vs predicted):")
    worst = result.truth_test_maps.reshape(len(result.truth_test_maps), -1).max(axis=1).argmax()
    print(ascii_heatmap(result.truth_test_maps[worst] * 1e3, title="ground truth (mV)"))
    print()
    print(ascii_heatmap(result.predicted_test_maps[worst] * 1e3, title="predicted (mV)"))


if __name__ == "__main__":
    main()
