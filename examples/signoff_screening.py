#!/usr/bin/env python3
"""Worst-case noise sign-off screening with a trained predictor.

The motivating use case of the paper: sign-off has to validate *many* test
vectors (application scenarios), and running the full transient simulation
for each one is too slow.  This example:

1. trains the predictor once on random vectors of a D1-analogue design,
2. screens a batch of named workload scenarios (DVFS ramp, power virus,
   clock-gating storm, ...) with the CNN only,
3. re-simulates only the scenarios the CNN flags as violating the noise
   specification, and
4. reports how much simulator time the screening saved and whether any
   violating scenario was missed.

Run with:  python examples/signoff_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DynamicNoiseAnalysis,
    ModelConfig,
    PipelineConfig,
    TrainingConfig,
    WorstCaseNoiseFramework,
    build_scenario,
    reference_design,
)
from repro.workloads.scenarios import scenario_names


def main() -> None:
    print("=== Train the predictor on the D1 analogue ===")
    design = reference_design("D1", scale=0.25, seed=0)
    config = PipelineConfig(
        num_vectors=28,
        num_steps=200,
        compression_rate=0.3,
        model=ModelConfig(),
        training=TrainingConfig(epochs=30, learning_rate=2e-3, batch_size=4),
        seed=0,
    )
    framework = WorstCaseNoiseFramework(design, config)
    result = framework.run()
    predictor = result.predictor
    print(f"trained: {result.report.table_row()}")

    # The sign-off specification: worst-case noise must stay below 12% of Vdd.
    specification = 0.12 * design.spec.vdd
    print(f"\n=== Screen scenarios against a {specification * 1e3:.0f} mV specification ===")

    dt = config.dt
    analysis = DynamicNoiseAnalysis(design, dt)
    simulator_time_saved = 0.0
    flagged = []
    for index, name in enumerate(scenario_names()):
        trace = build_scenario(name, design, num_steps=config.num_steps, dt=dt, seed=index)
        prediction = predictor.predict_trace(trace, design)
        predicted_worst = prediction.worst_noise
        decision = "VIOLATION -> simulate" if predicted_worst > 0.95 * specification else "pass"
        print(
            f"  {name:<22} predicted worst {predicted_worst * 1e3:6.1f} mV "
            f"({prediction.runtime_seconds * 1e3:6.1f} ms)  {decision}"
        )
        if decision.startswith("VIOLATION"):
            flagged.append((name, trace))
        else:
            # Estimate what the simulation of this vector would have cost by
            # simulating it once here (for reporting only).
            truth = analysis.run(trace)
            simulator_time_saved += truth.runtime_seconds
            if truth.worst_noise > specification:
                print(f"    WARNING: screening missed a violation on {name} "
                      f"(true worst {truth.worst_noise * 1e3:.1f} mV)")

    print("\n=== Re-simulate only the flagged scenarios ===")
    for name, trace in flagged:
        truth = analysis.run(trace)
        verdict = "confirmed" if truth.worst_noise > specification else "false alarm"
        print(
            f"  {name:<22} simulated worst {truth.worst_noise * 1e3:6.1f} mV "
            f"({truth.runtime_seconds:5.2f} s)  {verdict}"
        )

    print(
        f"\nSimulator time avoided on passing scenarios: {simulator_time_saved:.2f} s "
        f"(screening cost: {sum(r.runtime_seconds for r in [predictor.predict_trace(t, design) for _, t in flagged]) if flagged else 0.0:.2f} s of CNN inference)"
    )


if __name__ == "__main__":
    main()
