#!/usr/bin/env python3
"""Study of Algorithm 1 (temporal compression) on a single test vector.

Shows what the compression actually does to a current trace: which time
stamps are kept, how well the retained subset matches the original
``mu + 3*sigma`` statistic, and how the worst-case noise computed from only
the retained stamps compares with the full simulation — the information the
paper condenses into its Fig. 6 sweep.

Run with:  python examples/temporal_compression_study.py
"""

from __future__ import annotations

import numpy as np

from repro import CurrentTrace, DynamicNoiseAnalysis, small_test_design
from repro.features import compress_current_maps, load_current_maps
from repro.workloads import generate_test_vectors
from repro.workloads.vectors import VectorConfig


def main() -> None:
    design = small_test_design(tile_rows=10, tile_cols=10, num_loads=80, seed=1)
    dt = 1e-11
    trace = generate_test_vectors(design, 1, VectorConfig(num_steps=400, dt=dt), seed=7)[0]
    maps = load_current_maps(trace, design)
    totals = trace.total_current()
    print(f"trace: {trace.num_steps} stamps, total current "
          f"min {totals.min():.2f} A / mean {totals.mean():.2f} A / max {totals.max():.2f} A")

    analysis = DynamicNoiseAnalysis(design, dt)
    full = analysis.run(trace)
    print(f"full simulation: worst-case noise {full.worst_noise * 1e3:.1f} mV "
          f"({full.runtime_seconds:.2f} s)\n")

    print(f"{'rate':>5} {'kept':>5} {'mu+3s error':>12} {'worst from kept':>16} {'sim time':>9}")
    for rate in (0.1, 0.2, 0.3, 0.5, 0.8):
        result = compress_current_maps(maps, compression_rate=rate)
        # Simulate only the retained stamps (what a compressed validation
        # would cost) and compare the worst case it finds.
        kept_trace = CurrentTrace(trace.currents[result.selected_indices], dt, name="kept")
        kept = analysis.run(kept_trace)
        print(
            f"{rate:5.1f} {result.num_selected:5d} {result.statistic_error:12.3e} "
            f"{kept.worst_noise * 1e3:13.1f} mV {kept.runtime_seconds:8.2f}s"
        )

    result = compress_current_maps(maps, compression_rate=0.3)
    timeline = np.full(trace.num_steps, ".", dtype="<U1")
    timeline[result.selected_indices] = "#"
    print("\nretained stamps at r = 0.3 ('#' kept, '.' dropped):")
    for start in range(0, trace.num_steps, 100):
        print("  " + "".join(timeline[start:start + 100]))
    print(f"\nlower-tail share selected by the sweep: {result.lower_tail_rate:.2f}")


if __name__ == "__main__":
    main()
