#!/usr/bin/env python3
"""Build a multi-design training corpus with the dataset factory.

The paper trains one CNN per design on hundreds of simulated sign-off runs;
:mod:`repro.datagen` turns producing that data from a script loop into an
engine.  This example:

1. declares a two-design corpus spec (D1/D2 analogues, scaled far down),
2. generates it — then deliberately "interrupts" a second run and resumes
   it, showing that the manifest converges to the identical state,
3. loads the shards back as :class:`~repro.workloads.dataset.NoiseDataset`
   objects and prints the per-design summary,
4. trains the paper's CNN for one design straight from the corpus via
   ``WorstCaseNoiseFramework.build_dataset(corpus_dir=...)``.

Run with:  python examples/datagen_corpus.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CorpusDesignSpec,
    CorpusSpec,
    ModelConfig,
    PipelineConfig,
    TrainingConfig,
    WorstCaseNoiseFramework,
    generate_corpus,
    load_corpus,
)
from repro.datagen import load_design_dataset
from repro.pdn.designs import design_from_name

SPEC = CorpusSpec(
    designs=(
        CorpusDesignSpec(
            label="D1", design="D1@0.12", num_vectors=24, num_steps=160, shard_size=8
        ),
        CorpusDesignSpec(
            label="D2", design="D2@0.1", num_vectors=16, num_steps=160, shard_size=8
        ),
    ),
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-corpus-"))

    print("== 1. generate the corpus ==")
    report = generate_corpus(SPEC, root / "full", num_workers=0)
    print(f"   {report.shards_generated} shards, {report.samples_generated} vectors "
          f"in {report.seconds:.2f} s -> {report.root}")

    print("== 2. interrupt and resume ==")
    partial = generate_corpus(SPEC, root / "resumed", num_workers=0, max_shards=2)
    print(f"   interrupted after {partial.shards_generated} shards "
          f"({partial.shards_deferred} deferred)")
    resumed = generate_corpus(SPEC, root / "resumed", num_workers=0)
    print(f"   resume generated {resumed.shards_generated} more, "
          f"skipped {resumed.shards_skipped} existing; complete={resumed.complete}")
    same = [r.to_dict() for r in resumed.manifest.records] == [
        r.to_dict() for r in report.manifest.records
    ]
    print(f"   manifest identical to the uninterrupted run: {same}")

    print("== 3. load shards back ==")
    for label, dataset in load_corpus(root / "full", verify=True).items():
        print(f"   {label}: {len(dataset)} samples, tiles {dataset.tile_shape}, "
              f"{dataset.num_bumps} bumps, sim time {dataset.total_sim_runtime:.2f} s")

    print("== 4. train from the corpus ==")
    design = design_from_name("D1@0.12")
    config = PipelineConfig(
        num_vectors=SPEC.design("D1").num_vectors,
        num_steps=SPEC.design("D1").num_steps,
        model=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4),
        training=TrainingConfig(epochs=10, learning_rate=2e-3),
    )
    framework = WorstCaseNoiseFramework(design, config)
    dataset = framework.build_dataset(corpus_dir=root / "full")
    assert len(dataset) == len(load_design_dataset(root / "full", "D1"))
    result = framework.run(dataset=dataset)
    print(f"   trained on {len(result.split.train)} corpus samples; "
          f"mean AE {result.report.mean_ae_mv:.2f} mV, "
          f"speedup vs simulator {result.runtime.speedup:.1f}x")


if __name__ == "__main__":
    main()
