"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  They all need
the same expensive artefacts — a scaled reference design, a simulated
dataset, and a trained model — so those are built once per pytest session and
cached here.  Results are printed as text tables and written to
``benchmarks/results/`` as JSON/CSV so EXPERIMENTS.md can quote them.

Two presets are provided:

* ``quick`` (default) — scaled-down designs and short training runs so the
  whole harness finishes in minutes on a laptop.
* ``full`` — larger scales and longer training, selected by setting the
  environment variable ``REPRO_BENCH_PRESET=full``.

Absolute numbers therefore differ from the paper (our ground truth is a
synthetic simulator, not a commercial tool on a million-node design); the
quantities and their relationships (who wins, error magnitudes, speedups,
the compression knee) are what the harness reproduces.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core import (
    FrameworkResult,
    ModelConfig,
    PipelineConfig,
    TrainingConfig,
    WorstCaseNoiseFramework,
)
from repro.datagen import generate_corpus, load_design_dataset
from repro.io import ExperimentRecord, format_table, write_csv, write_json
from repro.pdn import Design, reference_design
from repro.workloads import NoiseDataset

#: Directory where benchmark records are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Root of the on-disk benchmark corpora (resumable across sessions).
CORPUS_DIR = RESULTS_DIR / "corpus"

#: Repository root — home of the ``BENCH_*.json`` trajectory files.
REPO_ROOT = Path(__file__).resolve().parent.parent


def append_trajectory(name: str, entry: dict, header: Optional[dict] = None) -> Path:
    """Append one run entry to the repo-root ``BENCH_<name>.json`` trajectory.

    Trajectory files track a performance curve across PRs: a stable header
    describing the metric plus a ``runs`` list one entry long per benchmark
    run.  ``header`` seeds the file on first creation and is ignored once the
    file exists (the historical header stays authoritative).
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = dict(header or {})
        payload.setdefault("runs", [])
    payload["runs"].append(entry)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def obs_snapshot(service) -> dict:
    """Serving-telemetry snapshot for trajectory rows.

    Pulls cache hit rate, mean batch size, and per-path latency percentiles
    out of a :class:`~repro.serving.service.ScreeningService`'s metrics
    registry, so ``BENCH_*.json`` entries carry latency/throughput history
    rather than bare totals.  Histogram percentiles appear only for paths
    that actually observed samples (and only when the service was built with
    a live registry).
    """
    stats = service.stats
    snapshot = {
        "requests": stats.requests,
        "cache_hit_rate": stats.cache_hit_rate,
        "mean_batch_size": stats.mean_batch_size,
    }
    for path_name in ("cache_hit", "coalesced", "batched"):
        histogram = service.metrics.get(f"serving.request_latency.{path_name}")
        if histogram is not None and getattr(histogram, "count", 0):
            snapshot[f"{path_name}_latency_ms"] = {
                f"p{q:g}": histogram.percentile(q) * 1e3 for q in (50, 95, 99)
            }
    return snapshot


def preset_name() -> str:
    """Benchmark preset selected via ``REPRO_BENCH_PRESET`` (quick/full)."""
    name = os.environ.get("REPRO_BENCH_PRESET", "quick").lower()
    if name not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_PRESET must be 'quick' or 'full', got {name!r}")
    return name


@dataclass(frozen=True)
class BenchPreset:
    """Per-design benchmark configuration."""

    scale: float
    num_vectors: int
    num_steps: int
    epochs: int
    learning_rate: float
    compression_rate: float = 0.3

    def pipeline_config(self, seed: int = 0) -> PipelineConfig:
        """Translate the preset into a :class:`PipelineConfig`."""
        return PipelineConfig(
            num_vectors=self.num_vectors,
            num_steps=self.num_steps,
            compression_rate=self.compression_rate,
            model=ModelConfig(seed=seed),
            training=TrainingConfig(
                epochs=self.epochs,
                learning_rate=self.learning_rate,
                batch_size=4,
                early_stopping_patience=None,
                seed=seed,
            ),
            seed=seed,
        )


_QUICK_PRESETS: dict[str, BenchPreset] = {
    "D1": BenchPreset(scale=0.30, num_vectors=40, num_steps=200, epochs=60, learning_rate=1.5e-3),
    "D2": BenchPreset(scale=0.22, num_vectors=40, num_steps=200, epochs=50, learning_rate=1.5e-3),
    "D3": BenchPreset(scale=0.25, num_vectors=40, num_steps=200, epochs=55, learning_rate=1.5e-3),
    "D4": BenchPreset(scale=0.18, num_vectors=40, num_steps=200, epochs=50, learning_rate=1.5e-3),
}

_FULL_PRESETS: dict[str, BenchPreset] = {
    "D1": BenchPreset(scale=1.0, num_vectors=120, num_steps=400, epochs=120, learning_rate=1e-3),
    "D2": BenchPreset(scale=0.6, num_vectors=100, num_steps=400, epochs=100, learning_rate=1e-3),
    "D3": BenchPreset(scale=0.8, num_vectors=100, num_steps=400, epochs=100, learning_rate=1e-3),
    "D4": BenchPreset(scale=0.4, num_vectors=100, num_steps=400, epochs=100, learning_rate=1e-3),
}


def design_preset(name: str) -> BenchPreset:
    """Preset for one reference design under the active preset family."""
    presets = _FULL_PRESETS if preset_name() == "full" else _QUICK_PRESETS
    if name not in presets:
        raise ValueError(f"unknown design {name!r}")
    return presets[name]


@lru_cache(maxsize=None)
def get_design(name: str) -> Design:
    """Build (and cache) one scaled reference design."""
    return reference_design(name, scale=design_preset(name).scale, seed=0)


@lru_cache(maxsize=None)
def get_framework(name: str) -> WorstCaseNoiseFramework:
    """The end-to-end framework bound to one cached design."""
    return WorstCaseNoiseFramework(get_design(name), design_preset(name).pipeline_config())


@lru_cache(maxsize=None)
def get_dataset(name: str) -> NoiseDataset:
    """Simulated (ground-truth) dataset for one design.

    Built through the :mod:`repro.datagen` shard factory: the corpus lives
    under ``benchmarks/results/corpus/<preset>/<design>`` and is resumable,
    so re-running a benchmark session only pays for shards that do not
    exist yet.  ``WorstCaseNoiseFramework.corpus_spec`` translates the
    preset's pipeline configuration — *including* its transient options and
    per-vector simulation (``sim_batch_size`` unset → batch size 1) — so
    the shards hold exactly what the in-process pipeline would produce.
    Table 2's ``simulator_s``/``speedup`` columns depend on that: per-sample
    ``sim_runtime`` must stay a true per-vector measurement, not a lockstep
    batch average (the batched fast path is benchmarked separately in
    ``bench_datagen.py``).
    """
    framework = get_framework(name)
    spec = framework.corpus_spec(f"{name}@{design_preset(name).scale}", label=name)
    root = CORPUS_DIR / preset_name() / name
    try:
        report = generate_corpus(spec, root, num_workers=0)
    except ValueError:
        # The cached corpus was built from an older preset/spec; it is a
        # disposable cache, so regenerate rather than fail the benchmark.
        report = generate_corpus(spec, root, num_workers=0, resume=False)
    # Shards can be deferred when a concurrent benchmark session holds their
    # claims; wait for that session's work to land, then fill any holes.
    # Full-preset shards take minutes each, so the budget is generous.
    deadline = time.monotonic() + 1800.0
    while not report.complete:
        if time.monotonic() >= deadline:
            raise RuntimeError(
                f"corpus for {name!r} under {root} is still incomplete after "
                f"waiting 30 min ({report.shards_deferred} shards deferred — "
                "is another benchmark session stuck holding their claims?)"
            )
        time.sleep(2.0)
        report = generate_corpus(spec, root, num_workers=0)
    return load_design_dataset(root, name)


@lru_cache(maxsize=None)
def get_result(name: str) -> FrameworkResult:
    """Full framework run (simulate + train + evaluate) — cached per session."""
    return get_framework(name).run(dataset=get_dataset(name))


def save_records(records: Sequence[ExperimentRecord], stem: str, title: str) -> str:
    """Print a text table and persist the records under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    write_json(records, RESULTS_DIR / f"{stem}.json")
    write_csv(records, RESULTS_DIR / f"{stem}.csv")
    table = format_table(records, title=title)
    print()
    print(table)
    return table


def mean_hotspot_ratio(dataset: NoiseDataset) -> float:
    """Average hotspot ratio across the dataset's vectors (Table 1 column)."""
    return float(np.mean([sample.hotspot_map.mean() for sample in dataset.samples]))
