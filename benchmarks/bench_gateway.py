"""Gateway throughput: supervised sharded gateway vs the bare service loop.

The gateway exists to run the serving stack as a long-lived front door —
admission control, sharded workers, supervision — and none of that may cost
throughput.  This benchmark drives an identical **mixed-design load** (two
designs, interleaved requests, pre-extracted features) through:

* ``bare_service_loop`` — the naive client against a bare
  :class:`ScreeningService`: submit one request, wait for its result, move
  on.  Every request pays a full forward pass; micro-batching never fills.
* ``service_pipelined`` — the same service driven by a client that submits
  everything before collecting (informational row: a single pipelined
  worker is the throughput ceiling on a single-core host).
* ``gateway_2_shards`` — a two-shard :class:`ScreeningGateway` where
  consistent hashing gives each design its own supervised worker and warm
  registry partition.

Every row reports p50/p99 latency and sustained vectors/sec via
:func:`latency_throughput_columns`; the gate asserts the gateway sustains at
least the bare loop's throughput — admission, sharding, and supervision must
come at no cost over what a naive client gets from the bare service.
Results append to ``BENCH_gateway.json``.

Runs under pytest (``python -m pytest benchmarks/bench_gateway.py``) or as a
script wrapping a telemetry run::

    python benchmarks/bench_gateway.py --smoke
    python scripts/obs_report.py benchmarks/results/gateway_obs
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from common import REPO_ROOT, append_trajectory, save_records
from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.datagen import git_revision
from repro.features.extraction import (
    FeatureNormalizer,
    distance_feature,
    extract_vector_features,
)
from repro.gateway import ConsistentHashRing, ScreeningGateway
from repro.io import ExperimentRecord, latency_throughput_columns
from repro.obs import MetricsRegistry
from repro.pdn import small_test_design
from repro.pdn.designs import make_design
from repro.serving import PredictorRegistry, ScreeningService
from repro.workloads import generate_test_vectors
from repro.workloads.vectors import VectorConfig

NUM_VECTORS = 32  # per design
SMOKE_VECTORS = 8
MAX_BATCH = 16
NUM_SHARDS = 2
ROUNDS = 3


def _make_predictor(design, seed: int) -> NoisePredictor:
    model = WorstCaseNoiseNet(
        num_bumps=design.grid.num_bumps,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=seed
        ),
    )
    normalizer = FeatureNormalizer(
        current_scale=0.05, distance_scale=1000.0, noise_scale=0.15
    )
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(design),
        compression_rate=0.3,
    )


def build_setup(registry_root: Path, vectors_per_design: int):
    """Two designs on different ring shards, predictors, and the mixed load."""
    design_a = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    ring = ConsistentHashRing(range(NUM_SHARDS))
    sibling_name = next(
        f"{design_a.name}-{suffix}"
        for suffix in "bcdefgh"
        if ring.assign(f"{design_a.name}-{suffix}") != ring.assign(design_a.name)
    )
    design_b = make_design(replace(design_a.spec, name=sibling_name), seed=0)

    registry = PredictorRegistry(registry_root, capacity=4)
    predictors = {}
    for design, seed in ((design_a, 0), (design_b, 1)):
        predictor = _make_predictor(design, seed)
        registry.register(design.name, predictor)
        predictors[design.name] = predictor

    mixed = []
    for design in (design_a, design_b):
        traces = generate_test_vectors(
            design, vectors_per_design, VectorConfig(num_steps=120, dt=1e-11), seed=11
        )
        predictor = predictors[design.name]
        for trace in traces:
            features = extract_vector_features(
                trace, design, compression_rate=predictor.compression_rate
            )
            mixed.append((features, design.name))
    # Interleave the designs the way concurrent clients would.
    mixed = [item for pair in zip(mixed[:vectors_per_design], mixed[vectors_per_design:]) for item in pair]
    return registry, mixed


def timed_loop(submit_async, items):
    """The naive client: submit one request, block on it, move to the next."""
    latencies = []
    t0 = time.perf_counter()
    for payload, design in items:
        start = time.perf_counter()
        submit_async(payload, design).result(timeout=120)
        latencies.append(time.perf_counter() - start)
    return time.perf_counter() - t0, latencies


def timed_screen(submit_async, items):
    """Submit everything, wait for everything; span + per-request latencies.

    Latency is measured at the caller (submission to done-callback), the
    same clock for both stacks, so the comparison cannot be skewed by which
    internal instruments each stack happens to keep.
    """
    ends: dict[int, float] = {}
    futures = []
    t0 = time.perf_counter()
    starts = []
    for index, (payload, design) in enumerate(items):
        starts.append(time.perf_counter())
        future = submit_async(payload, design)
        future.add_done_callback(
            lambda _, index=index: ends.__setitem__(index, time.perf_counter())
        )
        futures.append(future)
    for future in futures:
        future.result(timeout=120)
    span = time.perf_counter() - t0
    latencies = [ends[index] - start for index, start in enumerate(starts)]
    return span, latencies


def run_benchmark(tmp_root: Path, vectors_per_design: int, rounds: int = ROUNDS):
    """Measure both stacks on the mixed load; returns (records, entry)."""
    registry, mixed = build_setup(tmp_root / "checkpoints", vectors_per_design)
    records = []

    # Both stacks stay up for the whole measurement and the rounds alternate
    # service/gateway, so a background blip (CPU frequency step, page cache
    # miss) lands on both sides instead of skewing whichever stack happened
    # to be measured at the time.  Best-of-N then suppresses the blips.
    service = ScreeningService(
        registry, max_batch=MAX_BATCH, max_wait=2e-3, cache_size=1, metrics=MetricsRegistry()
    )
    gateway = ScreeningGateway(
        tmp_root / "checkpoints",
        num_shards=NUM_SHARDS,
        max_batch=MAX_BATCH,
        max_wait=2e-3,
        queue_limit=4 * vectors_per_design,
    )
    try:
        timed_screen(service.submit_async, mixed)  # warm worker + resident LRU
        timed_screen(gateway.submit_async, mixed)  # warm shard registries
        best = {}

        def measure(label, body):
            service.cache.clear()  # cold model passes, not cache replay
            result = body()
            if label not in best or result[0] < best[label][0]:
                best[label] = result

        for _ in range(rounds):
            measure("bare_service_loop", lambda: timed_loop(service.submit_async, mixed))
            measure("service_pipelined", lambda: timed_screen(service.submit_async, mixed))
            measure(
                f"gateway_{NUM_SHARDS}_shards",
                lambda: timed_screen(gateway.submit_async, mixed),
            )
        health = gateway.health()
    finally:
        gateway.close()
        service.close()
    for label, (span, latencies) in best.items():
        records.append(
            ExperimentRecord(
                "gateway",
                label,
                {
                    "total_s": span,
                    **latency_throughput_columns(latencies, total_seconds=span),
                },
            )
        )

    baseline = records[0].values["vectors_per_sec"]
    for record in records:
        record.values["throughput_vs_loop"] = record.values["vectors_per_sec"] / baseline
    gateway_row = records[-1].values
    entry = {
        "timestamp": time.time(),
        "git_rev": git_revision(REPO_ROOT),
        "vectors_per_design": vectors_per_design,
        "num_shards": NUM_SHARDS,
        "loop_s": records[0].values["total_s"],
        "pipelined_s": records[1].values["total_s"],
        "gateway_s": gateway_row["total_s"],
        "gateway_vs_loop": gateway_row["throughput_vs_loop"],
        "gateway_p50_ms": gateway_row["p50_latency_ms"],
        "gateway_p99_ms": gateway_row["p99_latency_ms"],
        "shard_restarts": {
            shard: state["restarts"] for shard, state in health["shards"].items()
        },
    }
    return records, entry


def finish(records, entry) -> None:
    """Persist the comparison table and the trajectory row."""
    save_records(
        records, "gateway", "Gateway throughput — sharded gateway vs bare service loop"
    )
    append_trajectory(
        "gateway",
        entry,
        header={
            "metric": "mixed-design screening throughput, gateway vs bare service loop",
            "min_ratio": 1.0,
        },
    )


def check(records, entry) -> None:
    """The gate: the front door must not cost naive clients any throughput."""
    loop, gateway = records[0].values, records[-1].values
    assert gateway["vectors_per_sec"] >= loop["vectors_per_sec"], (
        f"gateway sustained {gateway['vectors_per_sec']:.1f} vec/s, below the "
        f"bare service loop's {loop['vectors_per_sec']:.1f} vec/s"
    )
    # No worker crashed during a clean benchmark run.
    assert all(value == 0 for value in entry["shard_restarts"].values())


def test_gateway_throughput_report(tmp_path):
    """Pytest entry point: measure, persist, and gate the comparison."""
    records, entry = run_benchmark(tmp_path, NUM_VECTORS)
    finish(records, entry)
    check(records, entry)


def main(argv=None) -> int:
    """Script entry point; wraps the run in a ``repro.obs`` telemetry run."""
    import argparse

    from repro import obs
    from repro.io import format_table

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny load ({SMOKE_VECTORS} vectors/design, 1 round) for CI",
    )
    parser.add_argument(
        "--obs-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "gateway_obs",
        help="telemetry run directory (run_report.json lands here)",
    )
    args = parser.parse_args(argv)

    vectors = SMOKE_VECTORS if args.smoke else NUM_VECTORS
    rounds = 1 if args.smoke else ROUNDS
    obs.start_run(args.obs_dir, config={"bench": "gateway", "vectors": vectors})
    import tempfile

    try:
        with tempfile.TemporaryDirectory(prefix="bench-gateway-") as tmp:
            records, entry = run_benchmark(Path(tmp), vectors, rounds=rounds)
    finally:
        report = obs.finish_run(extra={"bench": "gateway"})
    finish(records, entry)
    print(format_table(records, title="Gateway vs bare service loop"))
    print(f"telemetry report: {report}")
    check(records, entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
