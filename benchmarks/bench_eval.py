"""Evaluation-harness benchmark: campaign cost, resume cost, determinism.

The eval layer's promises are operational rather than raw-throughput ones:

* a full leave-one-design-out campaign at the ``tiny`` budget costs seconds,
* *resuming* a finished campaign costs ~nothing (the artefacts, not the
  work, are the source of truth), and
* the gated accuracy metrics are identical across two fresh campaigns —
  which is what makes golden-baseline gating possible at all.

This benchmark measures the first two and asserts the third, persisting the
stage timings under ``benchmarks/results/eval.json``.
"""

from __future__ import annotations

import json

import pytest

from common import save_records
from repro.eval import CrossDesignEvaluator, ScenarioSweep, budget
from repro.io import ExperimentRecord
from repro.utils import Timer


@pytest.fixture(scope="module")
def campaign_dirs(tmp_path_factory):
    """Two fresh workdirs for the determinism comparison."""
    return (
        tmp_path_factory.mktemp("eval-bench-a"),
        tmp_path_factory.mktemp("eval-bench-b"),
    )


def test_eval_campaign_cost_and_determinism(benchmark, campaign_dirs):
    """Time the tiny campaign cold/resumed and assert metric determinism."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = budget("tiny")
    first_dir, second_dir = campaign_dirs
    records = []

    evaluator = CrossDesignEvaluator(config, first_dir)
    cold = Timer()
    with cold.measure():
        report = evaluator.run()
        sweep_records = ScenarioSweep(config, first_dir).run()
    records.append(
        ExperimentRecord(
            "eval",
            "campaign_cold",
            {
                "total_s": cold.last,
                "rows": len(report.rows),
                "sweep_rows": len(sweep_records),
            },
        )
    )

    resumed = Timer()
    with resumed.measure():
        resumed_report = evaluator.run()
        ScenarioSweep(config, first_dir).run()
    records.append(
        ExperimentRecord(
            "eval",
            "campaign_resumed",
            {"total_s": resumed.last, "rows": len(resumed_report.rows)},
        )
    )

    repeat = Timer()
    with repeat.measure():
        second_report = CrossDesignEvaluator(config, second_dir).run()
    records.append(
        ExperimentRecord(
            "eval", "campaign_repeat_fresh", {"total_s": repeat.last, "rows": len(second_report.rows)}
        )
    )
    save_records(records, "eval", "Evaluation harness — campaign cost and resume")

    # Resume must not redo any held-out evaluation (artefact-driven skip).
    assert resumed_report.rows.keys() == report.rows.keys()
    # Resuming costs far less than the cold campaign (no training, no sim).
    assert resumed.last < cold.last
    # The foundation of golden-baseline gating: fresh campaigns agree bit-for-bit.
    assert json.dumps(report.gated_metrics(), sort_keys=True) == json.dumps(
        second_report.gated_metrics(), sort_keys=True
    )
