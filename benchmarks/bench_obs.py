"""Telemetry overhead gate: `repro.obs` must stay invisible on the hot path.

Every serving request touches a handful of :mod:`repro.obs` instruments
(request counter, queue-depth gauge, per-path latency histogram, plus the
per-batch counters amortised over the batch).  The whole design bet of the
metrics registry — null-object instruments when disabled, lock-free
counters/gauges and a ``bisect`` histogram when enabled — is that those
touches cost nanoseconds against a millisecond-scale model call.  This
benchmark holds that bet to numbers:

1. **Op-cost accounting** — time the three instrument operations directly
   (100k iterations each against a disabled and an enabled registry) and
   require that ``OPS_PER_REQUEST`` worst-case touches cost at most
   ``DISABLED_BUDGET`` (1%) of a mean un-instrumented request when disabled
   and ``ENABLED_BUDGET`` (5%) when enabled.
2. **Wall-clock A/B** — screen the same vector set through two otherwise
   identical :class:`ScreeningService` instances, one built on the null
   registry and one on a live registry, and require the live pass to stay
   within ``WALL_CLOCK_SLACK`` of the null pass (a coarse backstop against
   accidental locks/allocations sneaking onto the request path; the precise
   1%/5% gates are carried by the op-cost accounting above, which does not
   suffer scheduler noise).

The un-instrumented reference latency is the null-registry service pass:
null instruments compile to a single no-op method call, so that pass is the
pre-instrumentation serving bench to within one op-cost (itself gated below
1%).  Results land in ``benchmarks/results/obs.{json,csv}`` and a trajectory
entry is appended to the repo-root ``BENCH_obs.json``.
"""

from __future__ import annotations

import time

import pytest

from common import REPO_ROOT, append_trajectory, save_records
from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.datagen import git_revision
from repro.features.extraction import (
    FeatureNormalizer,
    distance_feature,
    extract_vector_features,
)
from repro.io import ExperimentRecord
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.pdn import small_test_design
from repro.serving import PredictorRegistry, ScreeningService
from repro.utils import Timer
from repro.workloads import generate_test_vectors
from repro.workloads.vectors import VectorConfig

NUM_VECTORS = 48
MAX_BATCH = 16
ROUNDS = 3

#: Worst-case instrument touches per request in ``ScreeningService``: a
#: request counter, the queue-depth gauge and one latency-histogram observe,
#: plus the per-batch counter/gauge trio — charged per *request* here rather
#: than amortised over the batch, as a deliberate over-count.
OPS_PER_REQUEST = 8

#: Timed iterations per instrument op (keeps per-op timing noise < 1 ns).
OP_ITERATIONS = 100_000

#: Disabled instrumentation must cost <= 1% of a mean request.
DISABLED_BUDGET = 0.01

#: Enabled instrumentation must cost <= 5% of a mean request.
ENABLED_BUDGET = 0.05

#: Wall-clock backstop: live-registry pass within 25% of the null pass.
WALL_CLOCK_SLACK = 1.25


def _op_cost(registry) -> float:
    """Mean seconds per instrument operation against ``registry``.

    Exercises the three hot-path operations — counter ``inc``, gauge
    ``set``, histogram ``observe`` — in one interleaved loop (the same mix
    a serving request generates) and averages over all of them.
    """
    counter = registry.counter("obs_bench.counter")
    gauge = registry.gauge("obs_bench.gauge")
    histogram = registry.histogram("obs_bench.latency")
    started = time.perf_counter()
    for index in range(OP_ITERATIONS):
        counter.inc()
        gauge.set(float(index))
        histogram.observe(1.5e-4)
    elapsed = time.perf_counter() - started
    return elapsed / (3 * OP_ITERATIONS)


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for micro-benchmarks)."""
    times, result = [], None
    for _ in range(runs):
        timer = Timer()
        with timer.measure():
            result = body()
        times.append(timer.last)
    return min(times), result


@pytest.fixture(scope="module")
def screening_setup(tmp_path_factory):
    """Design, registry, and pre-extracted features for the A/B passes."""
    design = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    model = WorstCaseNoiseNet(
        num_bumps=design.grid.num_bumps,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0
        ),
    )
    normalizer = FeatureNormalizer(
        current_scale=0.05, distance_scale=1000.0, noise_scale=0.15
    )
    predictor = NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(design),
        compression_rate=0.3,
    )
    registry = PredictorRegistry(tmp_path_factory.mktemp("obs-bench"), capacity=2)
    registry.register(design.name, predictor)
    traces = generate_test_vectors(
        design, NUM_VECTORS, VectorConfig(num_steps=120, dt=1e-11), seed=23
    )
    features = [
        extract_vector_features(
            trace, design, compression_rate=predictor.compression_rate
        )
        for trace in traces
    ]
    # Warm allocator/BLAS once so neither A/B pass pays first-call costs.
    predictor.predict_batch(features, max_batch=MAX_BATCH)
    return design, registry, features


def _cold_screen_seconds(registry, design, features, metrics) -> float:
    """Best-of-N cold screening pass through a service built on ``metrics``."""
    with ScreeningService(
        registry, max_batch=MAX_BATCH, max_wait=2e-3, metrics=metrics
    ) as service:
        service.screen(features, design.name)  # warm the worker thread

        def cold_pass():
            service.cache.clear()
            return service.screen(features, design.name)

        seconds, _ = _best_of(ROUNDS, cold_pass)
    return seconds


def test_obs_overhead_gate(benchmark, screening_setup):
    """Disabled instrumentation <= 1%, enabled <= 5% of a mean request."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    design, registry, features = screening_setup

    null_cost = _op_cost(NULL_REGISTRY)
    live_cost = _op_cost(MetricsRegistry())

    null_seconds = _cold_screen_seconds(registry, design, features, NULL_REGISTRY)
    live_seconds = _cold_screen_seconds(registry, design, features, MetricsRegistry())
    mean_request = null_seconds / len(features)

    disabled_fraction = OPS_PER_REQUEST * null_cost / mean_request
    enabled_fraction = OPS_PER_REQUEST * live_cost / mean_request
    wall_clock_ratio = live_seconds / null_seconds

    records = [
        ExperimentRecord(
            "obs",
            "disabled_registry",
            {
                "op_cost_ns": null_cost * 1e9,
                "request_overhead_pct": disabled_fraction * 100.0,
                "budget_pct": DISABLED_BUDGET * 100.0,
                "screen_total_s": null_seconds,
            },
        ),
        ExperimentRecord(
            "obs",
            "enabled_registry",
            {
                "op_cost_ns": live_cost * 1e9,
                "request_overhead_pct": enabled_fraction * 100.0,
                "budget_pct": ENABLED_BUDGET * 100.0,
                "screen_total_s": live_seconds,
            },
        ),
        ExperimentRecord(
            "obs",
            "wall_clock_ab",
            {
                "null_s": null_seconds,
                "live_s": live_seconds,
                "ratio": wall_clock_ratio,
                "max_ratio": WALL_CLOCK_SLACK,
            },
        ),
    ]
    save_records(records, "obs", "Telemetry overhead — instrument ops vs request cost")
    append_trajectory(
        "obs",
        {
            "timestamp": time.time(),
            "git_rev": git_revision(REPO_ROOT),
            "null_op_ns": null_cost * 1e9,
            "live_op_ns": live_cost * 1e9,
            "disabled_overhead_pct": disabled_fraction * 100.0,
            "enabled_overhead_pct": enabled_fraction * 100.0,
            "wall_clock_ratio": wall_clock_ratio,
        },
        header={
            "metric": "instrumentation overhead per serving request",
            "disabled_budget_pct": DISABLED_BUDGET * 100.0,
            "enabled_budget_pct": ENABLED_BUDGET * 100.0,
        },
    )

    # Gate 1: disabled instruments are free to within 1% of a request.
    assert disabled_fraction <= DISABLED_BUDGET, (
        f"disabled instrumentation costs {disabled_fraction:.2%} of a mean "
        f"request ({null_cost * 1e9:.0f} ns/op x {OPS_PER_REQUEST} ops vs "
        f"{mean_request * 1e6:.0f} us/request; budget {DISABLED_BUDGET:.0%})"
    )
    # Gate 2: live instruments stay within 5%.
    assert enabled_fraction <= ENABLED_BUDGET, (
        f"enabled instrumentation costs {enabled_fraction:.2%} of a mean "
        f"request ({live_cost * 1e9:.0f} ns/op x {OPS_PER_REQUEST} ops vs "
        f"{mean_request * 1e6:.0f} us/request; budget {ENABLED_BUDGET:.0%})"
    )
    # Backstop: the live service pass tracks the null pass wall-clock.
    assert wall_clock_ratio <= WALL_CLOCK_SLACK, (
        f"live-registry screening pass is {wall_clock_ratio:.2f}x the "
        f"null-registry pass (backstop {WALL_CLOCK_SLACK}x)"
    )
