"""Training-engine throughput: batched minibatch autograd vs the per-sample loop.

Sec. 3.4.4 training is the stage the paper's Table 2 runtime comparison
amortises over, and PR 3 made it end-to-end batched: partitions normalised
once into stacked tensors, one autograd graph per minibatch (tape-recorded
backward, pooled im2col workspaces), and a fused flat-buffer Adam step.
This benchmark trains the same model on the same dataset two ways:

* ``sequential`` — ``TrainingConfig(sequential=True)``: the seed trainer's
  per-sample loop (one graph per sample, summed minibatch loss);
* ``batched``    — the default engine.

It asserts the three engine guarantees:

1. **>= 3x wall-clock speedup** at the paper-style minibatch size
   (``GATED_BATCH_SIZE``); the smaller quick-preset batch is reported too,
   ungated (FLOP parity bounds it to ~2.5x — only the framework overhead
   and the shared distance-subnet pass amortise with batch size);
2. **matching loss curves** — train and validation curves agree with the
   sequential engine within ``CURVE_RTOL`` (identical shuffle streams leave
   only float re-association differences, measured around 1e-15);
3. **bit-exact escape hatch** — ``sequential=True`` reproduces a
   from-scratch replica of the seed trainer (per-parameter Adam, per-sample
   forwards) float for float.

Results land in ``benchmarks/results/training.{json,csv}`` and a trajectory
entry is appended to the repo-root ``BENCH_training.json`` so future PRs can
track the training-speed curve.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import append_trajectory, save_records
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import WorstCaseNoiseNet
from repro.core.training import NoiseModelTrainer
from repro.datagen import git_revision
from repro.io import ExperimentRecord
from repro.nn import l1_loss, no_grad
from repro.pdn import small_test_design
from repro.utils import Timer
from repro.utils.random import ensure_rng
from repro.workloads import build_dataset, expansion_split, generate_test_vectors
from repro.workloads.vectors import VectorConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documented loss-curve agreement between the engines (see DESIGN.md).
CURVE_RTOL = 1e-9

#: Paper-style minibatch size carrying the speedup gate, plus the
#: quick-preset default reported alongside it.
GATED_BATCH_SIZE = 8
BATCH_SIZES = (4, 8)
MIN_SPEEDUP = 3.0

EPOCHS = 8
ROUNDS = 3
LEARNING_RATE = 2e-3

_MODEL_CONFIG = ModelConfig(seed=0)


def _workload():
    """The benchmark dataset: a scaled-down design, quick-preset style.

    Absolute times are meaningless on shared hardware; the engine *ratio* at
    paper-style minibatch sizes is what the benchmark reproduces, so the
    workload is scaled until a full training run takes fractions of a second
    (same philosophy as ``bench_datagen.py``'s ``scale=0.08`` corpus).
    """
    design = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    traces = generate_test_vectors(
        design, 48, VectorConfig(num_steps=20, dt=1e-11), seed=3
    )
    dataset = build_dataset(design, traces, compression_rate=0.3, sim_batch_size=16)
    split = expansion_split(dataset, seed=0)
    return design, dataset, split


def _train(design, dataset, split, sequential: bool, batch_size: int):
    trainer = NoiseModelTrainer(
        dataset,
        design=design,
        split=split,
        model_config=_MODEL_CONFIG,
        training_config=TrainingConfig(
            epochs=EPOCHS,
            batch_size=batch_size,
            learning_rate=LEARNING_RATE,
            early_stopping_patience=None,
            seed=0,
            sequential=sequential,
        ),
    )
    return trainer.train()


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for benchmarks)."""
    times, result = [], None
    for _ in range(runs):
        timer = Timer()
        with timer.measure():
            result = body()
        times.append(timer.last)
    return min(times), result


#: Header seeding the repo-root ``BENCH_training.json`` trajectory file.
_TRAJECTORY_HEADER = {
    "metric": "batched training engine speedup vs per-sample loop",
    "gated_batch_size": GATED_BATCH_SIZE,
    "min_speedup": MIN_SPEEDUP,
}


def test_training_speedup_and_curve_equivalence(benchmark):
    """Batched >= 3x the per-sample loop at the gated batch size, same curves."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    design, dataset, split = _workload()

    records = []
    speedups = {}
    for batch_size in BATCH_SIZES:
        sequential_seconds, sequential = _best_of(
            ROUNDS, lambda: _train(design, dataset, split, True, batch_size)
        )
        batched_seconds, batched = _best_of(
            ROUNDS, lambda: _train(design, dataset, split, False, batch_size)
        )
        speedup = sequential_seconds / batched_seconds
        speedups[batch_size] = {
            "batched_s": batched_seconds,
            "sequential_s": sequential_seconds,
            "speedup": speedup,
        }

        # Guarantee 2: the engines walk the same loss trajectory.
        np.testing.assert_allclose(
            batched.history.train_loss, sequential.history.train_loss, rtol=CURVE_RTOL
        )
        np.testing.assert_allclose(
            batched.history.validation_loss,
            sequential.history.validation_loss,
            rtol=CURVE_RTOL,
        )

        curve_deviation = float(
            np.max(
                np.abs(
                    np.asarray(batched.history.validation_loss)
                    - np.asarray(sequential.history.validation_loss)
                )
                / np.asarray(sequential.history.validation_loss)
            )
        )
        records.extend(
            [
                ExperimentRecord(
                    "training",
                    f"sequential_bs{batch_size}",
                    {"total_s": sequential_seconds, "epochs": EPOCHS},
                ),
                ExperimentRecord(
                    "training",
                    f"batched_bs{batch_size}",
                    {
                        "total_s": batched_seconds,
                        "epochs": EPOCHS,
                        "speedup_vs_sequential": speedup,
                        "max_val_curve_rel_diff": curve_deviation,
                    },
                ),
            ]
        )

    save_records(records, "training", "Batched training engine vs per-sample loop")
    append_trajectory(
        "training",
        {
            "timestamp": time.time(),
            "git_rev": git_revision(REPO_ROOT),
            "epochs": EPOCHS,
            # Training always runs at float64 (the engine enforces it); the
            # column exists so the trajectory stays comparable if that ever
            # changes.
            "dtype": "float64",
            "results": {str(batch_size): speedups[batch_size] for batch_size in BATCH_SIZES},
        },
        header=_TRAJECTORY_HEADER,
    )

    # Guarantee 1: the headline speedup at the paper-style batch size.
    gated = speedups[GATED_BATCH_SIZE]["speedup"]
    assert gated >= MIN_SPEEDUP, (
        f"batched training is only {gated:.2f}x the per-sample "
        f"loop at batch size {GATED_BATCH_SIZE} (needs >= {MIN_SPEEDUP}x)"
    )


def _seed_replica_losses(dataset, split, normalizer, batch_size: int, epochs: int):
    """Replay the seed trainer against the same ops: per-sample forwards,
    summed minibatch loss, per-parameter (unfused) Adam."""
    model = WorstCaseNoiseNet(num_bumps=dataset.num_bumps, config=_MODEL_CONFIG)
    parameters = model.parameters()
    first = [np.zeros_like(p.data) for p in parameters]
    second = [np.zeros_like(p.data) for p in parameters]
    step_count = 0
    beta1, beta2, epsilon = 0.9, 0.999, 1e-8
    rng = ensure_rng(0)
    normalized_distance = normalizer.normalize_distance(dataset.distance)

    def sample_loss(index):
        sample = dataset.samples[int(index)]
        current = normalizer.normalize_currents(sample.features.current_maps)
        target = normalizer.normalize_noise(sample.target)
        return l1_loss(model(current, normalized_distance), target)

    train_curve, validation_curve = [], []
    for _ in range(epochs):
        train_indices = np.array(split.train, dtype=int)
        rng.shuffle(train_indices)
        epoch_loss = 0.0
        for start in range(0, len(train_indices), batch_size):
            batch = train_indices[start:start + batch_size]
            for parameter in parameters:
                parameter.zero_grad()
            batch_loss = None
            for index in batch:
                loss = sample_loss(index)
                batch_loss = loss if batch_loss is None else batch_loss + loss
            batch_loss = batch_loss * (1.0 / len(batch))
            batch_loss.backward()
            step_count += 1
            bias_correction1 = 1.0 - beta1**step_count
            bias_correction2 = 1.0 - beta2**step_count
            for parameter, m, v in zip(parameters, first, second):
                gradient = parameter.grad
                m *= beta1
                m += (1.0 - beta1) * gradient
                v *= beta2
                v += (1.0 - beta2) * gradient * gradient
                corrected_first = m / bias_correction1
                corrected_second = v / bias_correction2
                parameter.data = parameter.data - LEARNING_RATE * corrected_first / (
                    np.sqrt(corrected_second) + epsilon
                )
            epoch_loss += batch_loss.item() * len(batch)
        train_curve.append(epoch_loss / len(train_indices))
        total = 0.0
        with no_grad():
            for index in split.validation:
                total += sample_loss(index).item()
        validation_curve.append(total / len(split.validation))
    return train_curve, validation_curve


def test_sequential_path_bit_exact_with_seed_trainer(benchmark):
    """``sequential=True`` reproduces the seed trainer float for float."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    design, dataset, split = _workload()
    trainer = NoiseModelTrainer(
        dataset,
        design=design,
        split=split,
        model_config=_MODEL_CONFIG,
        training_config=TrainingConfig(
            epochs=3,
            batch_size=4,
            learning_rate=LEARNING_RATE,
            early_stopping_patience=None,
            seed=0,
            sequential=True,
        ),
    )
    result = trainer.train()
    train_curve, validation_curve = _seed_replica_losses(
        dataset, split, trainer.normalizer, batch_size=4, epochs=3
    )
    assert result.history.train_loss == train_curve
    assert result.history.validation_loss == validation_curve
