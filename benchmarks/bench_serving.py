"""Serving-layer throughput: batched `ScreeningService` vs the per-vector loop.

The paper's speedup argument (Table 2) is measured one test vector at a time;
the serving layer exists to turn that per-vector speed into *throughput*.
This benchmark screens the same vector set three ways on the small test
design:

* ``sequential``  — the original per-vector ``predict_features`` loop (what
  ``predict_dataset`` did before the batched path existed),
* ``batched``     — ``NoisePredictor.predict_batch`` (one fused forward pass
  per chunk),
* ``service``     — the full :class:`ScreeningService` stack (queue,
  micro-batcher, result cache), cold and warm.

It also asserts the two properties the serving layer promises: batched
predictions match the sequential ones within 1e-8, and service throughput is
at least 3x the sequential loop.

A second report compares serving *precision*: the same checkpoint served at
float64 (the default) and float32 (the kernel-dispatch fast path) over the
GEMM-dominated batched forward.  float32 must be at least 2x faster at
matching accuracy — the headline guarantee of the ``repro.nn.kernels``
dispatch layer (see ``docs/kernels.md``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import REPO_ROOT, append_trajectory, obs_snapshot, save_records
from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.datagen import git_revision
from repro.features.extraction import (
    FeatureNormalizer,
    distance_feature,
    extract_vector_features,
)
from repro.io import ExperimentRecord, latency_throughput_columns
from repro.nn import no_grad
from repro.obs import MetricsRegistry
from repro.pdn import small_test_design
from repro.serving import PredictorRegistry, ScreeningService
from repro.utils import Timer
from repro.workloads import generate_test_vectors
from repro.workloads.vectors import VectorConfig

NUM_VECTORS = 48
MAX_BATCH = 16
ROUNDS = 3

#: GEMM-dominated fixture for the float32-vs-float64 comparison: tiles and
#: kernel counts large enough that the convolution GEMMs dominate wall time
#: (on tiny fixtures the dtype-independent framework overhead hides the
#: single-precision win).  Calibrated so one float64 round takes ~0.15 s.
DTYPE_TILE = 16
DTYPE_KERNELS = 8
DTYPE_BUMPS = 24
DTYPE_VECTORS = 32
DTYPE_STAMPS = 12
DTYPE_ROUNDS = 5
#: The kernel-dispatch layer's headline guarantee (also enforced in CI).
MIN_DTYPE_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """Design, predictor, registry and pre-extracted features for screening."""
    design = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    model = WorstCaseNoiseNet(
        num_bumps=design.grid.num_bumps,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0
        ),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    predictor = NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(design),
        compression_rate=0.3,
    )
    registry = PredictorRegistry(tmp_path_factory.mktemp("serving-bench"), capacity=2)
    registry.register(design.name, predictor)
    traces = generate_test_vectors(
        design, NUM_VECTORS + 8, VectorConfig(num_steps=120, dt=1e-11), seed=11
    )
    features = [
        extract_vector_features(
            trace, design, compression_rate=predictor.compression_rate
        )
        for trace in traces
    ]
    warmup, features = features[NUM_VECTORS:], features[:NUM_VECTORS]
    # Warm both code paths at full size so the first timed pass is
    # representative (allocator growth and BLAS spin-up happen here).
    for item in features:
        predictor.predict_features(item)
    predictor.predict_batch(features, max_batch=MAX_BATCH)
    return design, predictor, registry, features, warmup


def test_serving_throughput_report(benchmark, serving_setup):
    """Measure all three screening modes and persist the comparison table."""
    design, predictor, registry, features, warmup = serving_setup
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records = []

    def best_of(runs, body):
        """Best-of-N wall time (standard noise suppression for micro-benchmarks)."""
        times = []
        for _ in range(runs):
            timer = Timer()
            with timer.measure():
                result = body()
            times.append(timer.last)
        return min(times), result

    # 1. Sequential per-vector loop (the pre-serving baseline).
    sequential_seconds, sequential = best_of(
        ROUNDS, lambda: [predictor.predict_features(item) for item in features]
    )
    records.append(
        ExperimentRecord(
            "serving",
            "sequential_loop",
            {
                "total_s": sequential_seconds,
                **latency_throughput_columns(
                    [result.runtime_seconds for result in sequential],
                    total_seconds=sequential_seconds,
                ),
            },
        )
    )

    # 2. Batched predictor path.
    batched_seconds, batched = best_of(
        ROUNDS, lambda: predictor.predict_batch(features, max_batch=MAX_BATCH)
    )
    records.append(
        ExperimentRecord(
            "serving",
            "predict_batch",
            {
                "total_s": batched_seconds,
                **latency_throughput_columns(
                    [result.runtime_seconds for result in batched],
                    total_seconds=batched_seconds,
                ),
            },
        )
    )

    # 3. Full service, cold (model runs) and warm (pure cache hits), reporting
    # through a live metrics registry so the per-path latency histograms feed
    # the trajectory snapshot below.
    with ScreeningService(
        registry, max_batch=MAX_BATCH, max_wait=2e-3, metrics=MetricsRegistry()
    ) as service:
        # Warm the worker thread itself on vectors outside the measured set.
        service.screen(warmup, design.name)

        def cold_pass():
            service.cache.clear()
            return service.screen(features, design.name)

        cold_seconds, served = best_of(ROUNDS, cold_pass)
        cold_latencies = service.latencies()[-len(features):]
        hits_before_warm = service.stats.cache_hits
        warm_seconds, _ = best_of(1, lambda: service.screen(features, design.name))
        warm_latencies = service.latencies()[-len(features):]
        stats = service.stats
        telemetry = obs_snapshot(service)
    records.append(
        ExperimentRecord(
            "serving",
            "service_cold",
            {
                "total_s": cold_seconds,
                **latency_throughput_columns(cold_latencies, total_seconds=cold_seconds),
                "mean_batch": stats.mean_batch_size,
            },
        )
    )
    records.append(
        ExperimentRecord(
            "serving",
            "service_warm_cache",
            {
                "total_s": warm_seconds,
                **latency_throughput_columns(warm_latencies, total_seconds=warm_seconds),
                "cache_hit_rate": stats.cache_hit_rate,
            },
        )
    )

    for record in records:
        record.values["speedup_vs_sequential"] = (
            record.values["vectors_per_sec"]
            / records[0].values["vectors_per_sec"]
        )
    save_records(records, "serving", "Serving throughput — batched service vs per-vector loop")
    append_trajectory(
        "serving",
        {
            "timestamp": time.time(),
            "git_rev": git_revision(REPO_ROOT),
            "num_vectors": NUM_VECTORS,
            "sequential_s": sequential_seconds,
            "service_cold_s": cold_seconds,
            "service_warm_s": warm_seconds,
            "obs": telemetry,
        },
        header={
            "metric": "screening service throughput vs sequential per-vector loop",
            "min_speedup": 3.0,
        },
    )

    # Batched predictions match the sequential loop.
    for single, fused, from_service in zip(sequential, batched, served):
        np.testing.assert_allclose(
            fused.noise_map, single.noise_map, rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(
            from_service.noise_map, single.noise_map, rtol=1e-8, atol=1e-10
        )
    # The whole point of the serving layer: >= 3x the sequential loop.
    assert cold_seconds * 3.0 <= sequential_seconds
    # The warm pass is answered from the cache alone and is faster still.
    assert stats.cache_hits - hits_before_warm == len(features)
    assert warm_seconds < cold_seconds


@pytest.mark.parametrize("mode", ["sequential", "batched"])
def test_predict_throughput(benchmark, serving_setup, mode):
    """Per-mode timing rows for the pytest-benchmark table."""
    _, predictor, _, features, _ = serving_setup
    if mode == "sequential":
        run = lambda: [predictor.predict_features(item) for item in features]
    else:
        run = lambda: predictor.predict_batch(features, max_batch=MAX_BATCH)
    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(features)


def _dtype_predictor(dtype: str) -> NoisePredictor:
    """A predictor over the GEMM-dominated dtype fixture, served at ``dtype``.

    Both precisions are built from the *same* float64 weights (seeded model
    construction), so their outputs are directly comparable — the only
    difference is the precision the kernels run at.
    """
    model = WorstCaseNoiseNet(
        num_bumps=DTYPE_BUMPS,
        config=ModelConfig(
            distance_kernels=DTYPE_KERNELS,
            fusion_kernels=DTYPE_KERNELS,
            prediction_kernels=DTYPE_KERNELS,
            seed=7,
        ),
    )
    rng = np.random.default_rng(13)
    distance = rng.uniform(200.0, 4000.0, size=(DTYPE_BUMPS, DTYPE_TILE, DTYPE_TILE))
    normalizer = FeatureNormalizer(
        current_scale=0.05, distance_scale=1000.0, noise_scale=0.15
    )
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance,
        compression_rate=0.3,
        dtype=dtype,
    )


def test_dtype_throughput_report(benchmark):
    """float32 serving >= 2x float64 on the batched forward, same answers.

    Times the dense batched forward (``forward_batch`` with a precomputed
    reduced-distance map — exactly the per-chunk hot path inside
    ``predict_batch``) at both serving precisions, appends a dtype row to
    ``BENCH_serving.json``, and gates the speedup plus output parity.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(29)
    currents64 = rng.normal(
        0.0, 1.0, size=(DTYPE_VECTORS, DTYPE_STAMPS, DTYPE_TILE, DTYPE_TILE)
    )

    def best_of(runs, body):
        times, result = [], None
        for _ in range(runs):
            timer = Timer()
            with timer.measure():
                result = body()
            times.append(timer.last)
        return min(times), result

    records, seconds, outputs = [], {}, {}
    for dtype in ("float64", "float32"):
        predictor = _dtype_predictor(dtype)
        currents = currents64.astype(predictor.dtype)
        with no_grad():
            reduced = predictor.model.reduce_distance(predictor._normalized_distance)

            def forward():
                return predictor.model.forward_batch(
                    currents, predictor._normalized_distance, reduced_distance=reduced
                ).data

            forward()  # warm the workspace pool at this (shape, dtype)
            elapsed, noise_maps = best_of(DTYPE_ROUNDS, forward)
        assert noise_maps.dtype == np.dtype(dtype)
        seconds[dtype] = elapsed
        outputs[dtype] = noise_maps
        records.append(
            ExperimentRecord(
                "serving_dtype",
                f"forward_batch_{dtype}",
                {
                    "dtype": dtype,
                    "total_s": elapsed,
                    "vectors_per_sec": DTYPE_VECTORS / elapsed,
                },
            )
        )

    speedup = seconds["float64"] / seconds["float32"]
    for record in records:
        record.values["speedup_vs_float64"] = (
            seconds["float64"] / record.values["total_s"]
        )
    save_records(
        records, "serving_dtype", "Serving precision — float32 vs float64 forward"
    )
    append_trajectory(
        "serving",
        {
            "timestamp": time.time(),
            "git_rev": git_revision(REPO_ROOT),
            "dtype_fixture": {
                "tile": DTYPE_TILE,
                "kernels": DTYPE_KERNELS,
                "num_vectors": DTYPE_VECTORS,
                "num_stamps": DTYPE_STAMPS,
            },
            "float64_s": seconds["float64"],
            "float32_s": seconds["float32"],
            "dtype_speedup": speedup,
            "min_dtype_speedup": MIN_DTYPE_SPEEDUP,
        },
    )

    # Same checkpoint, same inputs: float32 answers must match float64 to
    # single-precision rounding (measured max relative error ~2e-5).
    np.testing.assert_allclose(
        outputs["float32"], outputs["float64"], rtol=1e-3, atol=1e-4
    )
    # The kernel-dispatch headline: float32 inference >= 2x float64.
    assert speedup >= MIN_DTYPE_SPEEDUP, (
        f"float32 serving is only {speedup:.2f}x float64 "
        f"(needs >= {MIN_DTYPE_SPEEDUP}x)"
    )
