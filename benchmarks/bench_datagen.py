"""Dataset-factory throughput: `repro.datagen` vs the per-vector loop.

Training corpora are the other hot path next to serving: every design,
ablation and scenario family starts with thousands of transient sign-off
runs.  This benchmark covers both levers the factory has:

* **batching** — ``sequential`` (one design at a time, one vector at a
  time, per-vector ``analysis.run``) vs ``factory``
  (:func:`repro.datagen.generate_corpus`: lockstep block-RHS transient
  solves, symmetric-mode factorisation, batched feature extraction, shard
  writing, content hashing, manifest bookkeeping);
* **model-order reduction** — full-order companion labelling vs the gated
  Krylov reduced-order strategy (:mod:`repro.sim.rom`) on a large design,
  where the ROM projects the MNA system onto a small subspace once and then
  labels every vector with dense ``rank x rank`` steps.

It asserts the factory guarantees:

1. **>= 3x end-to-end speedup** of the factory over the sequential baseline
   — although the factory also pays for shard IO and hashing;
2. **equal datasets** — identical vectors/names/shapes, noise maps within
   the documented solver-rounding tolerance (see ``docs/data-pipeline.md``),
   and two factory runs of the same spec produce identical content hashes;
3. **resumability** — a run interrupted mid-corpus resumes to the same
   manifest state (same shard records and hashes) as an uninterrupted run;
4. **>= 5x ROM labelling speedup** over the full-order block solver at the
   pinned ``worst_droop`` tolerance (``ROMOptions.tolerance``), with zero
   gate fallbacks — the reduced-order guarantee ``docs/solvers.md``
   documents and CI re-checks on every push via ``--smoke``.

Full-order vs ROM rows append to the repo-root ``BENCH_datagen.json``
trajectory (every other bench persists one).  Runs under pytest
(``python -m pytest benchmarks/bench_datagen.py``) or as a script wrapping
a telemetry run::

    python benchmarks/bench_datagen.py --smoke
    python scripts/obs_report.py benchmarks/results/datagen_obs
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from common import REPO_ROOT, append_trajectory, save_records
from repro.datagen import (
    dataset_content_hash,
    generate_corpus,
    git_revision,
    load_design_dataset,
    paper_corpus_spec,
)
from repro.io import ExperimentRecord
from repro.pdn import reference_design
from repro.pdn.designs import design_from_name
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.rom import ROMOptions
from repro.sim.transient import TransientEngine, TransientOptions
from repro.utils import Timer
from repro.workloads import generate_test_vectors
from repro.workloads.dataset import build_dataset
from repro.workloads.vectors import TestVectorGenerator, VectorConfig

#: The benchmark corpus: the paper's four-design sweep, scaled far down so
#: the whole comparison runs in seconds (speedup ratios, not absolute times,
#: are what this benchmark reproduces — the quick-preset philosophy).
SPEC = paper_corpus_spec(scale=0.08, num_vectors=48, num_steps=400, shard_size=48)
ROUNDS = 3
MIN_SPEEDUP = 3.0

#: The ROM labelling comparison runs on a *large* design — model-order
#: reduction pays off when the full-order system is big (thousands of
#: nodes), which the tiny factory corpus above deliberately is not.
ROM_DESIGN = "D1"
ROM_SCALE = 0.5
ROM_VECTORS = 96
ROM_STEPS = 400
ROM_DT = 1e-11
ROM_SEED = 7
#: Explicit rank (instead of the auto heuristic): measured on this design
#: and vector suite, rank 192 is the joint sweet spot — relative
#: ``worst_droop`` error ~0.072 (10% under the pinned tolerance) at ~6.3x
#: the full-order block solver (26% over the speedup gate).
ROM_OPTIONS = ROMOptions(rank=192)
MIN_ROM_SPEEDUP = 5.0


def _sequential_baseline() -> dict:
    """Generate the corpus the pre-factory way: per design, per vector."""
    datasets = {}
    for design_spec in SPEC.designs:
        design = design_from_name(design_spec.design)
        generator = TestVectorGenerator(design, design_spec.vector_config())
        traces = generator.generate_suite(design_spec.num_vectors, seed=design_spec.seed)
        analysis = DynamicNoiseAnalysis(design, design_spec.dt, TransientOptions())
        datasets[design_spec.label] = build_dataset(
            design,
            traces,
            compression_rate=design_spec.compression_rate,
            rate_step=design_spec.rate_step,
            analysis=analysis,
        )
    return datasets


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for benchmarks)."""
    times, result = [], None
    for _ in range(runs):
        timer = Timer()
        with timer.measure():
            result = body()
        times.append(timer.last)
    return min(times), result


def test_datagen_speedup_and_equivalence(benchmark, tmp_path):
    """Factory >= 3x the per-vector loop, with equal corpus contents."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sequential_seconds, baseline = _best_of(ROUNDS, _sequential_baseline)

    roots = [tmp_path / f"corpus-{i}" for i in range(ROUNDS)]
    run_index = iter(range(ROUNDS))
    factory_seconds, report = _best_of(
        ROUNDS,
        lambda: generate_corpus(SPEC, roots[next(run_index)], num_workers=0),
    )
    assert report.complete
    speedup = sequential_seconds / factory_seconds

    records = [
        ExperimentRecord(
            "datagen",
            "sequential_loop",
            {
                "total_s": sequential_seconds,
                "vectors": SPEC.total_vectors,
                "vectors_per_sec": SPEC.total_vectors / sequential_seconds,
            },
        ),
        ExperimentRecord(
            "datagen",
            "factory",
            {
                "total_s": factory_seconds,
                "vectors": SPEC.total_vectors,
                "vectors_per_sec": SPEC.total_vectors / factory_seconds,
                "shards": report.shards_total,
                "speedup_vs_sequential": speedup,
            },
        ),
    ]
    save_records(records, "datagen", "Dataset factory vs sequential per-vector loop")

    # Equal corpus contents: same vectors, names and shapes; noise maps
    # within the documented solver-rounding tolerance; and the two factory
    # runs bit-reproduce each other (identical shard content hashes).
    for design_spec in SPEC.designs:
        label = design_spec.label
        factory_ds = load_design_dataset(roots[0], label, verify=True)
        reference = baseline[label]
        assert len(factory_ds) == len(reference)
        for ours, theirs in zip(factory_ds.samples, reference.samples):
            assert ours.name == theirs.name
            np.testing.assert_array_equal(
                ours.features.current_maps.shape, theirs.features.current_maps.shape
            )
            np.testing.assert_allclose(
                ours.features.current_maps, theirs.features.current_maps,
                rtol=1e-12, atol=1e-15,
            )
            np.testing.assert_allclose(
                ours.target, theirs.target, rtol=1e-9, atol=1e-12
            )
        assert dataset_content_hash(load_design_dataset(roots[1], label)) == (
            dataset_content_hash(factory_ds)
        )

    # The headline guarantee.
    assert speedup >= MIN_SPEEDUP, (
        f"dataset factory is only {speedup:.2f}x the sequential loop "
        f"(needs >= {MIN_SPEEDUP}x)"
    )


def test_datagen_resume_matches_uninterrupted(benchmark, tmp_path):
    """An interrupted + resumed run converges to the uninterrupted manifest."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    uninterrupted = tmp_path / "full"
    interrupted = tmp_path / "resumed"

    full_report = generate_corpus(SPEC, uninterrupted, num_workers=0)
    assert full_report.complete

    first = generate_corpus(SPEC, interrupted, num_workers=0, max_shards=2)
    assert not first.complete
    assert first.shards_generated == 2
    second = generate_corpus(SPEC, interrupted, num_workers=0)
    assert second.complete
    assert second.shards_skipped == first.shards_generated

    full_records = [record.to_dict() for record in full_report.manifest.records]
    resumed_records = [record.to_dict() for record in second.manifest.records]
    assert resumed_records == full_records


# --------------------------------------------------------------------- #
# reduced-order labelling
# --------------------------------------------------------------------- #


def run_rom_benchmark(rounds: int = ROUNDS):
    """Full-order vs gated ROM labelling on one large design.

    Both engines persist across rounds, the way the dataset factory holds
    one analysis per (design, solver) pair for a whole corpus — so the
    sparse factorisation and the one-time Krylov projection amortise over
    every labelled vector, and best-of-N measures the steady-state labelling
    throughput.  The ROM rounds run the *production* gated path: every
    ``run_many`` call validates a deterministic sample against the
    full-order reference and would fall back wholesale on a tolerance miss.

    Returns ``(records, entry)``: the comparison table rows and the
    ``BENCH_datagen.json`` trajectory entry.
    """
    design = reference_design(ROM_DESIGN, scale=ROM_SCALE, seed=0)
    traces = generate_test_vectors(
        design, ROM_VECTORS, VectorConfig(num_steps=ROM_STEPS, dt=ROM_DT), seed=ROM_SEED
    )

    full_engine = TransientEngine(design.mna, ROM_DT, TransientOptions())
    build_timer = Timer()
    with build_timer.measure():
        rom_engine = TransientEngine(
            design.mna, ROM_DT, TransientOptions(solver_mode="rom", rom=ROM_OPTIONS)
        )

    full_seconds, full_results = _best_of(rounds, lambda: full_engine.run_many(traces))
    rom_seconds, rom_results = _best_of(rounds, lambda: rom_engine.run_many(traces))
    speedup = full_seconds / rom_seconds

    # Accuracy over *every* vector, not just the gate's sample: the relative
    # worst_droop error the ROM labels carry into a training corpus.
    max_rel = max(
        abs(rom.worst_droop - full.worst_droop)
        / max(abs(full.worst_droop), ROM_OPTIONS.droop_floor)
        for rom, full in zip(rom_results, full_results)
    )
    stats = rom_engine.rom_stats

    records = [
        ExperimentRecord(
            "datagen",
            "labels_full_order",
            {
                "total_s": full_seconds,
                "vectors": ROM_VECTORS,
                "vectors_per_sec": ROM_VECTORS / full_seconds,
            },
        ),
        ExperimentRecord(
            "datagen",
            "labels_rom",
            {
                "total_s": rom_seconds,
                "vectors": ROM_VECTORS,
                "vectors_per_sec": ROM_VECTORS / rom_seconds,
                "rank": rom_engine.strategy.rank,
                "build_s": build_timer.last,
                "speedup_vs_full": speedup,
                "max_rel_error": max_rel,
                "fallbacks": stats.fallbacks,
            },
        ),
    ]
    entry = {
        "timestamp": time.time(),
        "git_rev": git_revision(REPO_ROOT),
        "design": f"{ROM_DESIGN}@{ROM_SCALE}",
        "nodes": design.mna.num_nodes,
        "vectors": ROM_VECTORS,
        "steps": ROM_STEPS,
        "rank": rom_engine.strategy.rank,
        "rom_build_s": build_timer.last,
        "full_s": full_seconds,
        "rom_s": rom_seconds,
        "speedup": speedup,
        "max_rel_error": max_rel,
        "tolerance": ROM_OPTIONS.tolerance,
        "validated": stats.validated,
        "fallbacks": stats.fallbacks,
    }
    return records, entry


def finish_rom(records, entry) -> None:
    """Persist the ROM comparison table and the trajectory row."""
    save_records(
        records, "datagen_rom", "Labelling throughput — full-order vs gated ROM"
    )
    append_trajectory(
        "datagen",
        entry,
        header={
            "metric": "transient labelling throughput, gated Krylov ROM vs "
            "full-order block solver",
            "min_speedup": MIN_ROM_SPEEDUP,
            "tolerance": ROM_OPTIONS.tolerance,
        },
    )


def check_rom(records, entry) -> None:
    """The gates: >= 5x at the pinned tolerance, and the gate never tripped."""
    assert entry["fallbacks"] == 0, (
        f"ROM gate fell back {entry['fallbacks']} time(s) during a clean "
        "benchmark run — the pinned tolerance no longer holds on this design"
    )
    assert entry["max_rel_error"] <= entry["tolerance"], (
        f"ROM worst_droop error {entry['max_rel_error']:.4f} exceeds the "
        f"pinned tolerance {entry['tolerance']}"
    )
    assert entry["speedup"] >= MIN_ROM_SPEEDUP, (
        f"ROM labelling is only {entry['speedup']:.2f}x the full-order "
        f"solver (needs >= {MIN_ROM_SPEEDUP}x)"
    )


def test_rom_labelling_speedup_and_accuracy(benchmark):
    """Pytest entry point: measure, persist, and gate the ROM comparison."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records, entry = run_rom_benchmark()
    finish_rom(records, entry)
    check_rom(records, entry)


def main(argv=None) -> int:
    """Script entry point; wraps the run in a ``repro.obs`` telemetry run."""
    import argparse

    from repro import obs
    from repro.io import format_table

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single measurement round (the CI ROM-gate mode)",
    )
    parser.add_argument(
        "--obs-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "datagen_obs",
        help="telemetry run directory (run_report.json lands here)",
    )
    args = parser.parse_args(argv)

    rounds = 1 if args.smoke else ROUNDS
    obs.start_run(args.obs_dir, config={"bench": "datagen_rom", "rounds": rounds})
    try:
        records, entry = run_rom_benchmark(rounds=rounds)
    finally:
        report = obs.finish_run(extra={"bench": "datagen_rom"})
    finish_rom(records, entry)
    print(format_table(records, title="Labelling throughput — full-order vs gated ROM"))
    print(f"telemetry report: {report}")
    check_rom(records, entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
