"""Dataset-factory throughput: `repro.datagen` vs the per-vector loop.

Training corpora are the other hot path next to serving: every design,
ablation and scenario family starts with thousands of transient sign-off
runs.  This benchmark generates the same 4-design corpus (D1–D4 analogues)
two ways:

* ``sequential`` — the pre-factory pipeline: one design at a time, one
  vector at a time (``build_dataset`` with per-vector ``analysis.run``,
  default ``direct`` solver), nothing written to disk;
* ``factory``    — :func:`repro.datagen.generate_corpus`: lockstep block-RHS
  transient solves, symmetric-mode factorisation, batched feature
  extraction, plus shard writing, content hashing and manifest bookkeeping.

It asserts the three factory guarantees:

1. **>= 3x end-to-end speedup** over the sequential baseline — although the
   factory also pays for shard IO and hashing;
2. **equal datasets** — identical vectors/names/shapes, noise maps within
   the documented solver-rounding tolerance (see ``docs/data-pipeline.md``),
   and two factory runs of the same spec produce identical content hashes;
3. **resumability** — a run interrupted mid-corpus resumes to the same
   manifest state (same shard records and hashes) as an uninterrupted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import save_records
from repro.datagen import (
    dataset_content_hash,
    generate_corpus,
    load_design_dataset,
    paper_corpus_spec,
)
from repro.io import ExperimentRecord
from repro.pdn.designs import design_from_name
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.transient import TransientOptions
from repro.utils import Timer
from repro.workloads.dataset import build_dataset
from repro.workloads.vectors import TestVectorGenerator

#: The benchmark corpus: the paper's four-design sweep, scaled far down so
#: the whole comparison runs in seconds (speedup ratios, not absolute times,
#: are what this benchmark reproduces — the quick-preset philosophy).
SPEC = paper_corpus_spec(scale=0.08, num_vectors=48, num_steps=400, shard_size=48)
ROUNDS = 3
MIN_SPEEDUP = 3.0


def _sequential_baseline() -> dict:
    """Generate the corpus the pre-factory way: per design, per vector."""
    datasets = {}
    for design_spec in SPEC.designs:
        design = design_from_name(design_spec.design)
        generator = TestVectorGenerator(design, design_spec.vector_config())
        traces = generator.generate_suite(design_spec.num_vectors, seed=design_spec.seed)
        analysis = DynamicNoiseAnalysis(design, design_spec.dt, TransientOptions())
        datasets[design_spec.label] = build_dataset(
            design,
            traces,
            compression_rate=design_spec.compression_rate,
            rate_step=design_spec.rate_step,
            analysis=analysis,
        )
    return datasets


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for benchmarks)."""
    times, result = [], None
    for _ in range(runs):
        timer = Timer()
        with timer.measure():
            result = body()
        times.append(timer.last)
    return min(times), result


def test_datagen_speedup_and_equivalence(benchmark, tmp_path):
    """Factory >= 3x the per-vector loop, with equal corpus contents."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sequential_seconds, baseline = _best_of(ROUNDS, _sequential_baseline)

    roots = [tmp_path / f"corpus-{i}" for i in range(ROUNDS)]
    run_index = iter(range(ROUNDS))
    factory_seconds, report = _best_of(
        ROUNDS,
        lambda: generate_corpus(SPEC, roots[next(run_index)], num_workers=0),
    )
    assert report.complete
    speedup = sequential_seconds / factory_seconds

    records = [
        ExperimentRecord(
            "datagen",
            "sequential_loop",
            {
                "total_s": sequential_seconds,
                "vectors": SPEC.total_vectors,
                "vectors_per_sec": SPEC.total_vectors / sequential_seconds,
            },
        ),
        ExperimentRecord(
            "datagen",
            "factory",
            {
                "total_s": factory_seconds,
                "vectors": SPEC.total_vectors,
                "vectors_per_sec": SPEC.total_vectors / factory_seconds,
                "shards": report.shards_total,
                "speedup_vs_sequential": speedup,
            },
        ),
    ]
    save_records(records, "datagen", "Dataset factory vs sequential per-vector loop")

    # Equal corpus contents: same vectors, names and shapes; noise maps
    # within the documented solver-rounding tolerance; and the two factory
    # runs bit-reproduce each other (identical shard content hashes).
    for design_spec in SPEC.designs:
        label = design_spec.label
        factory_ds = load_design_dataset(roots[0], label, verify=True)
        reference = baseline[label]
        assert len(factory_ds) == len(reference)
        for ours, theirs in zip(factory_ds.samples, reference.samples):
            assert ours.name == theirs.name
            np.testing.assert_array_equal(
                ours.features.current_maps.shape, theirs.features.current_maps.shape
            )
            np.testing.assert_allclose(
                ours.features.current_maps, theirs.features.current_maps,
                rtol=1e-12, atol=1e-15,
            )
            np.testing.assert_allclose(
                ours.target, theirs.target, rtol=1e-9, atol=1e-12
            )
        assert dataset_content_hash(load_design_dataset(roots[1], label)) == (
            dataset_content_hash(factory_ds)
        )

    # The headline guarantee.
    assert speedup >= MIN_SPEEDUP, (
        f"dataset factory is only {speedup:.2f}x the sequential loop "
        f"(needs >= {MIN_SPEEDUP}x)"
    )


def test_datagen_resume_matches_uninterrupted(benchmark, tmp_path):
    """An interrupted + resumed run converges to the uninterrupted manifest."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    uninterrupted = tmp_path / "full"
    interrupted = tmp_path / "resumed"

    full_report = generate_corpus(SPEC, uninterrupted, num_workers=0)
    assert full_report.complete

    first = generate_corpus(SPEC, interrupted, num_workers=0, max_shards=2)
    assert not first.complete
    assert first.shards_generated == 2
    second = generate_corpus(SPEC, interrupted, num_workers=0)
    assert second.complete
    assert second.shards_skipped == first.shards_generated

    full_records = [record.to_dict() for record in full_report.manifest.records]
    resumed_records = [record.to_dict() for record in second.manifest.records]
    assert resumed_records == full_records
