"""Figure 6 — impact of the temporal compression rate.

The paper sweeps Algorithm 1's compression rate ``r`` and reports (a) the
mean relative error and (b) the framework runtime versus ``r``: errors stay
flat down to a knee around r = 0.3 and then degrade quickly, while runtime
grows roughly linearly with the amount of retained data.  This benchmark
retrains the framework at several compression rates on the D1 analogue and
regenerates both series; the timed unit is inference at each rate.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest

from common import design_preset, get_dataset, get_design, preset_name, save_records
from repro.core import ModelConfig, PipelineConfig, TrainingConfig, WorstCaseNoiseFramework
from repro.io import ExperimentRecord

DESIGN = "D1"

#: Compression rates swept (the paper sweeps roughly 0.1 ... 0.9).
QUICK_RATES = (0.1, 0.2, 0.3, 0.5, 0.8)
FULL_RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


def sweep_rates() -> tuple[float, ...]:
    """Compression rates for the active preset."""
    return FULL_RATES if preset_name() == "full" else QUICK_RATES


@lru_cache(maxsize=None)
def run_at_rate(rate: float):
    """Train and evaluate the framework at one compression rate.

    The sweep reuses the same simulated traces (via the cached dataset's
    vectors being regenerated deterministically from the same seed); only the
    feature compression and the training differ, exactly as in the paper's
    ablation.  Training epochs are reduced relative to Table 2 to keep the
    sweep affordable.
    """
    preset = design_preset(DESIGN)
    config = PipelineConfig(
        num_vectors=preset.num_vectors,
        num_steps=preset.num_steps,
        compression_rate=rate,
        model=ModelConfig(seed=0),
        training=TrainingConfig(
            epochs=max(10, preset.epochs // 2),
            learning_rate=preset.learning_rate,
            batch_size=4,
            early_stopping_patience=None,
            seed=0,
        ),
        seed=0,
    )
    framework = WorstCaseNoiseFramework(get_design(DESIGN), config)
    return framework.run()


@pytest.mark.parametrize("rate", QUICK_RATES[:2])
def test_fig6_inference_runtime(benchmark, rate):
    """Time inference at two compression rates (more data -> more runtime)."""
    result = run_at_rate(rate)
    index = int(result.split.test[0])
    features = result.dataset.samples[index].features
    prediction = benchmark.pedantic(
        result.predictor.predict_features, args=(features,), rounds=3, iterations=1
    )
    assert prediction.noise_map.shape == result.dataset.tile_shape


def test_fig6_report(benchmark):
    """Regenerate both series of Fig. 6 and check their shape."""
    benchmark.pedantic(lambda: [run_at_rate(rate) for rate in sweep_rates()], rounds=1, iterations=1)
    records = []
    for rate in sweep_rates():
        result = run_at_rate(rate)
        records.append(
            ExperimentRecord(
                "fig6",
                f"r={rate:.1f}",
                {
                    "compression_rate": rate,
                    "mean_RE_%": result.report.mean_re_percent,
                    "mean_AE_mV": result.report.mean_ae_mv,
                    "predictor_runtime_s": result.runtime.predictor_seconds,
                    "retained_steps": result.dataset.samples[0].features.num_steps,
                    "speedup_vs_simulator": result.runtime.speedup,
                },
            )
        )
    save_records(records, "fig6_compression", "Figure 6 — temporal compression sweep (D1 analogue)")

    rates = np.array([record.values["compression_rate"] for record in records])
    errors = np.array([record.values["mean_RE_%"] for record in records])
    runtimes = np.array([record.values["predictor_runtime_s"] for record in records])

    # (b) runtime grows with the amount of retained data.
    assert runtimes[np.argmax(rates)] > runtimes[np.argmin(rates)]
    # (a) retaining more data does not blow accuracy up: the error at the
    # largest rate stays within a factor of two of the most aggressive
    # compression (the paper's curve is flat above the knee; training noise
    # at the quick preset adds scatter).
    assert errors[np.argmax(rates)] <= errors[np.argmin(rates)] * 2.0
