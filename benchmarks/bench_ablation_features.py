"""Feature and baseline ablation for the proposed framework.

DESIGN.md calls out two design choices worth ablating:

* the **distance-to-bump feature** — the paper argues that feeding the bump
  distance explicitly simplifies the network; this ablation trains the same
  CNN with the distance tensor zeroed out, and
* the **learned model vs engineered per-tile features** — gradient-boosted
  trees and ridge regression over hand-built per-tile features (the
  XGBIR/IncPIRD-style family of Sec. 2) on exactly the same data.

The benchmark reports mean AE / RE and AUC for each variant on the D1
analogue's held-out test vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_dataset, get_result, save_records
from repro.baselines import TileGBTBaseline, TileRidgeBaseline
from repro.core import evaluate_predictions
from repro.core.inference import NoisePredictor
from repro.core.training import NoiseModelTrainer
from repro.core.config import ModelConfig, TrainingConfig
from repro.io import ExperimentRecord

DESIGN = "D1"


@pytest.fixture(scope="module")
def ablation_results():
    """Full-feature result plus the no-distance variant and tile baselines."""
    result = get_result(DESIGN)
    dataset = get_dataset(DESIGN)
    split = result.split
    truth = result.truth_test_maps

    # --- no-distance variant: train the same CNN with a zeroed distance map.
    no_distance = dataset.subset(range(len(dataset)))
    no_distance.distance = np.zeros_like(dataset.distance)
    trainer = NoiseModelTrainer(
        no_distance,
        design=None,
        split=split,
        model_config=ModelConfig(seed=0),
        training_config=TrainingConfig(
            epochs=max(10, result.training.history.num_epochs // 2),
            learning_rate=2e-3,
            batch_size=4,
            early_stopping_patience=None,
            seed=0,
        ),
    )
    no_distance_training = trainer.train()
    predictor = NoisePredictor(
        model=no_distance_training.model,
        normalizer=no_distance_training.normalizer,
        distance=no_distance.distance,  # all-zero map: no bump information
    )
    no_distance_maps, _ = predictor.predict_dataset(no_distance, split.test)
    no_distance_report = evaluate_predictions(no_distance_maps, truth, dataset.hotspot_threshold)

    # --- engineered-feature baselines on the same split.
    gbt = TileGBTBaseline(num_trees=60, max_depth=4, seed=0).fit(dataset, split)
    gbt_maps, _ = gbt.predict_many(dataset, split.test)
    gbt_report = evaluate_predictions(gbt_maps, truth, dataset.hotspot_threshold)

    ridge = TileRidgeBaseline().fit(dataset, split)
    ridge_maps, _ = ridge.predict_many(dataset, split.test)
    ridge_report = evaluate_predictions(ridge_maps, truth, dataset.hotspot_threshold)

    return result, no_distance_report, gbt_report, ridge_report


def test_ablation_runtime(benchmark):
    """Time the full-feature framework inference (reference point)."""
    result = get_result(DESIGN)
    dataset = get_dataset(DESIGN)
    features = dataset.samples[int(result.split.test[0])].features
    benchmark.pedantic(result.predictor.predict_features, args=(features,), rounds=3, iterations=1)


def test_ablation_report(benchmark, ablation_results):
    """Persist the ablation table and check the expected ordering."""
    result, no_distance_report, gbt_report, ridge_report = ablation_results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def values(report):
        return {
            "mean_AE_mV": report.mean_ae_mv,
            "mean_RE_%": report.mean_re_percent,
            "max_RE_%": report.max_re_percent,
            "AUC": report.auc,
            "hotspot_missing_%": report.hotspot_missing_rate * 100.0,
        }

    records = [
        ExperimentRecord("ablation", "proposed (full features)", values(result.report)),
        ExperimentRecord("ablation", "proposed w/o distance feature", values(no_distance_report)),
        ExperimentRecord("ablation", "per-tile GBT (XGBIR-style)", values(gbt_report)),
        ExperimentRecord("ablation", "per-tile ridge regression", values(ridge_report)),
    ]
    save_records(records, "ablation_features", "Ablation — feature set and model family (D1 analogue)")

    # Shape check: the full-feature CNN gets the full training budget, the
    # ablated variants get half, so it must be the best CNN variant and stay
    # competitive with (within 2x of) the best engineered-feature baseline
    # even under the quick preset's tiny training budget.
    proposed = records[0].values["mean_AE_mV"]
    no_distance = records[1].values["mean_AE_mV"]
    best_baseline = min(records[2].values["mean_AE_mV"], records[3].values["mean_AE_mV"])
    assert proposed <= no_distance * 1.25
    assert proposed <= 2.5 * best_baseline
