"""Figure 5 — detailed prediction results on D4.

The paper's Fig. 5 shows, for the largest design: (a) the histogram of
per-tile relative errors, (b) the spatial map of relative errors, (c) the
ground-truth noise map, and (d) the predicted noise map.  This benchmark
regenerates all four panels (text renderings plus summary statistics) from
the trained D4 framework and times the prediction of the displayed vector.
"""

from __future__ import annotations

import numpy as np

from common import RESULTS_DIR, get_dataset, get_result, save_records
from repro.core.metrics import relative_error
from repro.io import ExperimentRecord, ascii_heatmap, ascii_histogram

DESIGN = "D4"


def test_fig5_prediction_runtime(benchmark):
    """Time the full-map prediction used for the Fig. 5 panels."""
    result = get_result(DESIGN)
    dataset = get_dataset(DESIGN)
    index = int(result.split.test[0])
    prediction = benchmark.pedantic(
        result.predictor.predict_features,
        args=(dataset.samples[index].features,),
        rounds=3,
        iterations=1,
    )
    assert prediction.noise_map.shape == dataset.tile_shape


def test_fig5_report(benchmark):
    """Regenerate the histogram, error map and noise-map pair for D4."""
    result = benchmark.pedantic(lambda: get_result(DESIGN), rounds=1, iterations=1)
    truth = result.truth_test_maps
    predicted = result.predicted_test_maps
    errors = relative_error(predicted, truth)

    # Panel (a): histogram of per-tile relative errors across the test set.
    histogram = ascii_histogram(100.0 * errors.ravel(), bins=20,
                                title="Fig 5(a) — relative error histogram (%)")

    # Panels (b)-(d): per-tile maps for the vector with the deepest droop.
    display = int(np.argmax(truth.reshape(len(truth), -1).max(axis=1)))
    error_map = ascii_heatmap(100.0 * errors[display], title="Fig 5(b) — relative error map (%)")
    truth_map = ascii_heatmap(1e3 * truth[display], title="Fig 5(c) — ground-truth noise map (mV)")
    predicted_map = ascii_heatmap(1e3 * predicted[display], title="Fig 5(d) — predicted noise map (mV)")

    fraction_below_5 = float(np.mean(errors < 0.05))
    fraction_below_10 = float(np.mean(errors < 0.10))
    records = [
        ExperimentRecord(
            "fig5",
            DESIGN,
            {
                "tiles_below_5%_RE": 100.0 * fraction_below_5,
                "tiles_below_10%_RE": 100.0 * fraction_below_10,
                "median_RE_%": 100.0 * float(np.median(errors)),
                "p99_RE_%": 100.0 * float(np.percentile(errors, 99)),
                "max_RE_%": 100.0 * float(errors.max()),
                "auc": result.report.auc,
            },
        )
    ]
    save_records(records, "fig5_d4_detail", "Figure 5 — D4 prediction detail")
    panels = "\n\n".join([histogram, error_map, truth_map, predicted_map])
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "fig5_d4_detail.txt").write_text(panels, encoding="utf-8")
    print()
    print(panels)

    # Shape of the paper's finding: the bulk of the tiles sit at low relative
    # error, with only a small tail of low-noise tiles at large RE.  The
    # quick preset trains on an order of magnitude less data than the paper,
    # so the threshold here is looser than the paper's "most tiles below 5%".
    assert fraction_below_10 > 0.15
    assert records[0].values["median_RE_%"] < 30.0
