"""Fault-seam overhead gate: disabled `repro.faults` hooks must be free.

PR 8 threaded fault-injection seams through every hot loop of the pipeline:
one :meth:`~repro.faults.FaultInjector.on_train_step` call per optimiser
step and one :meth:`~repro.faults.FaultInjector.before_solve` call per
transient ground-truth solve (the two inner loops everything else amortises
over).  The design bet is the same as ``bench_obs.py``'s: with no injector
installed the seam is one attribute read plus one no-op method call, costing
nanoseconds against the microsecond-to-millisecond work it brackets.  This
benchmark holds that to numbers:

1. **Op-cost accounting** — time ``faults.active().on_train_step(...)`` and
   ``faults.active().before_solve(...)`` directly (100k iterations against
   the inert default injector) and require one seam call to cost at most
   ``DISABLED_BUDGET`` (1%) of a mean training step and of a mean transient
   solve, measured on the same scaled workload ``bench_training.py`` uses.
2. **Wall-clock A/B** — train the same model twice, once under the inert
   default and once under an (unarmed) :class:`~repro.faults.ScriptedFaults`
   injector, and require the scripted pass to stay within
   ``WALL_CLOCK_SLACK`` of the inert pass — a backstop against accidental
   work sneaking into the counting path.

Results land in ``benchmarks/results/resilience.{json,csv}`` and a
trajectory entry is appended to the repo-root ``BENCH_resilience.json``.
"""

from __future__ import annotations

import time

from common import REPO_ROOT, append_trajectory, save_records
from repro import faults
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer
from repro.datagen import git_revision
from repro.faults import NULL_FAULTS, ScriptedFaults
from repro.io import ExperimentRecord
from repro.pdn import small_test_design
from repro.utils import Timer
from repro.workloads import build_dataset, expansion_split, generate_test_vectors
from repro.workloads.vectors import VectorConfig

#: Timed iterations per seam op (keeps per-op timing noise < 1 ns).
OP_ITERATIONS = 100_000

#: A disabled seam call must cost <= 1% of the work it brackets.
DISABLED_BUDGET = 0.01

#: Wall-clock backstop: unarmed-injector pass within 25% of the inert pass.
WALL_CLOCK_SLACK = 1.25

EPOCHS = 6
BATCH_SIZE = 8
SIM_BATCH_SIZE = 4
ROUNDS = 3

_MODEL_CONFIG = ModelConfig(seed=0)


def _seam_cost(seam_call) -> float:
    """Mean seconds per seam invocation, as the call sites pay it.

    Times the full expression a pipeline call site executes — the
    ``faults.active()`` registry read *and* the hook dispatch — not just the
    bare method, so the gate covers the whole per-event cost.
    """
    started = time.perf_counter()
    for _ in range(OP_ITERATIONS):
        seam_call()
    elapsed = time.perf_counter() - started
    return elapsed / OP_ITERATIONS


def _workload():
    """The ``bench_training.py`` workload: scaled design, quick-preset sizes."""
    design = small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)
    traces = generate_test_vectors(
        design, 48, VectorConfig(num_steps=20, dt=1e-11), seed=3
    )
    return design, traces


def _simulate(design, traces):
    return build_dataset(
        design, traces, compression_rate=0.3, sim_batch_size=SIM_BATCH_SIZE
    )


def _train(design, dataset, split):
    trainer = NoiseModelTrainer(
        dataset,
        design=design,
        split=split,
        model_config=_MODEL_CONFIG,
        training_config=TrainingConfig(
            epochs=EPOCHS,
            batch_size=BATCH_SIZE,
            early_stopping_patience=None,
            seed=0,
        ),
    )
    return trainer.train()


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for benchmarks)."""
    times, result = [], None
    for _ in range(runs):
        timer = Timer()
        with timer.measure():
            result = body()
        times.append(timer.last)
    return min(times), result


def test_fault_seam_overhead_gate():
    """One disabled seam call <= 1% of a mean train step and a mean solve."""
    step_cost = _seam_cost(lambda: faults.active().on_train_step(0, 0, None))
    solve_cost = _seam_cost(lambda: faults.active().before_solve("bench", 4))
    assert faults.active() is NULL_FAULTS

    design, traces = _workload()

    # Count the seam events of each phase with an unarmed scripted injector
    # (solves per dataset build, optimiser steps per training run) — the
    # counting pass doubles as the wall-clock A/B live arm.
    counting = ScriptedFaults()
    with faults.injected(counting):
        dataset = _simulate(design, traces)
    num_solves = counting.calls["sim.solve"]
    split = expansion_split(dataset, seed=0)

    inert_sim_seconds, _ = _best_of(ROUNDS, lambda: _simulate(design, traces))
    inert_train_seconds, _ = _best_of(ROUNDS, lambda: _train(design, dataset, split))

    def scripted_train():
        with faults.injected(ScriptedFaults()) as injector:
            _train(design, dataset, split)
        return injector

    scripted_train_seconds, injector = _best_of(ROUNDS, scripted_train)
    num_steps = injector.calls["training.step"]

    mean_step = inert_train_seconds / num_steps
    mean_solve = inert_sim_seconds / num_solves
    step_fraction = step_cost / mean_step
    solve_fraction = solve_cost / mean_solve
    wall_clock_ratio = scripted_train_seconds / inert_train_seconds

    records = [
        ExperimentRecord(
            "resilience",
            "training_step_seam",
            {
                "seam_cost_ns": step_cost * 1e9,
                "mean_step_us": mean_step * 1e6,
                "overhead_pct": step_fraction * 100.0,
                "budget_pct": DISABLED_BUDGET * 100.0,
            },
        ),
        ExperimentRecord(
            "resilience",
            "transient_solve_seam",
            {
                "seam_cost_ns": solve_cost * 1e9,
                "mean_solve_us": mean_solve * 1e6,
                "overhead_pct": solve_fraction * 100.0,
                "budget_pct": DISABLED_BUDGET * 100.0,
            },
        ),
        ExperimentRecord(
            "resilience",
            "wall_clock_ab",
            {
                "inert_s": inert_train_seconds,
                "scripted_s": scripted_train_seconds,
                "ratio": wall_clock_ratio,
                "max_ratio": WALL_CLOCK_SLACK,
            },
        ),
    ]
    save_records(
        records, "resilience", "Fault-seam overhead — seam ops vs step/solve cost"
    )
    append_trajectory(
        "resilience",
        {
            "timestamp": time.time(),
            "git_rev": git_revision(REPO_ROOT),
            "step_seam_ns": step_cost * 1e9,
            "solve_seam_ns": solve_cost * 1e9,
            "step_overhead_pct": step_fraction * 100.0,
            "solve_overhead_pct": solve_fraction * 100.0,
            "wall_clock_ratio": wall_clock_ratio,
        },
        header={
            "metric": "disabled fault-seam overhead per train step / solve",
            "disabled_budget_pct": DISABLED_BUDGET * 100.0,
        },
    )

    # Gate 1: the training-step seam is free to within 1% of a step.
    assert step_fraction <= DISABLED_BUDGET, (
        f"disabled training seam costs {step_fraction:.2%} of a mean step "
        f"({step_cost * 1e9:.0f} ns vs {mean_step * 1e6:.0f} us/step; "
        f"budget {DISABLED_BUDGET:.0%})"
    )
    # Gate 2: the solve seam is free to within 1% of a solve.
    assert solve_fraction <= DISABLED_BUDGET, (
        f"disabled solve seam costs {solve_fraction:.2%} of a mean solve "
        f"({solve_cost * 1e9:.0f} ns vs {mean_solve * 1e6:.0f} us/solve; "
        f"budget {DISABLED_BUDGET:.0%})"
    )
    # Backstop: an unarmed scripted injector tracks the inert wall-clock.
    assert wall_clock_ratio <= WALL_CLOCK_SLACK, (
        f"unarmed scripted-injector training pass is {wall_clock_ratio:.2f}x "
        f"the inert pass (backstop {WALL_CLOCK_SLACK}x)"
    )
