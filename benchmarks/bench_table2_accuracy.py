"""Table 2 — accuracy and runtime of the proposed framework vs the simulator.

For every design the paper reports mean / 99th-percentile / maximum absolute
and relative errors of the predicted worst-case noise maps, the hotspot
missing rate, and the runtime of the framework versus the commercial tool on
the held-out test vectors.  This benchmark trains the framework on each
reference-design analogue and regenerates those rows; the timed unit is the
CNN inference over the test vectors (the "Proposed (s)" column).
"""

from __future__ import annotations

import pytest

from common import get_dataset, get_result, save_records
from repro.io import ExperimentRecord, latency_throughput_columns
from repro.pdn import reference_design_names


def _table2_record(name: str) -> ExperimentRecord:
    result = get_result(name)
    report = result.report
    runtime = result.runtime
    # Per-vector latencies kept by the pipeline's evaluate stage (measured
    # one vector at a time, so the p50/p95 columns are true latencies).
    per_vector_runtimes = runtime.per_vector_seconds
    return ExperimentRecord(
        experiment="table2",
        label=name,
        values={
            "tile_grid": f"{result.dataset.tile_shape[0]}x{result.dataset.tile_shape[1]}",
            "mean_AE_mV": report.mean_ae_mv,
            "mean_RE_%": report.mean_re_percent,
            "p99_AE_mV": report.p99_ae_mv,
            "p99_RE_%": report.p99_re_percent,
            "max_AE_mV": report.max_ae_mv,
            "max_RE_%": report.max_re_percent,
            "proposed_s": runtime.predictor_seconds,
            "simulator_s": runtime.simulator_seconds,
            "speedup": runtime.speedup,
            "hotspot_missing_%": report.hotspot_missing_rate * 100.0,
            "test_vectors": runtime.num_vectors,
            **latency_throughput_columns(per_vector_runtimes),
        },
    )


@pytest.mark.parametrize("name", reference_design_names())
def test_table2_inference_runtime(benchmark, name):
    """Time the framework's full-map prediction for one test vector."""
    result = get_result(name)
    dataset = get_dataset(name)
    test_index = int(result.split.test[0])
    features = dataset.samples[test_index].features
    prediction = benchmark.pedantic(
        result.predictor.predict_features, args=(features,), rounds=3, iterations=1
    )
    assert prediction.noise_map.shape == dataset.tile_shape


def test_table2_report(benchmark):
    """Assemble and persist the Table 2 analogue, checking its shape."""
    records = benchmark.pedantic(
        lambda: [_table2_record(name) for name in reference_design_names()],
        rounds=1,
        iterations=1,
    )
    save_records(records, "table2_accuracy", "Table 2 — accuracy and runtime vs the simulator")
    for record in records:
        # The reproduction will not hit the paper's 0.63-1.02% mean RE with
        # the quick preset's tiny training budget, but the errors must stay a
        # small fraction of the ~100 mV noise levels.  The absolute speedup at
        # this scale is also far below the paper's 25-69x because the scaled
        # simulator finishes a vector in tens of milliseconds (EXPERIMENTS.md
        # discusses how it grows with design size); here we only require that
        # inference is not an order of magnitude slower than simulation.
        assert record.values["mean_AE_mV"] < 30.0
        assert record.values["mean_RE_%"] < 35.0
        assert record.values["speedup"] > 0.1
