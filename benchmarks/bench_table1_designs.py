"""Table 1 — characteristics of the reference designs D1-D4.

The paper's Table 1 reports, per design: the number of power-grid nodes, the
number of current loads, the mean and maximum worst-case noise over the
random test vectors, and the hotspot ratio (tiles exceeding 10% of Vdd).
This benchmark regenerates those columns for the synthetic analogues and
times the ground-truth simulation of one test vector per design.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_dataset, get_design, mean_hotspot_ratio, save_records
from repro.io import ExperimentRecord
from repro.pdn import reference_design_names
from repro.sim import DynamicNoiseAnalysis


def _table1_record(name: str) -> ExperimentRecord:
    design = get_design(name)
    dataset = get_dataset(name)
    targets = dataset.targets()
    per_vector_mean = targets.reshape(len(dataset), -1).mean(axis=1)
    return ExperimentRecord(
        experiment="table1",
        label=name,
        values={
            "tile_grid": f"{design.tile_grid.m}x{design.tile_grid.n}",
            "num_nodes": design.num_nodes,
            "num_loads_k": design.num_loads / 1e3,
            "mean_WN_mV": float(per_vector_mean.mean() * 1e3),
            "max_WN_mV": float(targets.max() * 1e3),
            "hotspot_ratio_%": 100.0 * mean_hotspot_ratio(dataset),
            "num_vectors": len(dataset),
        },
    )


@pytest.mark.parametrize("name", reference_design_names())
def test_table1_simulation_runtime(benchmark, name):
    """Time one ground-truth dynamic-noise simulation per design."""
    design = get_design(name)
    dataset = get_dataset(name)
    analysis = DynamicNoiseAnalysis(design, dataset.dt)
    # Re-simulate the first vector of the suite as the timed unit of work.
    from repro.workloads import generate_test_vectors
    from repro.workloads.vectors import VectorConfig

    trace = generate_test_vectors(
        design, 1, VectorConfig(num_steps=dataset.samples[0].features.num_steps * 2, dt=dataset.dt), seed=99
    )[0]
    result = benchmark.pedantic(analysis.run, args=(trace,), rounds=1, iterations=1)
    assert result.tile_noise.shape == design.tile_grid.shape


def test_table1_report(benchmark):
    """Assemble and persist the Table 1 analogue."""
    records = benchmark.pedantic(
        lambda: [_table1_record(name) for name in reference_design_names()],
        rounds=1,
        iterations=1,
    )
    save_records(records, "table1_designs", "Table 1 — design characteristics (synthetic analogues)")
    # Sanity of the reproduced shape: noise levels in the 40-200 mV band and
    # D3 the noisiest of the four (as in the paper).
    means = {record.label: record.values["mean_WN_mV"] for record in records}
    assert all(20.0 < value < 250.0 for value in means.values())
    assert means["D3"] == max(means.values())
