"""Figure 4 — ground-truth vs predicted worst-case noise maps for D1-D3.

The paper shows side-by-side heat maps of the simulated and predicted
worst-case noise for D1, D2 and D3, which are visually near-identical.  This
benchmark renders the same pair of maps (as ASCII heat maps, since the
environment has no plotting stack), records their correlation and structural
agreement, and times the prediction of the displayed vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import RESULTS_DIR, get_dataset, get_result, save_records
from repro.io import ExperimentRecord, ascii_heatmap

#: Designs shown in Fig. 4 of the paper.
FIG4_DESIGNS = ("D1", "D2", "D3")


def _display_vector_index(result) -> int:
    """The test vector whose map is displayed: the one with the deepest droop."""
    worst_per_vector = result.truth_test_maps.reshape(len(result.truth_test_maps), -1).max(axis=1)
    return int(np.argmax(worst_per_vector))


@pytest.mark.parametrize("name", FIG4_DESIGNS)
def test_fig4_prediction_runtime(benchmark, name):
    """Time the full-map prediction of the displayed vector."""
    result = get_result(name)
    dataset = get_dataset(name)
    index = int(result.split.test[_display_vector_index(result)])
    features = dataset.samples[index].features
    prediction = benchmark.pedantic(
        result.predictor.predict_features, args=(features,), rounds=3, iterations=1
    )
    assert prediction.noise_map.shape == dataset.tile_shape


def test_fig4_report(benchmark):
    """Render the map pairs and persist their agreement statistics."""
    benchmark.pedantic(lambda: [get_result(name) for name in FIG4_DESIGNS], rounds=1, iterations=1)
    records = []
    rendered = []
    for name in FIG4_DESIGNS:
        result = get_result(name)
        display = _display_vector_index(result)
        truth = result.truth_test_maps[display]
        predicted = result.predicted_test_maps[display]
        correlation = float(np.corrcoef(truth.ravel(), predicted.ravel())[0, 1])
        records.append(
            ExperimentRecord(
                "fig4",
                name,
                {
                    "pearson_correlation": correlation,
                    "truth_max_mV": float(truth.max() * 1e3),
                    "predicted_max_mV": float(predicted.max() * 1e3),
                    "mean_AE_mV": float(np.mean(np.abs(truth - predicted)) * 1e3),
                },
            )
        )
        rendered.append(ascii_heatmap(truth * 1e3, title=f"{name} ground truth (mV)"))
        rendered.append(ascii_heatmap(predicted * 1e3, title=f"{name} predicted (mV)"))

    save_records(records, "fig4_noise_maps", "Figure 4 — ground truth vs predicted noise maps (D1-D3)")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "fig4_noise_maps.txt").write_text("\n\n".join(rendered), encoding="utf-8")
    print()
    print("\n\n".join(rendered))

    # The predicted maps must track the ground truth (the paper's "almost
    # identical" claim).  Under the quick preset the correlation is weaker
    # than the paper's near-1.0 but must remain clearly positive for every
    # design, and strong for the best-trained one.
    correlations = [record.values["pearson_correlation"] for record in records]
    assert all(value > 0.3 for value in correlations)
    assert max(correlations) > 0.7
