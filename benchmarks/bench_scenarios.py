"""Scenario-mix generation cost vs the all-random corpus path.

Blending scenario vectors into a training corpus
(``CorpusDesignSpec.scenario_mix``) must be essentially free: the transient
ground-truth simulation dominates shard cost, and building a scenario trace
is no more expensive than composing a random vector.  This benchmark
generates the same-size corpus twice at equal vector count —

* ``random``       — the classic all-random corpus;
* ``scenario_mix`` — half the vectors drawn from an 8-family scenario mix
  (parameter variants and a composition included);

and asserts:

1. **<= 1.2x cost** — the scenario-mix corpus generates within 1.2x the
   wall-clock of the random corpus (best-of-N each);
2. **determinism** — two scenario-mix runs of the same spec produce
   identical shard content hashes;
3. **blend correctness** — exactly the spec'd vector indices differ from
   the random corpus, and the rest are bit-identical.
"""

from __future__ import annotations

import numpy as np

from common import save_records
from repro.datagen import (
    CorpusDesignSpec,
    CorpusSpec,
    generate_corpus,
    load_design_dataset,
)
from repro.io import ExperimentRecord
from repro.utils import Timer
from repro.workloads import overlay, scenario_spec

#: Eight distinct scenario families in the mix (with variants/composition).
MIX = (
    "power_virus",
    "idle_to_turbo",
    scenario_spec("staggered_dvfs", stagger=0.1),
    "thermal_throttle",
    "memory_phase",
    scenario_spec("resonance_chirp", stop_scale=1.5),
    "didt_step_train",
    overlay("duty_cycle_sweep", "cluster_migration"),
)

ROUNDS = 3
MAX_RATIO = 1.2


def _spec(with_mix: bool) -> CorpusSpec:
    fields = dict(
        label="bench", design="D1@0.08", num_vectors=48, num_steps=400,
        shard_size=24, seed=11,
    )
    if with_mix:
        fields.update(scenario_mix=MIX, scenario_fraction=0.5)
    return CorpusSpec(designs=(CorpusDesignSpec(**fields),))


def _best_of(runs, body):
    """Best-of-N wall time (standard noise suppression for benchmarks)."""
    times, result = [], None
    for index in range(runs):
        timer = Timer()
        with timer.measure():
            result = body(index)
        times.append(timer.last)
    return min(times), result


def test_scenario_mix_generation_cost(benchmark, tmp_path):
    """Scenario-mix shard generation stays within 1.2x the random path."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    random_seconds, _ = _best_of(
        ROUNDS,
        lambda i: generate_corpus(_spec(False), tmp_path / f"random-{i}", num_workers=0),
    )
    mix_seconds, _ = _best_of(
        ROUNDS,
        lambda i: generate_corpus(_spec(True), tmp_path / f"mix-{i}", num_workers=0),
    )
    ratio = mix_seconds / random_seconds

    records = [
        ExperimentRecord(
            "scenarios",
            "random_corpus",
            {"total_s": random_seconds, "vectors": _spec(False).total_vectors},
        ),
        ExperimentRecord(
            "scenarios",
            "scenario_mix_corpus",
            {
                "total_s": mix_seconds,
                "vectors": _spec(True).total_vectors,
                "mix_families": len(MIX),
                "cost_ratio_vs_random": ratio,
            },
        ),
    ]
    save_records(records, "scenarios", "Scenario-mix vs random corpus generation")

    # Determinism: two mix runs bit-reproduce each other.
    first = load_design_dataset(tmp_path / "mix-0", "bench", verify=True)
    second = load_design_dataset(tmp_path / "mix-1", "bench", verify=True)
    for a, b in zip(first.samples, second.samples):
        assert a.name == b.name
        np.testing.assert_array_equal(a.features.current_maps, b.features.current_maps)

    # Blend correctness: scenario slots differ from the random corpus, the
    # other vectors are bit-identical.
    random_ds = load_design_dataset(tmp_path / "random-0", "bench")
    assignment = _spec(True).designs[0].scenario_assignment()
    assert len(assignment) == 24
    differing = 0
    for index, (mixed, random) in enumerate(zip(first.samples, random_ds.samples)):
        same = np.array_equal(mixed.features.current_maps, random.features.current_maps)
        if index in assignment:
            assert not same
            differing += 1
        else:
            assert same
    assert differing == len(assignment)

    assert ratio <= MAX_RATIO, (
        f"scenario-mix corpus cost {ratio:.2f}x the random corpus "
        f"(budget {MAX_RATIO}x): {mix_seconds:.2f}s vs {random_seconds:.2f}s"
    )
