"""Table 3 — comparison against the PowerNet baseline on D4.

The paper compares its framework with PowerNet [13] on the largest design:
mean absolute error, mean and maximum relative error, hotspot-classification
AUC, and runtime.  The proposed one-shot full-map prediction wins on every
column; PowerNet pays for its per-tile maximum-CNN structure both in accuracy
(it never sees the whole map) and in runtime (one CNN evaluation per tile and
time window).  The timed unit here is each model's full-map prediction.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_dataset, get_result, preset_name, save_records
from repro.baselines import PowerNetBaseline, PowerNetConfig
from repro.core import evaluate_predictions
from repro.io import ExperimentRecord

#: The design used for the PowerNet comparison (D4 in the paper).
COMPARISON_DESIGN = "D4"


def _powernet_config() -> PowerNetConfig:
    if preset_name() == "full":
        return PowerNetConfig(window_size=15, num_time_maps=40, epochs=20, tiles_per_vector=64, seed=0)
    return PowerNetConfig(window_size=9, num_time_maps=12, epochs=8, tiles_per_vector=24, seed=0)


@pytest.fixture(scope="module")
def comparison():
    """Train both models on the same data and evaluate on the same test set."""
    result = get_result(COMPARISON_DESIGN)
    dataset = get_dataset(COMPARISON_DESIGN)
    baseline = PowerNetBaseline(_powernet_config())
    baseline.fit(dataset, result.split, seed=0)
    powernet_maps, powernet_runtimes = baseline.predict_many(dataset, result.split.test)
    truth = result.truth_test_maps
    powernet_report = evaluate_predictions(powernet_maps, truth, dataset.hotspot_threshold)
    return result, baseline, powernet_report, powernet_runtimes


def test_table3_powernet_prediction_runtime(benchmark, comparison):
    """Time PowerNet's tile-by-tile full-map prediction for one vector."""
    result, baseline, _, _ = comparison
    dataset = get_dataset(COMPARISON_DESIGN)
    index = int(result.split.test[0])
    noise_map, _ = benchmark.pedantic(
        baseline.predict_sample, args=(dataset, index), rounds=1, iterations=1
    )
    assert noise_map.shape == dataset.tile_shape


def test_table3_report(benchmark, comparison):
    """Assemble and persist the Table 3 analogue, checking who wins."""
    result, _, powernet_report, powernet_runtimes = comparison
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ours = result.report
    records = [
        ExperimentRecord(
            "table3",
            "PowerNet [13]",
            {
                "MAE_mV": powernet_report.mean_ae_mv,
                "mean_RE_%": powernet_report.mean_re_percent,
                "max_RE_%": powernet_report.max_re_percent,
                "AUC": powernet_report.auc,
                "runtime_s": float(np.sum(powernet_runtimes)),
            },
        ),
        ExperimentRecord(
            "table3",
            "Ours",
            {
                "MAE_mV": ours.mean_ae_mv,
                "mean_RE_%": ours.mean_re_percent,
                "max_RE_%": ours.max_re_percent,
                "AUC": ours.auc,
                "runtime_s": result.runtime.predictor_seconds,
            },
        ),
    ]
    save_records(records, "table3_powernet", "Table 3 — proposed framework vs PowerNet (D4 analogue)")
    # Shape of the paper's result: the one-shot full-map prediction is much
    # faster than PowerNet's per-tile scanning, and its accuracy is at least
    # competitive.  (The paper's 20x accuracy gap needs the full training
    # budget; the quick preset only supports a comparable-accuracy check.)
    assert result.runtime.predictor_seconds < float(np.sum(powernet_runtimes))
    assert ours.mean_ae < 1.5 * powernet_report.mean_ae
