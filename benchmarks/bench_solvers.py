"""Classical power-grid solver comparison (background of Sec. 2 / refs [5-9]).

The paper motivates learning-based prediction by the cost of conventional
simulation.  This benchmark compares the classical solver family on the same
static power-grid system: sparse LU (the sign-off default), Jacobi- and
AMG-preconditioned conjugate gradients, a stand-alone algebraic-multigrid
V-cycle iteration, and the random-walk estimator for single-node queries.
It regenerates the "conventional methods" context the paper argues against.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_design, save_records
from repro.io import ExperimentRecord
from repro.sim import ConjugateGradientSolver, DirectSolver, MultigridSolver, RandomWalkSolver
from repro.utils import Timer

DESIGN = "D1"


@pytest.fixture(scope="module")
def static_system():
    design = get_design(DESIGN)
    matrix = design.mna.static_conductance()
    rhs = design.mna.load_vector(design.loads.nominal_currents)
    reference = DirectSolver(matrix).solve(rhs)
    return design, matrix, rhs, reference


@pytest.mark.parametrize("method", ["direct", "cg_jacobi", "cg_amg", "multigrid"])
def test_solver_runtime(benchmark, static_system, method):
    """Time one full-grid static solve per solver."""
    _, matrix, rhs, reference = static_system
    if method == "direct":
        solver = DirectSolver(matrix)
    elif method == "cg_jacobi":
        solver = ConjugateGradientSolver(matrix, tolerance=1e-10)
    elif method == "cg_amg":
        amg = MultigridSolver(matrix)
        solver = ConjugateGradientSolver(matrix, preconditioner=amg.as_preconditioner(), tolerance=1e-10)
    else:
        solver = MultigridSolver(matrix, tolerance=1e-10)
    solution = benchmark.pedantic(solver.solve, args=(rhs,), rounds=3, iterations=1)
    np.testing.assert_allclose(solution, reference, rtol=1e-4, atol=1e-8)


def test_solver_report(benchmark, static_system):
    """Record accuracy/runtime of every solver, including the random walk."""
    design, matrix, rhs, reference = static_system
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records = []

    def record(label, solve, **extra):
        timer = Timer()
        with timer.measure():
            solution = solve()
        error = float(np.max(np.abs(solution - reference))) if solution is not None else float("nan")
        values = {"runtime_s": timer.last, "max_error_V": error}
        values.update(extra)
        records.append(ExperimentRecord("solvers", label, values))

    record("sparse LU (factor+solve)", lambda: DirectSolver(matrix).solve(rhs))
    cg = ConjugateGradientSolver(matrix, tolerance=1e-10)
    record("CG + Jacobi", lambda: cg.solve(rhs), iterations=cg.stats.iterations)
    amg = MultigridSolver(matrix, tolerance=1e-10)
    record("AMG V-cycles", lambda: amg.solve(rhs), cycles=amg.cycles_used)

    # Random walk: estimate only the worst static node (single-node query).
    worst_node = int(np.argmax(reference[: design.mna.num_die_nodes]))
    walker = RandomWalkSolver(matrix, rhs)
    timer = Timer()
    with timer.measure():
        estimate = walker.estimate_node(worst_node, num_walks=800, seed=0)
    records.append(
        ExperimentRecord(
            "solvers",
            "random walk (1 node)",
            {
                "runtime_s": timer.last,
                "max_error_V": abs(estimate.mean - reference[worst_node]),
                "standard_error_V": estimate.standard_error,
            },
        )
    )
    save_records(records, "solvers", "Classical power-grid solvers on the D1 analogue (static solve)")

    # All full-grid solvers agree with the direct solution.
    for rec in records[:3]:
        assert rec.values["max_error_V"] < 1e-6
