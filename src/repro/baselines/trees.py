"""Gradient-boosted regression trees, implemented from scratch.

The static-IR-drop predictors the paper discusses in Sec. 2 (XGBIR [10],
IncPIRD [12]) are XGBoost models over per-node/per-cell engineered features.
XGBoost is not available offline, so this module provides a compact
gradient-boosted-tree regressor with the pieces those works rely on:
squared-error boosting, depth-limited regression trees grown on quantile
candidate splits, shrinkage, and subsampling.  It backs the
:class:`~repro.baselines.tile_features.TileFeatureBaseline` used in the
feature-engineering ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils import check_positive, check_probability
from repro.utils.random import RandomState, ensure_rng


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """A depth-limited least-squares regression tree.

    Split candidates are feature quantiles (like histogram-based XGBoost), and
    splits are chosen by maximum variance reduction.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        num_candidate_splits: int = 16,
    ):
        check_positive(max_depth, "max_depth")
        check_positive(min_samples_leaf, "min_samples_leaf")
        check_positive(num_candidate_splits, "num_candidate_splits")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.num_candidate_splits = num_candidate_splits
        self._root: Optional[_TreeNode] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``features`` (n, d) and ``targets`` (n,)."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or targets.ndim != 1 or features.shape[0] != targets.shape[0]:
            raise ValueError("features must be (n, d) and targets (n,) with matching n")
        self._root = self._grow(features, targets, depth=0)
        return self

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node_value = float(targets.mean()) if targets.size else 0.0
        if (
            depth >= self.max_depth
            or targets.size < 2 * self.min_samples_leaf
            or np.allclose(targets, targets[0])
        ):
            return _TreeNode(value=node_value)

        best_gain = 0.0
        best: Optional[tuple[int, float, np.ndarray]] = None
        total_sum = targets.sum()
        total_count = targets.size
        base_score = (total_sum**2) / total_count

        for feature_index in range(features.shape[1]):
            column = features[:, feature_index]
            quantiles = np.quantile(
                column, np.linspace(0.05, 0.95, self.num_candidate_splits)
            )
            for threshold in np.unique(quantiles):
                mask = column <= threshold
                left_count = int(mask.sum())
                right_count = total_count - left_count
                if left_count < self.min_samples_leaf or right_count < self.min_samples_leaf:
                    continue
                left_sum = targets[mask].sum()
                right_sum = total_sum - left_sum
                score = (left_sum**2) / left_count + (right_sum**2) / right_count
                gain = score - base_score
                if gain > best_gain:
                    best_gain = gain
                    best = (feature_index, float(threshold), mask)

        if best is None:
            return _TreeNode(value=node_value)
        feature_index, threshold, mask = best
        left = self._grow(features[mask], targets[mask], depth + 1)
        right = self._grow(features[~mask], targets[~mask], depth + 1)
        return _TreeNode(
            value=node_value, feature=feature_index, threshold=threshold, left=left, right=right
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d)."""
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=float)
        output = np.empty(features.shape[0])
        for row_index, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[row_index] = node.value
        return output

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def _depth(node: Optional[_TreeNode]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)


class GradientBoostedTrees:
    """Least-squares gradient boosting over :class:`RegressionTree` learners.

    Parameters
    ----------
    num_trees / learning_rate / max_depth / min_samples_leaf:
        Usual boosting hyper-parameters.
    subsample:
        Row-subsampling fraction per boosting round.
    seed:
        Seed for the subsampling.
    """

    def __init__(
        self,
        num_trees: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: RandomState = 0,
    ):
        check_positive(num_trees, "num_trees")
        check_positive(learning_rate, "learning_rate")
        check_probability(subsample, "subsample")
        if subsample <= 0:
            raise ValueError("subsample must be in (0, 1]")
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = ensure_rng(seed)
        self._trees: list[RegressionTree] = []
        self._base_prediction = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the boosted ensemble."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        self._trees = []
        self._base_prediction = float(targets.mean())
        prediction = np.full(targets.shape, self._base_prediction)
        num_rows = targets.shape[0]
        for _ in range(self.num_trees):
            residual = targets - prediction
            if self.subsample < 1.0:
                chosen = self._rng.choice(
                    num_rows, size=max(1, int(self.subsample * num_rows)), replace=False
                )
            else:
                chosen = np.arange(num_rows)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(features[chosen], residual[chosen])
            update = tree.predict(features)
            prediction = prediction + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d)."""
        if not self._trees:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=float)
        prediction = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            prediction = prediction + self.learning_rate * tree.predict(features)
        return prediction

    @property
    def num_fitted_trees(self) -> int:
        """Number of boosting rounds performed."""
        return len(self._trees)
