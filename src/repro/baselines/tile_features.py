"""Per-tile feature-engineering baselines.

These baselines represent the "engineered per-node/per-cell features plus a
classical regressor" family the paper discusses in Sec. 2 (XGBIR [10],
IncPIRD [12], the ECO predictors [14, 15]).  They predict each tile's
worst-case noise independently from a hand-built feature vector:

* the tile's own current statistics (``I_max``, ``I_mean``, ``I_msd``),
* neighbourhood current sums at two radii (spatial context),
* distance statistics to the power bumps (min / mean),
* global per-vector current statistics (max / mean / std of the total
  current over time).

Two regressors are provided on top of the same features: gradient-boosted
trees (:class:`TileGBTBaseline`, the XGBoost stand-in) and ordinary ridge
regression (:class:`TileRidgeBaseline`, a sanity floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.trees import GradientBoostedTrees
from repro.features.extraction import current_summary_maps
from repro import obs
from repro.utils import check_positive
from repro.workloads.dataset import DatasetSplit, NoiseDataset


def _neighborhood_sum(tile_map: np.ndarray, radius: int) -> np.ndarray:
    """Sum of a map over a ``(2r+1)^2`` neighbourhood around every tile."""
    if radius < 1:
        return tile_map.copy()
    padded = np.pad(tile_map, radius, mode="edge")
    output = np.zeros_like(tile_map)
    size = 2 * radius + 1
    for row_offset in range(size):
        for col_offset in range(size):
            output += padded[
                row_offset:row_offset + tile_map.shape[0],
                col_offset:col_offset + tile_map.shape[1],
            ]
    return output


def tile_feature_matrix(dataset: NoiseDataset, index: int) -> np.ndarray:
    """Per-tile feature matrix of one sample, shape ``(m * n, num_features)``."""
    sample = dataset.samples[index]
    summary = current_summary_maps(sample.features.current_maps)  # (3, m, n)
    i_max, i_mean, i_msd = summary

    neighbour_small = _neighborhood_sum(i_max, radius=1)
    neighbour_large = _neighborhood_sum(i_max, radius=3)

    distance = dataset.distance  # (B, m, n)
    distance_min = distance.min(axis=0)
    distance_mean = distance.mean(axis=0)

    totals = sample.features.current_maps.sum(axis=(1, 2))
    global_stats = np.array([totals.max(), totals.mean(), totals.std()])

    num_tiles = i_max.size
    columns = [
        i_max.ravel(),
        i_mean.ravel(),
        i_msd.ravel(),
        neighbour_small.ravel(),
        neighbour_large.ravel(),
        distance_min.ravel(),
        distance_mean.ravel(),
        np.full(num_tiles, global_stats[0]),
        np.full(num_tiles, global_stats[1]),
        np.full(num_tiles, global_stats[2]),
    ]
    return np.column_stack(columns)


def _dataset_matrices(
    dataset: NoiseDataset, indices: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked feature/target matrices for the selected samples."""
    features = []
    targets = []
    for index in indices:
        features.append(tile_feature_matrix(dataset, int(index)))
        targets.append(dataset.samples[int(index)].target.ravel())
    return np.vstack(features), np.concatenate(targets)


class TileGBTBaseline:
    """Gradient-boosted-tree regressor over per-tile engineered features."""

    def __init__(
        self,
        num_trees: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        subsample: float = 0.8,
        seed: int = 0,
    ):
        self._model = GradientBoostedTrees(
            num_trees=num_trees,
            learning_rate=learning_rate,
            max_depth=max_depth,
            subsample=subsample,
            seed=seed,
        )

    def fit(self, dataset: NoiseDataset, split: DatasetSplit) -> "TileGBTBaseline":
        """Fit on the training partition."""
        features, targets = _dataset_matrices(dataset, split.train)
        self._model.fit(features, targets)
        return self

    def predict_sample(self, dataset: NoiseDataset, index: int) -> tuple[np.ndarray, float]:
        """Predict one sample's noise map; returns ``(map, runtime_seconds)``."""
        with obs.get_tracer().span("baselines.gbt.predict") as span:
            features = tile_feature_matrix(dataset, index)
            prediction = self._model.predict(features).reshape(dataset.tile_shape)
        return prediction, span.duration_s

    def predict_many(
        self, dataset: NoiseDataset, indices: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict several samples; returns stacked maps and runtimes."""
        maps, runtimes = [], []
        for index in indices:
            prediction, runtime = self.predict_sample(dataset, int(index))
            maps.append(prediction)
            runtimes.append(runtime)
        return np.stack(maps), np.array(runtimes)


class TileRidgeBaseline:
    """Ridge regression over the same per-tile features (a simple floor)."""

    def __init__(self, regularization: float = 1e-3):
        check_positive(regularization, "regularization")
        self.regularization = regularization
        self._weights: Optional[np.ndarray] = None
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    def fit(self, dataset: NoiseDataset, split: DatasetSplit) -> "TileRidgeBaseline":
        """Fit on the training partition."""
        features, targets = _dataset_matrices(dataset, split.train)
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-12
        normalized = (features - self._feature_mean) / self._feature_std
        design = np.column_stack([normalized, np.ones(normalized.shape[0])])
        gram = design.T @ design + self.regularization * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    def predict_sample(self, dataset: NoiseDataset, index: int) -> tuple[np.ndarray, float]:
        """Predict one sample's noise map; returns ``(map, runtime_seconds)``."""
        if self._weights is None:
            raise RuntimeError("predict_sample() called before fit()")
        with obs.get_tracer().span("baselines.ridge.predict") as span:
            features = tile_feature_matrix(dataset, index)
            normalized = (features - self._feature_mean) / self._feature_std
            design = np.column_stack([normalized, np.ones(normalized.shape[0])])
            prediction = (design @ self._weights).reshape(dataset.tile_shape)
        return prediction, span.duration_s

    def predict_many(
        self, dataset: NoiseDataset, indices: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict several samples; returns stacked maps and runtimes."""
        maps, runtimes = [], []
        for index in indices:
            prediction, runtime = self.predict_sample(dataset, int(index))
            maps.append(prediction)
            runtimes.append(runtime)
        return np.stack(maps), np.array(runtimes)
