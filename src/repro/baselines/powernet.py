"""PowerNet baseline [Xie et al., ASP-DAC 2020] — reimplementation.

PowerNet is the state-of-the-art CNN baseline the paper compares against
(Table 3).  Its structure differs from the proposed framework in two ways
that drive the comparison:

* **per-tile prediction** — a small CNN looks at a local window of feature
  maps centred on the target tile and predicts that tile's noise; producing
  the full map therefore requires one CNN evaluation *per tile* (the paper's
  efficiency argument), and
* **maximum-CNN over time-decomposed power maps** — the trace is split into
  ``N`` time windows, the CNN scores each window's power map, and the final
  prediction is the maximum over windows.

The original uses cell-level internal/leakage power, arrival times and
toggling rates; those instance-level features require extra power-analysis
runs, which is exactly the training overhead the paper criticises.  Here the
same role is played by the per-tile current maps (the information actually
available in our flow), keeping the architecture and the per-tile maximum-CNN
structure faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.features.extraction import FeatureNormalizer
from repro.nn import Adam, Conv2d, Linear, Module, ReLU, Sequential, Tensor, l1_loss, no_grad
from repro import obs
from repro.utils import check_positive, get_logger
from repro.utils.random import RandomState, ensure_rng
from repro.workloads.dataset import DatasetSplit, NoiseDataset

_LOG = get_logger("baselines.powernet")


@dataclass(frozen=True)
class PowerNetConfig:
    """Hyper-parameters of the PowerNet baseline.

    Attributes
    ----------
    window_size:
        Side length of the square tile window fed to the CNN (the paper's
        comparison uses 15).
    num_time_maps:
        Number of time-decomposed power maps (the paper's comparison uses 40).
    channels:
        Convolution channels of the two conv layers.
    hidden_units:
        Width of the fully-connected layer.
    learning_rate / epochs / batch_size:
        Training parameters.
    tiles_per_vector:
        Number of randomly sampled tiles per training vector per epoch
        (training on every tile of every vector would be prohibitively slow,
        which is itself part of the method's overhead story).
    seed:
        Initialisation / sampling seed.
    """

    window_size: int = 15
    num_time_maps: int = 16
    channels: tuple[int, int] = (8, 16)
    hidden_units: int = 32
    learning_rate: float = 1e-3
    epochs: int = 20
    batch_size: int = 64
    tiles_per_vector: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_size % 2 == 0:
            raise ValueError(f"window_size must be odd, got {self.window_size}")
        check_positive(self.num_time_maps, "num_time_maps")
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.epochs, "epochs")
        check_positive(self.batch_size, "batch_size")
        check_positive(self.tiles_per_vector, "tiles_per_vector")


class PowerNetModel(Module):
    """The per-tile CNN: window of power values -> scalar noise score."""

    def __init__(self, config: PowerNetConfig):
        super().__init__()
        rng = ensure_rng(config.seed)
        c1, c2 = config.channels
        self.features = Sequential(
            Conv2d(1, c1, kernel_size=3, stride=1, padding=1, padding_mode="zeros", seed=rng),
            ReLU(),
            Conv2d(c1, c2, kernel_size=3, stride=2, padding=1, padding_mode="zeros", seed=rng),
            ReLU(),
            Conv2d(c2, c2, kernel_size=3, stride=2, padding=1, padding_mode="zeros", seed=rng),
            ReLU(),
        )
        reduced = (config.window_size + 3) // 4  # two stride-2 layers
        self.flatten_size = c2 * reduced * reduced
        self.head = Sequential(
            Linear(self.flatten_size, config.hidden_units, seed=rng),
            ReLU(),
            Linear(config.hidden_units, 1, seed=rng),
        )

    def forward(self, windows: Tensor) -> Tensor:
        """Score a batch of windows, shape ``(N, 1, w, w)`` -> ``(N,)``."""
        features = self.features(windows)
        flat = features.reshape(features.shape[0], self.flatten_size)
        return self.head(flat).reshape(features.shape[0])


def _time_decompose(current_maps: np.ndarray, num_time_maps: int) -> np.ndarray:
    """Average the per-stamp maps into ``num_time_maps`` time windows.

    This is PowerNet's "time-decomposed power maps" preprocessing: the trace
    is cut into equal windows and each window's average power map is used as
    one input frame.
    """
    num_steps = current_maps.shape[0]
    num_windows = min(num_time_maps, num_steps)
    boundaries = np.linspace(0, num_steps, num_windows + 1, dtype=int)
    frames = [
        current_maps[start:end].mean(axis=0)
        for start, end in zip(boundaries[:-1], boundaries[1:])
        if end > start
    ]
    return np.stack(frames)


def _extract_window(padded_map: np.ndarray, row: int, col: int, window: int) -> np.ndarray:
    """Cut the ``window x window`` patch centred on (row, col) from a padded map."""
    return padded_map[row:row + window, col:col + window]


class PowerNetBaseline:
    """End-to-end PowerNet-style baseline operating on a :class:`NoiseDataset`."""

    def __init__(self, config: PowerNetConfig = PowerNetConfig()):
        self.config = config
        self.model = PowerNetModel(config)
        self.normalizer: Optional[FeatureNormalizer] = None

    # ------------------------------------------------------------------ #
    # feature helpers
    # ------------------------------------------------------------------ #

    def _frames(self, dataset: NoiseDataset, index: int) -> np.ndarray:
        """Normalised time-decomposed frames of one sample, padded for windows."""
        sample = dataset.samples[index]
        frames = _time_decompose(sample.features.current_maps, self.config.num_time_maps)
        frames = self.normalizer.normalize_currents(frames)
        half = self.config.window_size // 2
        return np.pad(frames, ((0, 0), (half, half), (half, half)))

    def _windows_for_tiles(
        self, padded_frames: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Windows for the requested tiles, shape ``(tiles * frames, 1, w, w)``."""
        window = self.config.window_size
        patches = [
            _extract_window(frame, row, col, window)
            for row, col in zip(rows, cols)
            for frame in padded_frames
        ]
        return np.stack(patches)[:, np.newaxis, :, :]

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        dataset: NoiseDataset,
        split: DatasetSplit,
        seed: RandomState = None,
    ) -> list[float]:
        """Train on the dataset's training partition; returns per-epoch losses."""
        config = self.config
        rng = ensure_rng(seed if seed is not None else config.seed)
        train_current = np.concatenate(
            [dataset.samples[i].features.current_maps for i in split.train], axis=0
        )
        train_noise = np.stack([dataset.samples[i].target for i in split.train])
        positive = train_current[train_current > 0]
        self.normalizer = FeatureNormalizer(
            current_scale=float(np.percentile(positive, 99.0)) if positive.size else 1.0,
            distance_scale=1.0,
            noise_scale=float(np.percentile(train_noise, 99.0)) or 1.0,
        )

        optimizer = Adam(self.model.parameters(), learning_rate=config.learning_rate)
        rows_grid, cols_grid = np.meshgrid(
            np.arange(dataset.tile_shape[0]), np.arange(dataset.tile_shape[1]), indexing="ij"
        )
        all_rows = rows_grid.ravel()
        all_cols = cols_grid.ravel()
        losses: list[float] = []

        for epoch in range(config.epochs):
            epoch_loss = 0.0
            batches = 0
            for sample_index in split.train:
                padded_frames = self._frames(dataset, int(sample_index))
                num_frames = padded_frames.shape[0]
                target_map = self.normalizer.normalize_noise(
                    dataset.samples[int(sample_index)].target
                )
                chosen = rng.choice(
                    all_rows.shape[0],
                    size=min(config.tiles_per_vector, all_rows.shape[0]),
                    replace=False,
                )
                rows = all_rows[chosen]
                cols = all_cols[chosen]
                windows = self._windows_for_tiles(padded_frames, rows, cols)
                targets = target_map[rows, cols]

                optimizer.zero_grad()
                scores = self.model(Tensor(windows))  # (tiles * frames,)
                per_tile = scores.reshape(rows.shape[0], num_frames)
                prediction = per_tile.max(axis=1)
                loss = l1_loss(prediction, targets)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            _LOG.info("PowerNet epoch %d: loss %.5f", epoch, losses[-1])
        return losses

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #

    def predict_sample(self, dataset: NoiseDataset, index: int) -> tuple[np.ndarray, float]:
        """Predict the full noise map of one sample (tile by tile).

        Returns ``(noise_map_volts, runtime_seconds)``.  The tile-by-tile
        loop is intentional: it is how PowerNet produces a full map and the
        source of its runtime disadvantage in Table 3.
        """
        if self.normalizer is None:
            raise RuntimeError("PowerNetBaseline.predict_sample called before fit()")
        config = self.config
        with obs.get_tracer().span("baselines.powernet.predict") as span:
            padded_frames = self._frames(dataset, index)
            num_frames = padded_frames.shape[0]
            rows_count, cols_count = dataset.tile_shape
            noise_map = np.empty(dataset.tile_shape)
            with no_grad():
                for row in range(rows_count):
                    rows = np.full(cols_count, row)
                    cols = np.arange(cols_count)
                    windows = self._windows_for_tiles(padded_frames, rows, cols)
                    scores = self.model(Tensor(windows))
                    per_tile = scores.numpy().reshape(cols_count, num_frames)
                    noise_map[row] = per_tile.max(axis=1)
            noise_map = self.normalizer.denormalize_noise(noise_map)
        return noise_map, span.duration_s

    def predict_many(
        self, dataset: NoiseDataset, indices: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict several samples; returns stacked maps and runtimes."""
        maps = []
        runtimes = []
        for index in indices:
            noise_map, runtime = self.predict_sample(dataset, int(index))
            maps.append(noise_map)
            runtimes.append(runtime)
        return np.stack(maps), np.array(runtimes)
