"""Baseline predictors the paper compares against (or argues against).

* :mod:`repro.baselines.powernet` — the PowerNet CNN baseline of Table 3.
* :mod:`repro.baselines.trees` / :mod:`repro.baselines.tile_features` — the
  per-tile feature-engineering + XGBoost-style family discussed in Sec. 2.
"""

from repro.baselines.powernet import PowerNetBaseline, PowerNetConfig, PowerNetModel
from repro.baselines.trees import GradientBoostedTrees, RegressionTree
from repro.baselines.tile_features import (
    TileGBTBaseline,
    TileRidgeBaseline,
    tile_feature_matrix,
)

__all__ = [
    "PowerNetBaseline",
    "PowerNetConfig",
    "PowerNetModel",
    "GradientBoostedTrees",
    "RegressionTree",
    "TileGBTBaseline",
    "TileRidgeBaseline",
    "tile_feature_matrix",
]
