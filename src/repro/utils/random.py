"""Random-number handling.

Every stochastic component in the library accepts either an integer seed,
``None`` (meaning "non-deterministic"), or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three into
a ``Generator`` so that experiment scripts can thread a single seed through
design generation, workload synthesis and model initialisation and obtain
fully reproducible results.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Type accepted everywhere a source of randomness is needed.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS-entropy seeding, an ``int`` for a deterministic
        generator, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used when a pipeline stage fans out into parallel sub-tasks (e.g. one
    generator per test vector) and each sub-task must be reproducible in
    isolation.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
