"""Shared conventions of resumable on-disk artefacts.

Every resumable artefact in the repository — corpus manifests, evaluation
reports, sweep manifests, golden baselines, observability run reports —
follows the same two conventions: files are written atomically (temp file +
``os.replace``) so a reader can never observe a torn artefact, and each
artefact stamps the git revision of the generating code for provenance.
Both helpers lived in :mod:`repro.datagen.shards` historically (which still
re-exports them); they are housed here so layers below the datagen stack,
notably :mod:`repro.obs`, can share them without import cycles.
"""

from __future__ import annotations

import os
import subprocess
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text", "git_revision"]


def atomic_write_text(path: Path, text: str) -> None:
    """Write a text file atomically (temp file in-directory + replace).

    The write convention every resumable artefact in the repository follows
    (corpus manifests, evaluation reports, sweep manifests, baselines,
    observability run reports): a reader can never observe a torn file, and
    a killed writer leaves only a stray ``*.tmp-<pid>`` behind.
    """
    temporary = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    temporary.write_text(text)
    os.replace(temporary, path)


def git_revision(repo_root: Union[str, Path, None] = None) -> str:
    """Best-effort git revision of the generating code.

    Parameters
    ----------
    repo_root:
        Directory to resolve the revision in; defaults to this file's
        repository checkout.

    Returns
    -------
    The full commit hash, or ``"unknown"`` when git (or the checkout) is
    unavailable — artefact generation never fails for provenance reasons.
    """
    if repo_root is None:
        repo_root = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "-C", str(repo_root), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"
