"""Shared conventions of resumable on-disk artefacts.

Every resumable artefact in the repository — corpus manifests, evaluation
reports, sweep manifests, golden baselines, observability run reports —
follows the same two conventions: files are written atomically (temp file +
``os.replace``) so a reader can never observe a torn artefact, and each
artefact stamps the git revision of the generating code for provenance.
Both helpers lived in :mod:`repro.datagen.shards` historically (which still
re-exports them).  The atomic-write implementation itself now lives in
:mod:`repro.io.atomic` (fsync + ``os.replace``); this module re-exports it
for the layers that import it from here, and keeps :func:`git_revision`.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Union

from repro.io.atomic import atomic_write_text

__all__ = ["atomic_write_text", "git_revision"]


def git_revision(repo_root: Union[str, Path, None] = None) -> str:
    """Best-effort git revision of the generating code.

    Parameters
    ----------
    repo_root:
        Directory to resolve the revision in; defaults to this file's
        repository checkout.

    Returns
    -------
    The full commit hash, or ``"unknown"`` when git (or the checkout) is
    unavailable — artefact generation never fails for provenance reasons.
    """
    if repo_root is None:
        repo_root = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "-C", str(repo_root), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"
