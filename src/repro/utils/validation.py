"""Small argument-validation helpers used across the library.

These helpers raise ``ValueError``/``TypeError`` with consistent messages so
that user-facing entry points fail loudly on malformed input instead of
propagating NaNs into a simulation or a training run.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


def check_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values (NaN or inf)")
    return arr


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0 (zero allowed)."""
    return check_positive(value, name, strict=False)


def check_probability(value: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = "[{}, {}]" if inclusive else "({}, {})"
        raise ValueError(
            f"{name} must be within {bounds.format(low, high)}, got {value}"
        )
    return value


def check_shape(
    array: np.ndarray,
    expected: Sequence[Optional[int]],
    name: str = "array",
) -> np.ndarray:
    """Raise ``ValueError`` unless ``array.shape`` matches ``expected``.

    ``None`` entries in ``expected`` act as wildcards for that dimension.
    """
    arr = np.asarray(array)
    if arr.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got shape {arr.shape}"
        )
    for axis, (actual, want) in enumerate(zip(arr.shape, expected)):
        if want is not None and actual != want:
            raise ValueError(
                f"{name} has shape {arr.shape}, expected "
                f"{tuple(expected)} (mismatch at axis {axis})"
            )
    return arr


def check_same_length(name_to_seq: dict[str, Iterable]) -> int:
    """Raise ``ValueError`` unless all sequences share one length; return it."""
    lengths = {name: len(list(seq)) for name, seq in name_to_seq.items()}
    unique = set(lengths.values())
    if len(unique) > 1:
        raise ValueError(f"length mismatch: {lengths}")
    return unique.pop() if unique else 0
