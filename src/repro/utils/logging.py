"""Logging configuration shared by the library and the benchmark harness."""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_CONFIGURED = False


def _configure_root() -> None:
    """Attach a single stream handler to the package root logger once."""
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    root.setLevel(getattr(logging, level_name, logging.WARNING))
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The level is controlled by the ``REPRO_LOG_LEVEL`` environment variable
    (default ``WARNING``), so library users see nothing unless they opt in.
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
