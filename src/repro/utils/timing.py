"""Lightweight timing utilities for runtime comparisons.

The paper reports wall-clock runtime for the proposed framework versus the
commercial simulator (Table 2) and versus PowerNet (Table 3).  The benchmark
harness uses :class:`Timer` to collect those measurements consistently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure():
    ...     _ = sum(range(1000))
    >>> timer.total >= 0.0
    True
    """

    total: float = 0.0
    count: int = 0
    _last: float = field(default=0.0, repr=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._last = elapsed
            self.total += elapsed
            self.count += 1

    @property
    def last(self) -> float:
        """Duration of the most recent measurement in seconds."""
        return self._last

    @property
    def mean(self) -> float:
        """Mean duration per measurement (0.0 if nothing measured)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.total = 0.0
        self.count = 0
        self._last = 0.0


def timed(func: Callable[..., T]) -> Callable[..., tuple[T, float]]:
    """Wrap ``func`` so it returns ``(result, elapsed_seconds)``."""

    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    wrapper.__name__ = getattr(func, "__name__", "timed")
    wrapper.__doc__ = func.__doc__
    return wrapper
