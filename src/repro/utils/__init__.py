"""Shared utilities: RNG handling, validation helpers, logging, timing, artefacts."""

from repro.utils.artifacts import atomic_write_text, git_revision
from repro.utils.random import RandomState, ensure_rng
from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
    check_in_range,
)
from repro.utils.timing import Timer, timed
from repro.utils.logging import get_logger

__all__ = [
    "atomic_write_text",
    "git_revision",
    "RandomState",
    "ensure_rng",
    "check_finite",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_in_range",
    "Timer",
    "timed",
    "get_logger",
]
