"""Quarantine records: poisoned work units become data, not crashes.

A non-converging transient solve or an injected NaN used to take a whole
datagen run down; an eval row whose solve fails used to kill the sweep.
The resilience layer instead *quarantines* the poisoned unit: the bad
vector (or row) is dropped from the artefact, and a
:class:`QuarantineRecord` naming it — with the reason — is stored alongside
the clean results (in the corpus manifest's ``quarantined`` list, or the
sweep/report health sections).  Quarantine is loud by construction: the
records survive in the artefact, the ``faults.quarantined`` counter ticks,
and the loaders expose them, so silently shrinking datasets cannot pass for
healthy ones.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = ["QuarantineRecord", "poisoned_sample_indices"]


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined unit of work.

    Attributes
    ----------
    kind:
        What was quarantined: ``"vector"`` (a datagen sample) or ``"row"``
        (an eval row).
    key:
        Stable identifier — a vector name like ``small-v0003`` or a sweep
        job key.
    reason:
        Machine-readable cause: ``"nonfinite_label"``,
        ``"nonfinite_currents"``, ``"exhausted_retries"``.
    detail:
        Free-form context (e.g. the repr of the final error).
    """

    kind: str
    key: str
    reason: str
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**payload)


def poisoned_sample_indices(dataset) -> list[tuple[int, str]]:
    """Positions of poisoned samples in a dataset, with reasons.

    A sample is poisoned when its ground-truth noise map or its current maps
    contain non-finite values — what a non-converging (or blown-up) solver
    run and injected NaNs both look like by the time labels exist.

    Parameters
    ----------
    dataset:
        A :class:`~repro.workloads.dataset.NoiseDataset` (duck-typed: only
        ``samples`` with ``target`` / ``features.current_maps`` are read).

    Returns
    -------
    ``[(position, reason), ...]`` in sample order; empty when clean.
    """
    poisoned = []
    for position, sample in enumerate(dataset.samples):
        if not np.all(np.isfinite(sample.target)):
            poisoned.append((position, "nonfinite_label"))
        elif not np.all(np.isfinite(sample.features.current_maps)):
            poisoned.append((position, "nonfinite_currents"))
    return poisoned
