"""Typed failures of the resilient pipeline.

Every way the offline pipeline gives up is a distinct exception type
carrying the evidence an operator (or a test) needs: which shard is
corrupt and what the hashes were, which shards exhausted their retries,
at which epoch training diverged.  Raw numpy/zipfile/OS errors never
escape the resilience layer — they are wrapped into these types at the
boundary where the failed artefact is known.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

__all__ = [
    "ResilienceError",
    "CorruptShardError",
    "ShardFailedError",
    "DivergenceError",
    "CheckpointError",
]


class ResilienceError(RuntimeError):
    """Base class of every typed resilience failure."""


class CorruptShardError(ResilienceError, ValueError):
    """A shard file on disk does not match its manifest record.

    Raised when a shard is unreadable (truncated/bit-flipped ``.npz``) or
    when its recomputed content hash differs from the hash the manifest
    recorded at write time.  Subclasses :class:`ValueError` so callers that
    historically caught the loader's plain ``ValueError`` keep working.

    Attributes
    ----------
    path:
        The shard file.
    expected_hash / actual_hash:
        The manifest's content hash vs. the recomputed one.  ``actual_hash``
        is ``None`` when the shard could not even be read.
    reason:
        Human-readable cause (e.g. the underlying loader error).
    """

    def __init__(
        self,
        path: Union[str, Path],
        expected_hash: Optional[str] = None,
        actual_hash: Optional[str] = None,
        reason: str = "",
    ):
        self.path = Path(path)
        self.expected_hash = expected_hash
        self.actual_hash = actual_hash
        self.reason = reason
        expected = (expected_hash or "?")[:12]
        if actual_hash is None:
            detail = f"unreadable (expected content hash {expected}…)"
        else:
            detail = f"expected content hash {expected}…, file hashes to {actual_hash[:12]}…"
        message = f"corrupt shard {self.path}: {detail}"
        if reason:
            message = f"{message} [{reason}]"
        super().__init__(message)


class ShardFailedError(ResilienceError):
    """One or more shards exhausted their retry budget.

    Raised at the *end* of a generation run — every other shard has been
    generated and recorded first, so the completed work survives and a
    resumed run retries only the failed shards.

    Attributes
    ----------
    failures:
        One dict per failed shard: ``label``, ``index``, ``error`` (repr of
        the last attempt's exception) and ``attempts``.
    """

    def __init__(self, failures: Sequence[dict]):
        self.failures = list(failures)
        names = ", ".join(f"{f['label']}:{f['index']}" for f in self.failures)
        super().__init__(
            f"{len(self.failures)} shard(s) failed after exhausting retries: {names}"
        )


class DivergenceError(ResilienceError):
    """Training diverged (non-finite loss) beyond the rollback budget.

    Attributes
    ----------
    epoch:
        The epoch at which the divergence was detected.
    detail:
        What was non-finite (train loss, validation loss).
    """

    def __init__(self, epoch: int, detail: str):
        self.epoch = epoch
        self.detail = detail
        super().__init__(f"training diverged at epoch {epoch}: {detail}")


class CheckpointError(ResilienceError):
    """A training checkpoint could not be saved or restored."""
