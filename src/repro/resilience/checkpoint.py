"""Preemption-safe training: atomic checkpoints, bit-identical resume, rollback.

A training run protected by a :class:`CheckpointPolicy` periodically writes an
atomic checkpoint capturing *everything* the next epoch depends on — model
weights, the best-so-far weights, optimiser state (Adam moments + step count),
the shuffle RNG's bit-generator state, the loss history and the early-stopping
counters.  Because the capture is complete, a run killed at any epoch boundary
and resumed from its last checkpoint produces the **bit-identical** loss curve
of an uninterrupted run — the contract ``tests/resilience/`` asserts.

The same machinery powers the divergence guard: when an epoch's loss goes
non-finite (solver blow-up, poisoned labels, numeric overflow), the
:class:`TrainingGuard` rolls the trainer back to the last good checkpoint and
re-runs, up to ``max_rollbacks`` times, before failing with a typed
:class:`~repro.resilience.errors.DivergenceError`.

Checkpoints are ``.npz`` files written through
:func:`repro.io.atomic.atomic_replace`, so a kill mid-save leaves the previous
checkpoint intact; :meth:`CheckpointManager.latest` skips unreadable files
(counting ``faults.corrupt_checkpoints``) and falls back to the newest one
that loads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.io.atomic import atomic_replace
from repro.resilience.errors import CheckpointError, DivergenceError
from repro.utils import get_logger

__all__ = [
    "CheckpointPolicy",
    "TrainingCheckpoint",
    "CheckpointManager",
    "TrainingGuard",
    "divergence_detail",
]

_LOG = get_logger("resilience.checkpoint")

#: On-disk checkpoint format version.
CHECKPOINT_VERSION = 1

#: Reserved npz key holding the JSON metadata blob.
_META_KEY = "__meta__"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where a training run checkpoints.

    Attributes
    ----------
    directory:
        Where checkpoint files live (created on first save).
    every_epochs:
        Checkpoint cadence — a snapshot is written after every
        ``every_epochs``-th completed epoch.
    keep:
        How many most-recent checkpoints to retain (older ones are pruned
        after each save; at least one survives for rollback).
    max_rollbacks:
        Divergence budget — how many times a run may roll back to its last
        checkpoint before failing with
        :class:`~repro.resilience.errors.DivergenceError`.
    """

    directory: Union[str, Path]
    every_epochs: int = 1
    keep: int = 2
    max_rollbacks: int = 1

    def __post_init__(self):
        if self.every_epochs < 1:
            raise ValueError(f"every_epochs must be >= 1, got {self.every_epochs}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")
        if self.max_rollbacks < 0:
            raise ValueError(f"max_rollbacks must be >= 0, got {self.max_rollbacks}")


@dataclass
class TrainingCheckpoint:
    """Complete training state after one epoch (everything resume needs).

    Attributes
    ----------
    epoch:
        The last *completed* epoch (0-based); resume starts at ``epoch + 1``.
    model_state / best_state:
        Current weights and the early-stopping best-so-far snapshot.
    optimizer_state:
        The optimiser's :meth:`~repro.nn.optim.Optimizer.state_dict`.
    rng_state:
        The shuffle generator's ``bit_generator.state`` mapping.
    train_loss / validation_loss:
        The loss curves up to and including ``epoch``.
    best_epoch / best_validation_loss / epochs_without_improvement:
        Early-stopping bookkeeping as of ``epoch``.
    """

    epoch: int
    model_state: dict
    best_state: dict
    optimizer_state: dict
    rng_state: dict
    train_loss: list = field(default_factory=list)
    validation_loss: list = field(default_factory=list)
    best_epoch: int = 0
    best_validation_loss: float = float("inf")
    epochs_without_improvement: int = 0


class CheckpointManager:
    """Saves, lists, loads and prunes atomic ``.npz`` training checkpoints.

    Files are named ``ckpt-<epoch:06d>.npz``; each holds the model / best /
    optimiser arrays plus one JSON metadata entry.  Saves go through
    :func:`~repro.io.atomic.atomic_replace`, so readers never observe a
    half-written checkpoint.
    """

    def __init__(self, policy: CheckpointPolicy):
        self.policy = policy
        self.directory = Path(policy.directory)

    # -- paths ----------------------------------------------------------- #

    def path_for(self, epoch: int) -> Path:
        """The checkpoint path for one completed epoch."""
        return self.directory / f"ckpt-{epoch:06d}.npz"

    def available(self) -> list[tuple[int, Path]]:
        """``(epoch, path)`` of every checkpoint on disk, oldest first."""
        found = []
        for path in sorted(self.directory.glob("ckpt-*.npz")):
            try:
                epoch = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            found.append((epoch, path))
        return found

    # -- save / load ------------------------------------------------------ #

    def save(self, checkpoint: TrainingCheckpoint) -> Path:
        """Atomically persist one checkpoint; prune old ones; return its path."""
        arrays: dict[str, np.ndarray] = {}
        for name, value in checkpoint.model_state.items():
            arrays[f"model/{name}"] = np.asarray(value)
        for name, value in checkpoint.best_state.items():
            arrays[f"best/{name}"] = np.asarray(value)
        optim_meta: dict[str, object] = {}
        for name, value in checkpoint.optimizer_state.items():
            if isinstance(value, np.ndarray):
                arrays[f"optim/{name}"] = value
            else:
                optim_meta[name] = value
        meta = {
            "version": CHECKPOINT_VERSION,
            "epoch": checkpoint.epoch,
            "train_loss": list(checkpoint.train_loss),
            "validation_loss": list(checkpoint.validation_loss),
            "best_epoch": checkpoint.best_epoch,
            "best_validation_loss": checkpoint.best_validation_loss,
            "epochs_without_improvement": checkpoint.epochs_without_improvement,
            "rng_state": checkpoint.rng_state,
            "optim_meta": optim_meta,
        }
        arrays[_META_KEY] = np.array(json.dumps(meta))

        path = self.path_for(checkpoint.epoch)
        with atomic_replace(path, suffix=".npz") as temporary:
            with open(temporary, "wb") as handle:
                np.savez(handle, **arrays)
        obs.metrics().counter("faults.checkpoints").inc()
        self._prune()
        return path

    def load(self, path: Union[str, Path]) -> TrainingCheckpoint:
        """Load one checkpoint file; raise :class:`CheckpointError` if unreadable."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data[_META_KEY][()]))
                if meta.get("version") != CHECKPOINT_VERSION:
                    raise CheckpointError(
                        f"{path}: unsupported checkpoint version {meta.get('version')!r}"
                    )
                model_state, best_state, optimizer_state = {}, {}, dict(
                    meta.get("optim_meta", {})
                )
                for key in data.files:
                    if key.startswith("model/"):
                        model_state[key[len("model/"):]] = data[key]
                    elif key.startswith("best/"):
                        best_state[key[len("best/"):]] = data[key]
                    elif key.startswith("optim/"):
                        optimizer_state[key[len("optim/"):]] = data[key]
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(f"{path}: unreadable checkpoint ({error!r})") from error
        return TrainingCheckpoint(
            epoch=int(meta["epoch"]),
            model_state=model_state,
            best_state=best_state,
            optimizer_state=optimizer_state,
            rng_state=meta["rng_state"],
            train_loss=list(meta["train_loss"]),
            validation_loss=list(meta["validation_loss"]),
            best_epoch=int(meta["best_epoch"]),
            best_validation_loss=float(meta["best_validation_loss"]),
            epochs_without_improvement=int(meta["epochs_without_improvement"]),
        )

    def latest(self) -> Optional[TrainingCheckpoint]:
        """The newest checkpoint that loads, or ``None``.

        Unreadable files (killed mid-write before the rename existed, or
        bit-rotted on disk) are skipped with a ``faults.corrupt_checkpoints``
        tick, falling back to the next-newest.
        """
        for _, path in reversed(self.available()):
            try:
                return self.load(path)
            except CheckpointError as error:
                obs.metrics().counter("faults.corrupt_checkpoints").inc()
                _LOG.warning("skipping corrupt checkpoint: %s", error)
        return None

    def _prune(self) -> None:
        """Drop all but the ``policy.keep`` newest checkpoints."""
        stale = self.available()[: -self.policy.keep]
        for _, path in stale:
            path.unlink(missing_ok=True)


class TrainingGuard:
    """Wires a training loop to checkpoints, resume, and divergence rollback.

    The trainer constructs one guard per run (when a
    :class:`CheckpointPolicy` is supplied), hands it the live model /
    optimiser / RNG, and calls three hooks:

    * :meth:`restore` once before the epoch loop — applies the latest
      checkpoint (if any) and returns the epoch to resume from;
    * :meth:`after_epoch` after each healthy epoch — snapshots state at the
      policy cadence;
    * :meth:`handle_divergence` when an epoch's loss goes non-finite — rolls
      back to the last checkpoint (within ``max_rollbacks``) or raises
      :class:`~repro.resilience.errors.DivergenceError`.

    All three keep the loss history and early-stopping counters consistent
    with the restored epoch, which is what makes a resumed loss curve
    bit-identical to an uninterrupted one.
    """

    def __init__(self, policy: CheckpointPolicy, model, optimizer, rng):
        self.policy = policy
        self.manager = CheckpointManager(policy)
        self._model = model
        self._optimizer = optimizer
        self._rng = rng
        self._rollbacks_used = 0

    # -- hooks ------------------------------------------------------------ #

    def restore(
        self, history, best_state: dict, epochs_without_improvement: int
    ) -> tuple[int, dict, int]:
        """Apply the latest checkpoint, if any.

        Returns ``(start_epoch, best_state, epochs_without_improvement)`` —
        unchanged inputs with ``start_epoch=0`` when there is nothing to
        resume from.
        """
        checkpoint = self.manager.latest()
        if checkpoint is None:
            return 0, best_state, epochs_without_improvement
        best = self._apply(checkpoint, history)
        obs.metrics().counter("faults.resumes").inc()
        _LOG.info(
            "resumed training from checkpoint at epoch %d", checkpoint.epoch
        )
        return checkpoint.epoch + 1, best, checkpoint.epochs_without_improvement

    def after_epoch(
        self,
        epoch: int,
        history,
        best_state: dict,
        epochs_without_improvement: int,
    ) -> None:
        """Checkpoint after a healthy epoch when the cadence comes up."""
        if (epoch + 1) % self.policy.every_epochs != 0:
            return
        self.manager.save(
            TrainingCheckpoint(
                epoch=epoch,
                model_state=self._model.state_dict(),
                best_state={k: np.asarray(v).copy() for k, v in best_state.items()},
                optimizer_state=self._optimizer.state_dict(),
                rng_state=self._rng.bit_generator.state,
                train_loss=list(history.train_loss),
                validation_loss=list(history.validation_loss),
                best_epoch=history.best_epoch,
                best_validation_loss=history.best_validation_loss,
                epochs_without_improvement=epochs_without_improvement,
            )
        )

    def handle_divergence(
        self, epoch: int, detail: str, history
    ) -> tuple[int, dict, int]:
        """Roll back to the last checkpoint after a non-finite epoch.

        Returns the ``(next_epoch, best_state, epochs_without_improvement)``
        to continue from.  Raises
        :class:`~repro.resilience.errors.DivergenceError` when the rollback
        budget is spent or no checkpoint survives to roll back to.
        """
        self._rollbacks_used += 1
        if self._rollbacks_used > self.policy.max_rollbacks:
            raise DivergenceError(
                epoch, f"{detail} (rollback budget of {self.policy.max_rollbacks} spent)"
            )
        checkpoint = self.manager.latest()
        if checkpoint is None:
            raise DivergenceError(epoch, f"{detail} (no checkpoint to roll back to)")
        best = self._apply(checkpoint, history)
        obs.metrics().counter("faults.rollbacks").inc()
        _LOG.warning(
            "training diverged at epoch %d (%s); rolled back to epoch %d",
            epoch,
            detail,
            checkpoint.epoch,
        )
        return checkpoint.epoch + 1, best, checkpoint.epochs_without_improvement

    # -- plumbing ---------------------------------------------------------- #

    def _apply(self, checkpoint: TrainingCheckpoint, history) -> dict:
        """Load a checkpoint into the live model/optimiser/RNG/history."""
        self._model.load_state_dict(checkpoint.model_state)
        self._optimizer.load_state_dict(checkpoint.optimizer_state)
        self._rng.bit_generator.state = checkpoint.rng_state
        history.train_loss[:] = checkpoint.train_loss
        history.validation_loss[:] = checkpoint.validation_loss
        history.best_epoch = checkpoint.best_epoch
        history.best_validation_loss = checkpoint.best_validation_loss
        return {k: np.asarray(v).copy() for k, v in checkpoint.best_state.items()}


def divergence_detail(
    epoch_loss: float, validation_loss: float, has_validation: bool
) -> Optional[str]:
    """What (if anything) went non-finite this epoch.

    Returns ``None`` for a healthy epoch; a NaN validation loss only counts
    when a validation partition exists (empty partitions report NaN by
    convention).
    """
    problems = []
    if not np.isfinite(epoch_loss):
        problems.append(f"train loss {epoch_loss}")
    if has_validation and not np.isfinite(validation_loss):
        problems.append(f"validation loss {validation_loss}")
    if not problems:
        return None
    return " and ".join(problems) + " non-finite"
