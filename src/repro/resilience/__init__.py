"""Crash-safety layer: retries, quarantine, checkpoints, typed failures.

``repro.resilience`` is what lets the offline pipeline treat worker death,
solver blow-ups and bit-rot as *expected inputs* instead of run-enders:

* :mod:`~repro.resilience.errors` — every way the pipeline gives up is a
  typed exception carrying evidence (:class:`CorruptShardError` names the
  shard and both hashes, :class:`ShardFailedError` lists the exhausted
  shards, :class:`DivergenceError` names the epoch).
* :mod:`~repro.resilience.retry` — the shared
  :class:`RetryPolicy` / :func:`run_with_retry` vocabulary with injectable
  sleep, used by datagen shard attempts and eval rows.
* :mod:`~repro.resilience.quarantine` — poisoned vectors and rows become
  :class:`QuarantineRecord` entries in the artefact instead of crashes.
* :mod:`~repro.resilience.checkpoint` — preemption-safe training:
  :class:`CheckpointPolicy` / :class:`TrainingGuard` give bit-identical
  resume and divergence rollback via atomic ``.npz`` snapshots.

The failure *injection* side lives in :mod:`repro.faults`; this package is
the *recovery* side.  See ``docs/resilience.md`` for the failure model and
the chaos-test contract.
"""

from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    TrainingCheckpoint,
    TrainingGuard,
    divergence_detail,
)
from repro.resilience.errors import (
    CheckpointError,
    CorruptShardError,
    DivergenceError,
    ResilienceError,
    ShardFailedError,
)
from repro.resilience.quarantine import QuarantineRecord, poisoned_sample_indices
from repro.resilience.retry import RetryPolicy, run_with_retry

__all__ = [
    "ResilienceError",
    "CorruptShardError",
    "ShardFailedError",
    "DivergenceError",
    "CheckpointError",
    "RetryPolicy",
    "run_with_retry",
    "QuarantineRecord",
    "poisoned_sample_indices",
    "CheckpointPolicy",
    "TrainingCheckpoint",
    "CheckpointManager",
    "TrainingGuard",
    "divergence_detail",
]
