"""Bounded retry with exponential backoff, instrumented through ``repro.obs``.

:class:`RetryPolicy` is the one retry vocabulary every pipeline stage
shares — datagen shard attempts, eval rows, held-out campaign rows — so
"how many attempts, backing off how" is a frozen, hashable value instead of
scattered constants.  :func:`run_with_retry` executes a callable under a
policy with an *injectable sleep*, which is what keeps the fault-injection
tests free of timing waits: they pass a recording stub and assert the exact
backoff schedule instead of sleeping through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from repro import obs

__all__ = ["RetryPolicy", "run_with_retry"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a failed unit of work, and how to back off.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retries).
    backoff_s:
        Delay before the first retry, in seconds.  ``0`` retries
        immediately — what the deterministic tests use.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, failures: int) -> float:
        """Backoff before the retry following the ``failures``-th failure (1-based)."""
        if failures < 1:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (failures - 1)


def run_with_retry(
    operation: Callable[[], _T],
    policy: RetryPolicy = RetryPolicy(),
    *,
    describe: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
) -> _T:
    """Run ``operation`` under a retry policy; return its first success.

    Publishes ``faults.errors`` per failed attempt, ``faults.retries`` per
    retry actually scheduled, and ``faults.exhausted`` when the budget runs
    out (the last error is then re-raised unchanged).
    :class:`~repro.faults.WorkerKilled` is a :class:`BaseException` and is
    therefore *never* retried by the default ``retry_on`` — an injected kill
    unwinds like a real one.

    Parameters
    ----------
    operation:
        Zero-argument callable to run.
    policy:
        The retry budget and backoff schedule.
    describe:
        Name used in log/metric context.
    sleep:
        Backoff sleeper; tests inject a recorder for zero-wait determinism.
    retry_on:
        Exception types that count as retryable failures.
    """
    metrics = obs.metrics()
    last_error: BaseException = RuntimeError(f"{describe}: no attempts ran")
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return operation()
        except retry_on as error:  # noqa: PERF203 - retry loop by design
            last_error = error
            metrics.counter("faults.errors").inc()
            if attempt >= policy.max_attempts:
                break
            metrics.counter("faults.retries").inc()
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
    metrics.counter("faults.exhausted").inc()
    raise last_error
