"""Corpus specifications for the dataset factory.

A *corpus* is the training data for one or more designs: for every design, a
number of random test vectors, their ground-truth worst-case noise maps, and
the extracted features, produced in shards by :func:`repro.datagen.engine.
generate_corpus`.  The spec objects here are the single source of truth for
what a corpus contains:

* :class:`CorpusDesignSpec` — one design's slice of the corpus (which design,
  how many vectors, trace length, compression, shard size, seed);
* :class:`CorpusSpec` — the full multi-design sweep plus the simulation
  options shared by every design.

Specs are frozen, picklable, and canonically hashable
(:meth:`CorpusSpec.config_hash`); the hash is stamped into every manifest so
a resumed run can prove it is continuing the same corpus.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from typing import Optional

from repro.sim.rom import ROMOptions
from repro.sim.transient import INTEGRATION_METHODS, SOLVER_MODES, TransientOptions
from repro.utils import check_positive
from repro.workloads.scenarios import validate_scenario
from repro.workloads.specs import ScenarioSpec
from repro.workloads.vectors import VectorConfig


@dataclass(frozen=True)
class CorpusDesignSpec:
    """One design's slice of a training corpus.

    Attributes
    ----------
    label:
        Manifest key for this design's shards (conventionally the design
        name, e.g. ``"D1"``); must be unique within a corpus and usable as a
        directory name.
    design:
        Design factory reference understood by the generation run's design
        factory — ``"D1@0.2"``, ``"small@8"``, ... (see
        :func:`repro.pdn.designs.design_from_name`).
    num_vectors:
        Total number of test vectors to generate and simulate.
    num_steps:
        Time stamps per vector.
    dt:
        Simulation time step in seconds.
    seed:
        Master seed of this design's vector suite.  Vector ``i`` is derived
        exactly as :meth:`repro.workloads.vectors.TestVectorGenerator.
        generate_suite` derives it, so a datagen corpus labels exactly the
        same test vectors as the sequential pipeline for the same seed
        (noise maps agree to solver rounding; see
        ``docs/data-pipeline.md``).
    shard_size:
        Vectors per on-disk shard (the unit of parallelism and resume).
    compression_rate / rate_step:
        Algorithm-1 temporal-compression parameters applied to the features
        (``None`` disables compression).
    scenario_mix:
        Scenario specs (family names or
        :class:`~repro.workloads.specs.ScenarioSpec` objects) blended into
        the vector suite.  When non-empty, ``scenario_fraction`` of the
        design's vectors are scenario traces instead of random vectors:
        scenario slots are spread evenly over the global vector-index range
        and cycle through the mix, so the assignment is a pure function of
        the spec — shard layout, generation order and resume cannot change
        it, and the corpus config hash covers it.
    scenario_fraction:
        Fraction of ``num_vectors`` built from ``scenario_mix`` (only
        meaningful when the mix is non-empty).
    """

    label: str
    design: str
    num_vectors: int = 40
    num_steps: int = 200
    dt: float = 1e-11
    seed: int = 0
    shard_size: int = 20
    compression_rate: Optional[float] = 0.3
    rate_step: float = 0.05
    scenario_mix: tuple = ()
    scenario_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.label or "/" in self.label or self.label in (".", ".."):
            raise ValueError(f"label must be a non-empty path-safe name, got {self.label!r}")
        if not self.design:
            raise ValueError("design reference must be non-empty")
        check_positive(self.num_vectors, "num_vectors")
        check_positive(self.shard_size, "shard_size")
        check_positive(self.dt, "dt")
        if self.num_steps < 2:
            raise ValueError(f"num_steps must be >= 2, got {self.num_steps}")
        if self.compression_rate is not None and not 0.0 < self.compression_rate <= 1.0:
            raise ValueError(
                f"compression_rate must be in (0, 1] or None, got {self.compression_rate}"
            )
        check_positive(self.rate_step, "rate_step")
        object.__setattr__(
            self,
            "scenario_mix",
            tuple(validate_scenario(entry) for entry in self.scenario_mix),
        )
        if self.scenario_mix:
            if not 0.0 < self.scenario_fraction <= 1.0:
                raise ValueError(
                    f"scenario_fraction must be in (0, 1], got {self.scenario_fraction}"
                )
        else:
            # Without a mix the fraction is meaningless and excluded from
            # to_dict; pin it to the default so equality and the
            # to_dict/from_dict round-trip stay consistent.
            object.__setattr__(self, "scenario_fraction", 0.5)

    @property
    def num_shards(self) -> int:
        """Number of shards this design's vectors are split into."""
        return math.ceil(self.num_vectors / self.shard_size)

    def shard_bounds(self, index: int) -> tuple[int, int]:
        """Global vector index range ``[start, stop)`` of one shard.

        Parameters
        ----------
        index:
            Shard index in ``0 .. num_shards - 1``.

        Returns
        -------
        The half-open ``(start, stop)`` vector-index interval.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(
                f"shard index {index} out of range for {self.num_shards} shards"
            )
        start = index * self.shard_size
        return start, min(self.num_vectors, start + self.shard_size)

    def vector_config(self) -> VectorConfig:
        """The test-vector generator configuration for this design."""
        return VectorConfig(num_steps=self.num_steps, dt=self.dt)

    def scenario_assignment(self) -> dict[int, ScenarioSpec]:
        """Global vector indices built from ``scenario_mix`` (index -> spec).

        ``round(scenario_fraction * num_vectors)`` slots (at least one, at
        most all) are spread evenly over ``0 .. num_vectors - 1`` and cycle
        through the mix in order.  Every other index stays a random vector.
        The mapping depends only on spec fields, never on shard layout, so
        resumed and re-sharded runs agree on which vector is which.
        """
        if not self.scenario_mix:
            return {}
        count = min(
            self.num_vectors,
            max(1, int(round(self.scenario_fraction * self.num_vectors))),
        )
        return {
            (slot * self.num_vectors) // count: self.scenario_mix[slot % len(self.scenario_mix)]
            for slot in range(count)
        }

    def vector_scenario(self, index: int) -> Optional[ScenarioSpec]:
        """The scenario spec of one global vector index (``None`` = random)."""
        if not 0 <= index < self.num_vectors:
            raise ValueError(
                f"vector index {index} out of range for {self.num_vectors} vectors"
            )
        return self.scenario_assignment().get(index)

    def to_dict(self) -> dict:
        """JSON-serialisable representation.

        ``scenario_mix``/``scenario_fraction`` are omitted when the mix is
        empty, so pre-existing all-random corpora keep their config hashes
        (and stay resumable) across this field's introduction.
        """
        payload = asdict(self)
        if self.scenario_mix:
            payload["scenario_mix"] = [spec.to_dict() for spec in self.scenario_mix]
        else:
            del payload["scenario_mix"]
            del payload["scenario_fraction"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusDesignSpec":
        """Rebuild a design spec from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["scenario_mix"] = tuple(
            ScenarioSpec.from_dict(entry) for entry in payload.get("scenario_mix", ())
        )
        return cls(**payload)


@dataclass(frozen=True)
class CorpusSpec:
    """A full multi-design corpus: design slices plus shared sim options.

    Attributes
    ----------
    designs:
        One :class:`CorpusDesignSpec` per design (unique labels).
    sim_batch_size:
        Vectors per lockstep transient block
        (:meth:`~repro.sim.dynamic_noise.DynamicNoiseAnalysis.run_many`);
        bounds the solver working set.
    solver_method / integration_method / initial_state:
        Ground-truth transient engine options (see
        :class:`~repro.sim.transient.TransientOptions`).  The solver
        defaults to ``"cholesky"`` — PDN system matrices are SPD, the
        symmetric SuperLU mode produces ~40% sparser factors, and sparser
        factors make every block back-substitution of the corpus run
        proportionally faster.  Results agree with the ``"direct"`` LU
        factorisation to solver rounding (~1e-14 relative; see
        ``docs/data-pipeline.md``).
    solver_mode:
        Which transient strategy labels the corpus: ``"full"`` (the
        full-order companion path, the default) or ``"rom"`` (the gated
        Krylov reduced-order model, see ``docs/solvers.md``).  Folded into
        the config hash and manifest — but omitted at the ``"full"``
        default, so pre-existing corpora keep their hashes and stay
        resumable.
    rom:
        Reduced-order options (:class:`~repro.sim.rom.ROMOptions`); only
        meaningful with ``solver_mode="rom"`` (auto-filled with defaults
        there, rejected otherwise by the transient-options validation).
    """

    designs: tuple[CorpusDesignSpec, ...]
    sim_batch_size: int = 48
    solver_method: str = "cholesky"
    integration_method: str = "backward_euler"
    initial_state: str = "dc"
    solver_mode: str = "full"
    rom: Optional[ROMOptions] = None

    def __post_init__(self) -> None:
        if not self.designs:
            raise ValueError("a corpus needs at least one design")
        labels = [design.label for design in self.designs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"design labels must be unique, got {labels}")
        check_positive(self.sim_batch_size, "sim_batch_size")
        if self.integration_method not in INTEGRATION_METHODS:
            raise ValueError(
                f"unknown integration method {self.integration_method!r}; "
                f"expected one of {INTEGRATION_METHODS}"
            )
        if self.solver_mode not in SOLVER_MODES:
            raise ValueError(
                f"unknown solver mode {self.solver_mode!r}; "
                f"expected one of {SOLVER_MODES}"
            )
        if self.solver_mode == "rom" and self.rom is None:
            # Pin the defaults explicitly so the manifest and config hash
            # record the exact ROM configuration that labelled the corpus.
            object.__setattr__(self, "rom", ROMOptions())
        # Delegate the remaining option validation to TransientOptions.
        self.transient_options()

    def transient_options(self) -> TransientOptions:
        """The transient-engine options every ground-truth run uses."""
        return TransientOptions(
            method=self.integration_method,
            initial_state=self.initial_state,
            store_waveform=False,
            solver_method=self.solver_method,
            solver_mode=self.solver_mode,
            rom=self.rom,
        )

    def design(self, label: str) -> CorpusDesignSpec:
        """Look up one design slice by its label."""
        for spec in self.designs:
            if spec.label == label:
                return spec
        raise KeyError(f"no design labelled {label!r} in this corpus")

    @property
    def total_vectors(self) -> int:
        """Total vector count across all designs."""
        return sum(design.num_vectors for design in self.designs)

    @property
    def total_shards(self) -> int:
        """Total shard count across all designs."""
        return sum(design.num_shards for design in self.designs)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stored in the manifest).

        ``solver_mode``/``rom`` are omitted at the ``"full"`` default, so
        pre-existing full-order corpora keep their config hashes (and stay
        resumable) across the solver seam's introduction; ROM-mode specs
        record the complete :class:`~repro.sim.rom.ROMOptions` block.
        """
        payload = asdict(self)
        payload["designs"] = [design.to_dict() for design in self.designs]
        if self.solver_mode == "full":
            del payload["solver_mode"]
            del payload["rom"]
        else:
            payload["rom"] = self.rom.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["designs"] = tuple(
            CorpusDesignSpec.from_dict(entry) for entry in payload["designs"]
        )
        if "rom" in payload and payload["rom"] is not None:
            payload["rom"] = ROMOptions.from_dict(payload["rom"])
        return cls(**payload)

    def config_hash(self) -> str:
        """Canonical SHA-256 of the spec.

        Two specs hash equally iff every generation-relevant field matches;
        the manifest stores this hash and a resumed run refuses to continue
        a corpus whose hash differs from its own spec.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def paper_corpus_spec(
    scale: float = 0.2,
    num_vectors: int = 40,
    num_steps: int = 200,
    shard_size: int = 20,
    seed: int = 0,
    compression_rate: Optional[float] = 0.3,
    solver_mode: str = "full",
    rom: Optional[ROMOptions] = None,
) -> CorpusSpec:
    """The paper's D1–D4 training sweep as one corpus spec.

    One call to :func:`~repro.datagen.engine.generate_corpus` with this spec
    produces per-design training corpora for all four reference analogues —
    the datagen equivalent of the per-design training regime of Table 2.

    Parameters
    ----------
    scale:
        Geometric scale of the reference designs (``1.0`` = paper size).
    num_vectors:
        Vectors per design (the paper uses 500).
    num_steps:
        Time stamps per vector.
    shard_size:
        Vectors per shard.
    seed:
        Per-design vector seed (the same seed is safe across designs — the
        designs differ, so the vector suites do too).
    compression_rate:
        Algorithm-1 retention rate for the features.
    solver_mode / rom:
        Label solver selection (see :class:`CorpusSpec`).

    Returns
    -------
    A four-design :class:`CorpusSpec`.
    """
    designs = tuple(
        CorpusDesignSpec(
            label=name,
            design=f"{name}@{scale}",
            num_vectors=num_vectors,
            num_steps=num_steps,
            seed=seed,
            shard_size=shard_size,
            compression_rate=compression_rate,
        )
        for name in ("D1", "D2", "D3", "D4")
    )
    return CorpusSpec(designs=designs, solver_mode=solver_mode, rom=rom)
