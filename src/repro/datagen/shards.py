"""On-disk corpus layout: shards, manifest, claims, content hashing.

A corpus root looks like::

    <root>/
      manifest.json            # config hash, git rev, spec, shard records
      D1/shard-00000.npz       # NoiseDataset archive (uncompressed .npz)
      D1/shard-00001.npz
      D2/shard-00000.npz
      ...

The **manifest is the source of truth**: a shard exists iff its manifest
record says ``complete`` *and* the file is present.  Both the manifest and
every shard are written atomically (temp file + ``os.replace``), so a killed
run can never leave a half-written artefact that a resumed run would trust;
an orphan shard file without a manifest record is simply regenerated.
Concurrent runs are fenced per shard with ``O_EXCL`` claim files.

``docs/data-pipeline.md`` documents the full format and the resumability
contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from repro import faults
from repro.datagen.spec import CorpusSpec
from repro.io.atomic import atomic_replace
from repro.resilience.errors import CorruptShardError
from repro.utils import get_logger
from repro.utils.artifacts import atomic_write_text, git_revision
from repro.workloads.dataset import NoiseDataset, merge_datasets

_LOG = get_logger("datagen.shards")

#: Manifest file name inside a corpus root.
MANIFEST_NAME = "manifest.json"

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def _hash_array(digest, array: np.ndarray) -> None:
    """Fold one array (dtype, shape, C-order bytes) into a running digest."""
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    digest.update(array.tobytes())


def dataset_content_hash(dataset: NoiseDataset) -> str:
    """Canonical SHA-256 of a dataset's *deterministic* contents.

    Covers the design identity (name, tile shape, dt, Vdd, hotspot
    threshold), the distance tensor, and every sample's name, current maps,
    target map and hotspot map.  **Excludes** per-sample ``sim_runtime`` —
    wall-clock times are the one nondeterministic field, so two runs of the
    same spec produce equal hashes even though their timings differ.  This
    is the hash recorded per shard in the manifest and asserted by the
    determinism/resume tests and ``benchmarks/bench_datagen.py``.

    Parameters
    ----------
    dataset:
        The dataset (typically one shard, or a merged design corpus).

    Returns
    -------
    Hex digest string.
    """
    digest = hashlib.sha256()
    digest.update(dataset.design_name.encode())
    digest.update(np.asarray(dataset.tile_shape, dtype=np.int64).tobytes())
    digest.update(np.float64(dataset.dt).tobytes())
    digest.update(np.float64(dataset.vdd).tobytes())
    digest.update(np.float64(dataset.hotspot_threshold).tobytes())
    _hash_array(digest, dataset.distance)
    for sample in dataset.samples:
        digest.update(sample.name.encode())
        _hash_array(digest, sample.features.current_maps)
        _hash_array(digest, sample.target)
        _hash_array(digest, sample.hotspot_map.astype(bool))
    return digest.hexdigest()


@dataclass
class ShardRecord:
    """One shard's manifest entry.

    Attributes
    ----------
    label:
        Design label the shard belongs to.
    index:
        Shard index within the design (0-based, contiguous).
    start / stop:
        Global vector-index interval ``[start, stop)`` the shard covers.
    path:
        Shard file path relative to the corpus root.
    num_samples:
        Sample count (``stop - start``).
    content_hash:
        :func:`dataset_content_hash` of the shard's dataset.
    seed:
        The design-level vector seed the shard was derived from.
    status:
        ``"complete"`` — incomplete shards are never recorded.
    solver:
        Which transient strategy actually labelled the shard: ``"full"``,
        ``"rom"``, or ``"rom+fallback"`` when the ROM error gate rejected
        the shard and the full-order solver relabelled it (see
        ``docs/solvers.md``).  Omitted from the serialised record at the
        ``"full"`` default so pre-seam manifests round-trip unchanged.
    """

    label: str
    index: int
    start: int
    stop: int
    path: str
    num_samples: int
    content_hash: str
    seed: int
    status: str = "complete"
    solver: str = "full"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        payload = asdict(self)
        if self.solver == "full":
            del payload["solver"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**payload)


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class CorpusManifest:
    """In-memory view of a corpus manifest (see module docstring).

    Parameters
    ----------
    spec:
        The corpus spec the manifest describes.
    git_rev:
        Revision stamp; resolved via :func:`git_revision` when omitted.
    """

    def __init__(self, spec: CorpusSpec, git_rev: Optional[str] = None):
        self.spec = spec
        self.config_hash = spec.config_hash()
        self.git_rev = git_rev if git_rev is not None else git_revision()
        self._records: dict[tuple[str, int], ShardRecord] = {}
        self._quarantined: dict[tuple[str, int, str], dict] = {}

    @property
    def records(self) -> list[ShardRecord]:
        """All shard records, ordered by (label, shard index)."""
        return [self._records[key] for key in sorted(self._records)]

    def get(self, label: str, index: int) -> Optional[ShardRecord]:
        """The record of one shard, or ``None`` when not yet recorded."""
        return self._records.get((label, index))

    def is_complete(self, label: str, index: int) -> bool:
        """Whether one shard is recorded as complete."""
        record = self.get(label, index)
        return record is not None and record.status == "complete"

    def design_records(self, label: str) -> list[ShardRecord]:
        """Complete records of one design, ordered by shard index."""
        return [record for record in self.records if record.label == label]

    def add(self, record: ShardRecord) -> None:
        """Insert or replace one shard record."""
        self._records[(record.label, record.index)] = record

    def add_quarantine(self, entry: dict) -> None:
        """Record one quarantined vector.

        ``entry`` carries ``label`` / ``index`` (the shard) plus ``key`` /
        ``reason`` / ``detail`` (see
        :class:`~repro.resilience.quarantine.QuarantineRecord`).  Entries are
        deduplicated by ``(label, index, key)``, so merging two runs'
        manifests cannot double-count a vector.
        """
        self._quarantined[(entry["label"], int(entry["index"]), entry["key"])] = dict(entry)

    @property
    def quarantined(self) -> list[dict]:
        """All quarantine entries, ordered by (label, shard index, vector)."""
        return [self._quarantined[key] for key in sorted(self._quarantined)]

    def completed_designs(self) -> list[str]:
        """Labels whose every shard is recorded as complete."""
        labels = []
        for design in self.spec.designs:
            if all(self.is_complete(design.label, i) for i in range(design.num_shards)):
                labels.append(design.label)
        return labels

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole manifest."""
        # "quarantined" is always present (even when empty) so a clean run's
        # manifest and a faulted-then-recovered run's manifest serialise to
        # the same bytes whenever their contents agree — the byte-identity
        # contract the chaos tests diff on.
        return {
            "version": MANIFEST_VERSION,
            "config_hash": self.config_hash,
            "git_rev": self.git_rev,
            "spec": self.spec.to_dict(),
            "shards": [record.to_dict() for record in self.records],
            "quarantined": self.quarantined,
        }

    def save(self, path: Union[str, Path]) -> None:
        """Persist the manifest atomically as pretty-printed JSON."""
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CorpusManifest":
        """Load a manifest written by :meth:`save`.

        Raises
        ------
        ValueError
            When the manifest schema version is unknown.
        """
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r} in {path}"
            )
        manifest = cls(CorpusSpec.from_dict(payload["spec"]), git_rev=payload["git_rev"])
        if manifest.config_hash != payload["config_hash"]:
            # The stored hash is authoritative for corpora written by other
            # code revisions; keep it so mismatches are detected, not hidden.
            manifest.config_hash = payload["config_hash"]
        for entry in payload.get("shards", []):
            manifest.add(ShardRecord.from_dict(entry))
        # Tolerant read: manifests written before the resilience layer have
        # no "quarantined" key.
        for entry in payload.get("quarantined", []):
            manifest.add_quarantine(entry)
        return manifest


class ShardStore:
    """Filesystem operations of one corpus root.

    All writes are atomic; shard-level ``O_EXCL`` claim files fence
    concurrent generation runs (two workers can never both write the same
    shard — the loser skips it and moves on).

    Parameters
    ----------
    root:
        The corpus root directory (created on demand).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        """Path of the corpus manifest."""
        return self.root / MANIFEST_NAME

    def shard_relpath(self, label: str, index: int) -> str:
        """Root-relative path of one shard file."""
        return f"{label}/shard-{index:05d}.npz"

    def shard_path(self, label: str, index: int) -> Path:
        """Absolute path of one shard file."""
        return self.root / self.shard_relpath(label, index)

    def _claim_path(self, label: str, index: int) -> Path:
        return self.root / f"{label}/shard-{index:05d}.claim"

    def claim(self, label: str, index: int) -> bool:
        """Try to claim one shard for writing.

        Creates ``<shard>.claim`` with ``O_CREAT | O_EXCL`` — the atomic
        test-and-set the filesystem gives us — and records the owner's pid
        inside.  A claim is advisory and short-lived: the writer releases it
        as soon as the shard (or the failure) is known.  Claims whose owner
        process has died are removed by :meth:`clear_stale_claims` at the
        start of the next run; claims of live processes are honoured, which
        is what fences two concurrent runs on one corpus root.

        Returns
        -------
        ``True`` when this caller owns the shard, ``False`` when another
        live writer already claimed it.
        """
        path = self._claim_path(label, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(descriptor, "w") as handle:
            handle.write(str(os.getpid()))
        return True

    def release(self, label: str, index: int) -> None:
        """Release a claim taken with :meth:`claim` (idempotent)."""
        try:
            self._claim_path(label, index).unlink()
        except FileNotFoundError:
            pass

    def clear_stale_claims(self) -> int:
        """Remove claim files whose owning process is dead (crash recovery).

        A claim records its writer's pid; claims of still-running processes
        are left alone so that concurrent generation runs on the same root
        keep their per-shard fencing.  Unreadable claims (empty/corrupt —
        the writer died between ``open`` and ``write``) count as stale.

        Returns
        -------
        Number of claim files removed.
        """
        removed = 0
        for path in self.root.glob("*/shard-*.claim"):
            try:
                owner = int(path.read_text().strip())
            except (OSError, ValueError):
                owner = None
            if owner is not None and _pid_alive(owner):
                continue
            path.unlink(missing_ok=True)
            removed += 1
        if removed:
            _LOG.info("removed %d stale shard claims under %s", removed, self.root)
        return removed

    def write_shard(self, label: str, index: int, dataset: NoiseDataset) -> str:
        """Atomically write one shard and return its content hash.

        The dataset is stored as an uncompressed ``.npz``
        (:meth:`~repro.workloads.dataset.NoiseDataset.save` with
        ``compress=False``) through
        :func:`~repro.io.atomic.atomic_replace` (fsync + rename), so readers
        can never observe a torn shard.  The
        :meth:`~repro.faults.FaultInjector.during_shard_write` seam fires
        between the temp-file write and the rename — the window a SIGKILL
        tears in a non-atomic writer.

        Returns
        -------
        The shard's :func:`dataset_content_hash`.
        """
        path = self.shard_path(label, index)
        with atomic_replace(path, suffix=".npz") as temporary:
            dataset.save(temporary, compress=False)
            faults.active().during_shard_write(label, index, temporary)
        return dataset_content_hash(dataset)

    def read_shard(
        self, label: str, index: int, expected_hash: Optional[str] = None
    ) -> NoiseDataset:
        """Load one shard back as a :class:`NoiseDataset`.

        Raises
        ------
        repro.resilience.CorruptShardError
            When the file is unreadable (truncated or bit-flipped archive);
            ``expected_hash`` — the manifest's content hash, when the caller
            has it — is named in the error.
        """
        path = self.shard_path(label, index)
        try:
            return NoiseDataset.load(path)
        except Exception as error:
            raise CorruptShardError(
                path, expected_hash=expected_hash, reason=repr(error)
            ) from error

    def has_shard(self, label: str, index: int) -> bool:
        """Whether the shard file exists on disk."""
        return self.shard_path(label, index).exists()

    def load_manifest(self) -> Optional[CorpusManifest]:
        """Load the manifest, or ``None`` when the corpus is untouched."""
        if not self.manifest_path.exists():
            return None
        return CorpusManifest.load(self.manifest_path)

    def save_manifest(self, manifest: CorpusManifest) -> None:
        """Persist the manifest atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        manifest.save(self.manifest_path)


def load_design_dataset(
    root: Union[str, Path],
    label: str,
    verify: bool = False,
) -> NoiseDataset:
    """Load one design's full corpus from its shards.

    Parameters
    ----------
    root:
        Corpus root directory (must contain a manifest).
    label:
        Design label within the corpus.
    verify:
        Recompute every shard's content hash and compare against the
        manifest (slower; catches on-disk corruption).

    Returns
    -------
    The merged :class:`NoiseDataset`, samples ordered by global vector
    index.

    Raises
    ------
    FileNotFoundError
        When the corpus has no manifest.
    repro.resilience.CorruptShardError
        When a shard file is unreadable, or (with ``verify``) its recomputed
        content hash mismatches the manifest.  The error names the shard
        path and both hashes.  (Subclasses :class:`ValueError`.)
    ValueError
        When the design is unknown or shards are missing/incomplete.
    """
    store = ShardStore(root)
    manifest = store.load_manifest()
    if manifest is None:
        raise FileNotFoundError(f"no corpus manifest under {store.root}")
    design = manifest.spec.design(label)
    shards = []
    for index in range(design.num_shards):
        if not manifest.is_complete(label, index) or not store.has_shard(label, index):
            raise ValueError(
                f"shard {index} of design {label!r} is incomplete; "
                "re-run generate_corpus on this root to finish the corpus"
            )
        expected = manifest.get(label, index).content_hash
        shard = store.read_shard(label, index, expected_hash=expected)
        if verify:
            actual = dataset_content_hash(shard)
            if actual != expected:
                raise CorruptShardError(
                    store.shard_path(label, index),
                    expected_hash=expected,
                    actual_hash=actual,
                )
        shards.append(shard)
    return merge_datasets(shards)


def load_corpus(
    root: Union[str, Path], verify: bool = False
) -> dict[str, NoiseDataset]:
    """Load every design of a corpus.

    All designs of the spec must be complete — a partially generated corpus
    raises ``ValueError`` naming the first incomplete shard (finish it with
    :func:`~repro.datagen.engine.generate_corpus` on the same root).  Use
    :meth:`CorpusManifest.completed_designs` plus
    :func:`load_design_dataset` to read just the finished designs of a
    corpus that is still being generated.

    Parameters
    ----------
    root:
        Corpus root directory.
    verify:
        Forwarded to :func:`load_design_dataset`.

    Returns
    -------
    Mapping of design label to merged dataset, in spec order.
    """
    store = ShardStore(root)
    manifest = store.load_manifest()
    if manifest is None:
        raise FileNotFoundError(f"no corpus manifest under {Path(root)}")
    return {
        design.label: load_design_dataset(root, design.label, verify=verify)
        for design in manifest.spec.designs
    }


def iter_shard_paths(root: Union[str, Path]) -> Iterator[tuple[ShardRecord, Path]]:
    """Yield ``(record, absolute path)`` for every complete shard on disk."""
    store = ShardStore(root)
    manifest = store.load_manifest()
    if manifest is None:
        return
    for record in manifest.records:
        path = store.root / record.path
        if record.status == "complete" and path.exists():
            yield record, path
