"""Dataset factory: parallel, resumable, multi-design corpus generation.

The paper's CNN trains on thousands of simulated sign-off runs per design;
this subpackage turns producing them from a script loop into an engine:

* :class:`~repro.datagen.spec.CorpusSpec` /
  :class:`~repro.datagen.spec.CorpusDesignSpec` — declarative, hashable
  descriptions of a multi-design corpus
  (:func:`~repro.datagen.spec.paper_corpus_spec` builds the D1–D4 sweep);
* :func:`~repro.datagen.engine.generate_corpus` — a process-pool driver with
  deterministic per-shard seeding, atomic shard writes, and resume (rerunning
  skips complete shards);
* :class:`~repro.datagen.shards.ShardStore` /
  :class:`~repro.datagen.shards.CorpusManifest` — the on-disk contract:
  ``.npz`` shards plus a JSON manifest carrying the spec hash, git revision
  and per-shard content hashes;
* :func:`~repro.datagen.shards.load_corpus` /
  :func:`~repro.datagen.shards.load_design_dataset` — reassemble shards into
  :class:`~repro.workloads.dataset.NoiseDataset` objects that training and
  the benchmarks consume transparently.

The heavy lifting happens in the lockstep block-RHS transient path
(:meth:`repro.sim.transient.TransientEngine.run_many`).  See
``docs/data-pipeline.md`` for the shard format and the resumability
contract, and ``benchmarks/bench_datagen.py`` for measured speedups.
"""

from repro.datagen.engine import (
    DEFAULT_POLICY,
    DesignFactory,
    GenerationPolicy,
    GenerationReport,
    generate_corpus,
    shard_vectors,
)
from repro.datagen.shards import (
    CorpusManifest,
    ShardRecord,
    ShardStore,
    dataset_content_hash,
    git_revision,
    iter_shard_paths,
    load_corpus,
    load_design_dataset,
)
from repro.datagen.spec import CorpusDesignSpec, CorpusSpec, paper_corpus_spec

__all__ = [
    "CorpusDesignSpec",
    "CorpusSpec",
    "paper_corpus_spec",
    "DesignFactory",
    "GenerationPolicy",
    "DEFAULT_POLICY",
    "GenerationReport",
    "generate_corpus",
    "shard_vectors",
    "CorpusManifest",
    "ShardRecord",
    "ShardStore",
    "dataset_content_hash",
    "git_revision",
    "iter_shard_paths",
    "load_corpus",
    "load_design_dataset",
]
