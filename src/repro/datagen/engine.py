"""The corpus generation engine: shard tasks, worker pool, resume logic.

:func:`generate_corpus` turns a :class:`~repro.datagen.spec.CorpusSpec` into
on-disk shards.  The unit of work is one *shard* — a contiguous slice of one
design's vector suite — and shards are independent by construction, so they
fan out across a :class:`~concurrent.futures.ProcessPoolExecutor` exactly
like the serving sweep fans out scenarios: design factory *references* cross
the process boundary, each worker builds its designs and transient
factorisations once, and every shard is written atomically with its content
hash recorded in the manifest.

Determinism contract: vector ``i`` of a design is generated from the ``i``-th
generator of ``spawn_rngs(seed, num_vectors)`` — the exact derivation
:meth:`~repro.workloads.vectors.TestVectorGenerator.generate_suite` uses —
and every simulation step is deterministic.  A corpus is therefore a pure,
bit-reproducible function of its spec (modulo wall-clock ``sim_runtime``
bookkeeping, which the content hashes exclude), no matter how the run was
parallelised, interrupted or resumed; against the sequential per-vector
pipeline it agrees to solver rounding (see ``docs/data-pipeline.md``).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import faults, obs
from repro.datagen.shards import (
    CorpusManifest,
    ShardRecord,
    ShardStore,
    dataset_content_hash,
)
from repro.datagen.spec import CorpusDesignSpec, CorpusSpec
from repro.pdn.designs import Design, design_from_name
from repro.resilience.errors import CorruptShardError, ShardFailedError
from repro.resilience.quarantine import poisoned_sample_indices
from repro.resilience.retry import RetryPolicy
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.rom import ROMOptions
from repro.sim.transient import TransientOptions
from repro.utils import get_logger
from repro.utils.random import spawn_rngs
from repro.workloads.dataset import build_dataset
from repro.workloads.scenarios import build_scenario_trace
from repro.workloads.vectors import TestVectorGenerator

_LOG = get_logger("datagen.engine")

#: Signature of a design factory: reference string -> Design.
DesignFactory = Callable[[str], Design]

#: Signature of a picklable fault-injector factory installed in each worker.
FaultsFactory = Callable[[], "faults.FaultInjector"]


@dataclass(frozen=True)
class GenerationPolicy:
    """Failure-handling knobs of one :func:`generate_corpus` run.

    Attributes
    ----------
    retry:
        Per-shard retry budget and backoff.  Failed shards are retried in
        waves (all first-attempt failures, then all second attempts, …) with
        the policy's exponential backoff between waves; shards that exhaust
        the budget are reported in a
        :class:`~repro.resilience.errors.ShardFailedError` *after* every
        other shard has been generated and recorded.
    shard_timeout_s:
        Parent-side deadline per pooled shard.  A shard exceeding it counts
        as a failed attempt (``faults.shard_timeouts``) and is retried; the
        stuck worker is left to finish or die — its claim fences the retry
        until it does.  ``None`` disables timeouts (and inline runs cannot
        enforce them).
    quarantine:
        Scan each shard's freshly simulated dataset for non-finite labels or
        current maps; poisoned vectors are dropped from the shard and
        recorded in the manifest's ``quarantined`` list instead of crashing
        the run.
    verify_resume:
        On resume, recompute the content hash of every shard the manifest
        says is complete; corrupt or unreadable shards are regenerated
        instead of trusted.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    shard_timeout_s: Optional[float] = None
    quarantine: bool = True
    verify_resume: bool = True


#: Default failure handling: 3 attempts, quarantine on, resume verification on.
DEFAULT_POLICY = GenerationPolicy()


@dataclass(frozen=True)
class _ShardTask:
    """One shard's worth of generation work (picklable, self-contained)."""

    root: str
    label: str
    index: int
    design_spec: CorpusDesignSpec
    sim_batch_size: int
    solver_method: str
    integration_method: str
    initial_state: str
    quarantine: bool = True
    solver_mode: str = "full"
    rom: Optional[ROMOptions] = None


@dataclass
class GenerationReport:
    """Outcome of one :func:`generate_corpus` call.

    Attributes
    ----------
    root:
        The corpus root directory.
    shards_total:
        Shard count of the whole spec.
    shards_generated:
        Shards written by *this* run.
    shards_skipped:
        Shards already complete in the manifest (resume hits).
    shards_deferred:
        Shards left ungenerated — claimed by a concurrent run, or cut off
        by ``max_shards``.
    shards_failed:
        Shards that exhausted their retry budget this run (also listed in
        the raised :class:`~repro.resilience.errors.ShardFailedError`).
    shards_regenerated:
        Resumed shards whose on-disk file failed content-hash verification
        and were regenerated from scratch.
    vectors_quarantined:
        Poisoned vectors dropped into the manifest's quarantine this run.
    samples_generated:
        Vectors simulated by this run.
    seconds:
        Wall-clock time of this run.
    manifest:
        The manifest after this run.
    """

    root: Path
    shards_total: int
    shards_generated: int = 0
    shards_skipped: int = 0
    shards_deferred: int = 0
    shards_failed: int = 0
    shards_regenerated: int = 0
    vectors_quarantined: int = 0
    samples_generated: int = 0
    seconds: float = 0.0
    manifest: Optional[CorpusManifest] = None

    @property
    def complete(self) -> bool:
        """Whether every shard of the spec is now complete."""
        return self.manifest is not None and all(
            self.manifest.is_complete(design.label, index)
            for design in self.manifest.spec.designs
            for index in range(design.num_shards)
        )

    def as_dict(self) -> dict:
        """Flat summary for logs and reports."""
        return {
            "root": str(self.root),
            "shards_total": self.shards_total,
            "shards_generated": self.shards_generated,
            "shards_skipped": self.shards_skipped,
            "shards_deferred": self.shards_deferred,
            "shards_failed": self.shards_failed,
            "shards_regenerated": self.shards_regenerated,
            "vectors_quarantined": self.vectors_quarantined,
            "samples_generated": self.samples_generated,
            "seconds": self.seconds,
            "complete": self.complete,
        }


# Per-worker state, initialised once per process by _worker_init.
_WORKER_FACTORY: Optional[DesignFactory] = None
_WORKER_DESIGNS: dict[str, Design] = {}
_WORKER_ANALYSES: dict[tuple, DynamicNoiseAnalysis] = {}


def _worker_init(
    factory: DesignFactory, faults_factory: Optional[FaultsFactory] = None
) -> None:
    """Process-pool initializer: install the design factory, clear caches.

    When a ``faults_factory`` is supplied its product is installed as the
    process-global fault injector (:func:`repro.faults.install`), so pooled
    workers script the same failures an inline run would.  ``None`` leaves
    whatever injector is already active untouched — which is what lets
    inline tests install one via :func:`repro.faults.injected` around the
    engine call.
    """
    global _WORKER_FACTORY
    _WORKER_FACTORY = factory
    _WORKER_DESIGNS.clear()
    _WORKER_ANALYSES.clear()
    if faults_factory is not None:
        faults.install(faults_factory())


def _worker_design(reference: str) -> Design:
    """Build (or fetch) this worker's instance of a design."""
    assert _WORKER_FACTORY is not None
    design = _WORKER_DESIGNS.get(reference)
    if design is None:
        design = _WORKER_FACTORY(reference)
        _WORKER_DESIGNS[reference] = design
    return design


def _worker_analysis(task: _ShardTask, design: Design) -> DynamicNoiseAnalysis:
    """Build (or fetch) the cached transient analysis for a task's options."""
    key = (
        task.design_spec.design,
        task.design_spec.dt,
        task.integration_method,
        task.initial_state,
        task.solver_method,
        task.solver_mode,
        task.rom,
    )
    analysis = _WORKER_ANALYSES.get(key)
    if analysis is None:
        options = TransientOptions(
            method=task.integration_method,
            initial_state=task.initial_state,
            store_waveform=False,
            solver_method=task.solver_method,
            solver_mode=task.solver_mode,
            rom=task.rom,
        )
        analysis = DynamicNoiseAnalysis(design, task.design_spec.dt, options)
        _WORKER_ANALYSES[key] = analysis
    return analysis


def shard_vectors(design: Design, spec: CorpusDesignSpec, index: int):
    """Generate the test vectors of one shard, reproducibly.

    The seeds of the *whole* suite are derived first and then sliced, so a
    shard's vectors are identical to the same positions of
    :meth:`~repro.workloads.vectors.TestVectorGenerator.generate_suite`
    regardless of shard size or generation order.  Vector indices the spec's
    ``scenario_mix`` claims (see :meth:`~repro.datagen.spec.CorpusDesignSpec.
    scenario_assignment`) are built as scenario traces from the same
    per-vector generator, so blending scenarios in changes neither the other
    vectors nor the resume semantics.

    Parameters
    ----------
    design:
        The design the vectors excite.
    spec:
        The design's corpus slice.
    index:
        Shard index.

    Returns
    -------
    List of :class:`~repro.sim.waveform.CurrentTrace`, one per vector of the
    shard, named ``<design>-v<global index>``.
    """
    start, stop = spec.shard_bounds(index)
    rngs = spawn_rngs(spec.seed, spec.num_vectors)[start:stop]
    generator = TestVectorGenerator(design, spec.vector_config())
    assignment = spec.scenario_assignment()
    traces = []
    for global_index, rng in zip(range(start, stop), rngs):
        name = f"{design.name}-v{global_index:04d}"
        scenario = assignment.get(global_index)
        if scenario is None:
            traces.append(generator.generate(rng, name=name))
        else:
            traces.append(
                build_scenario_trace(
                    scenario, design,
                    num_steps=spec.num_steps, dt=spec.dt, seed=rng, name=name,
                )
            )
    return traces


def _generate_shard(task: _ShardTask) -> dict:
    """Generate one shard inside a worker; returns manifest-record fields.

    Claims the shard first; when another live run holds the claim the task
    returns a ``deferred`` marker instead of fighting over the file.
    """
    store = ShardStore(task.root)
    if not store.claim(task.label, task.index):
        return {"deferred": True, "label": task.label, "index": task.index}
    try:
        faults.active().before_shard(task.label, task.index)
        tracer = obs.get_tracer()
        with tracer.span("datagen.shard", label=task.label, index=task.index) as shard_span:
            spec = task.design_spec
            design = _worker_design(spec.design)
            analysis = _worker_analysis(task, design)
            traces = shard_vectors(design, spec, task.index)
            rom_stats = analysis.engine.rom_stats
            fallbacks_before = rom_stats.fallbacks if rom_stats is not None else 0
            with tracer.span("datagen.simulate") as sim_span:
                dataset = build_dataset(
                    design,
                    traces,
                    compression_rate=spec.compression_rate,
                    rate_step=spec.rate_step,
                    analysis=analysis,
                    sim_batch_size=task.sim_batch_size,
                )
            dataset = faults.active().on_shard_dataset(task.label, task.index, dataset)
            dataset, quarantined = _quarantine_poisoned(task, dataset)
            content_hash = store.write_shard(task.label, task.index, dataset)
        if task.solver_mode == "rom":
            # The ROM gate works per run_many call — i.e. per shard here —
            # so the fallback delta says whether *this* shard's labels came
            # from the reduced or the (relabelled) full path.
            fell_back = rom_stats is not None and rom_stats.fallbacks > fallbacks_before
            shard_solver = "rom+fallback" if fell_back else "rom"
        else:
            shard_solver = "full"
        start, stop = spec.shard_bounds(task.index)
        record = ShardRecord(
            label=task.label,
            index=task.index,
            start=start,
            stop=stop,
            path=store.shard_relpath(task.label, task.index),
            num_samples=len(dataset),
            content_hash=content_hash,
            seed=spec.seed,
            solver=shard_solver,
        )
        # Worker-side telemetry: shard throughput counters plus the per-shard
        # solver-time histogram, flushed into this process's event shard so a
        # pool run reports exactly what the same run inline would.
        metrics = obs.metrics()
        metrics.counter("datagen.shards_generated").inc()
        metrics.counter("datagen.vectors_generated").inc(len(dataset))
        metrics.histogram("datagen.shard_seconds").observe(shard_span.duration_s)
        metrics.histogram("datagen.sim_seconds").observe(sim_span.duration_s)
        obs.flush_shard()
        return {
            "deferred": False,
            "record": record.to_dict(),
            "quarantined": quarantined,
            "pid": os.getpid(),
        }
    finally:
        store.release(task.label, task.index)


def _quarantine_poisoned(task: _ShardTask, dataset):
    """Drop poisoned vectors from a shard's dataset; return quarantine entries.

    A vector whose simulated label or current maps are non-finite (solver
    non-convergence, numeric blow-up, injected NaN) is removed from the shard
    and described by a manifest quarantine entry instead of poisoning the
    corpus or crashing the run.  Scanning is deterministic, so a clean run
    and a killed-and-resumed run quarantine the exact same vectors.
    """
    if not task.quarantine:
        return dataset, []
    poisoned = poisoned_sample_indices(dataset)
    if not poisoned:
        return dataset, []
    quarantined = [
        {
            "label": task.label,
            "index": task.index,
            "key": dataset.samples[position].name,
            "reason": reason,
            "detail": "",
        }
        for position, reason in poisoned
    ]
    dropped = {position for position, _ in poisoned}
    keep = [i for i in range(len(dataset)) if i not in dropped]
    metrics = obs.metrics()
    metrics.counter("faults.quarantined_vectors").inc(len(dropped))
    _LOG.warning(
        "quarantined %d poisoned vector(s) in shard %s:%d: %s",
        len(dropped),
        task.label,
        task.index,
        ", ".join(entry["key"] for entry in quarantined),
    )
    return dataset.subset(keep), quarantined


def _generate_shard_safe(task: _ShardTask) -> dict:
    """Run :func:`_generate_shard`, converting errors into failure outcomes.

    Only :class:`Exception` is converted — an injected
    :class:`~repro.faults.WorkerKilled` (or a real signal) still unwinds the
    worker, exactly as the fault model requires.  The failure outcome is
    picklable (the error travels as its ``repr``), so the parent's retry
    loop works identically for pooled and inline execution.
    """
    try:
        return _generate_shard(task)
    except Exception as error:
        return {
            "failed": True,
            "label": task.label,
            "index": task.index,
            "error": repr(error),
        }


def generate_corpus(
    spec: CorpusSpec,
    root: Union[str, Path],
    num_workers: Optional[int] = None,
    design_factory: DesignFactory = design_from_name,
    resume: bool = True,
    max_shards: Optional[int] = None,
    policy: GenerationPolicy = DEFAULT_POLICY,
    faults_factory: Optional[FaultsFactory] = None,
) -> GenerationReport:
    """Generate (or finish) a training corpus on disk.

    The call is idempotent and resumable: shards whose manifest records are
    complete (and whose files verify, see ``policy.verify_resume``) are
    skipped, everything else is (re)generated, and the manifest is re-saved
    after every finished shard — killing the run at any point loses at most
    the shards in flight.  Failed shards are retried in waves under
    ``policy.retry``; poisoned vectors are quarantined into the manifest
    instead of crashing the run.

    Parameters
    ----------
    spec:
        What to generate.  A resumed root must carry the same
        :meth:`~repro.datagen.spec.CorpusSpec.config_hash`.
    root:
        Corpus root directory (created on demand).
    num_workers:
        Worker process count; ``0`` runs inline in this process (the lockstep
        block solver still applies), ``None`` picks
        ``min(pending shards, cpu_count)``.  Platforms that refuse to spawn
        processes degrade to inline execution.
    design_factory:
        Top-level callable turning a spec's ``design`` reference into a
        :class:`~repro.pdn.designs.Design` inside each worker (must be
        picklable by reference).
    resume:
        ``False`` regenerates every shard from scratch, ignoring (and
        overwriting) any previous manifest and shards.
    max_shards:
        Stop after generating this many shards (testing/ops knob — it is
        how the resume tests simulate an interrupted run).
    policy:
        Failure handling: retry budget, per-shard timeout, quarantine and
        resume verification (see :class:`GenerationPolicy`).
    faults_factory:
        Picklable zero-argument factory whose product is installed as the
        fault injector inside every worker process (and inline, when the
        pool is unavailable).  Testing knob — production runs leave it
        ``None``.

    Returns
    -------
    A :class:`GenerationReport`; ``report.complete`` says whether the corpus
    is now fully generated.

    Raises
    ------
    ValueError
        When resuming a root whose manifest hash does not match ``spec``.
    repro.resilience.ShardFailedError
        When shards exhaust ``policy.retry`` — raised only after every other
        shard has been generated and recorded (the completed work survives;
        ``error.report`` carries this run's :class:`GenerationReport`).
    """
    root = Path(root)
    store = ShardStore(root)

    manifest = store.load_manifest() if resume else None
    if manifest is not None and manifest.config_hash != spec.config_hash():
        raise ValueError(
            f"corpus at {root} was generated from a different spec "
            f"(manifest hash {manifest.config_hash[:12]}…, "
            f"spec hash {spec.config_hash()[:12]}…); "
            "use a fresh root or resume=False to regenerate"
        )
    if manifest is None:
        # Only a fresh manifest is written here; a resumed one is already on
        # disk, and rewriting our possibly stale snapshot could erase a
        # record a concurrent run lands in between (completions go through
        # the read-merge-save of _record_completion instead).
        manifest = CorpusManifest(spec)
        store.save_manifest(manifest)
    store.clear_stale_claims()

    report = GenerationReport(root=root, shards_total=spec.total_shards, manifest=manifest)
    tasks: list[_ShardTask] = []
    for design in spec.designs:
        for index in range(design.num_shards):
            if (
                resume
                and manifest.is_complete(design.label, index)
                and store.has_shard(design.label, index)
            ):
                if policy.verify_resume and not _shard_verifies(
                    store, manifest, design.label, index
                ):
                    report.shards_regenerated += 1
                else:
                    report.shards_skipped += 1
                    continue
            tasks.append(
                _ShardTask(
                    root=str(root),
                    label=design.label,
                    index=index,
                    design_spec=design,
                    sim_batch_size=spec.sim_batch_size,
                    solver_method=spec.solver_method,
                    integration_method=spec.integration_method,
                    initial_state=spec.initial_state,
                    quarantine=policy.quarantine,
                    solver_mode=spec.solver_mode,
                    rom=spec.rom,
                )
            )
    if max_shards is not None and len(tasks) > max_shards:
        report.shards_deferred += len(tasks) - max_shards
        tasks = tasks[:max_shards]

    metrics = obs.metrics()
    failures: list[dict] = []
    with obs.get_tracer().span("datagen.generate_corpus", root=str(root)) as run_span:
        pending = tasks
        attempts: dict[tuple[str, int], int] = {}
        wave = 0
        while pending:
            task_by_key = {(task.label, task.index): task for task in pending}
            retry_next: list[_ShardTask] = []
            for outcome in _run_tasks(
                pending, design_factory, num_workers, faults_factory,
                policy.shard_timeout_s,
            ):
                if outcome.get("deferred"):
                    report.shards_deferred += 1
                    continue
                if outcome.get("failed"):
                    key = (outcome["label"], outcome["index"])
                    attempts[key] = attempts.get(key, 0) + 1
                    metrics.counter("faults.errors").inc()
                    if attempts[key] >= policy.retry.max_attempts:
                        metrics.counter("faults.exhausted").inc()
                        report.shards_failed += 1
                        failures.append(
                            {
                                "label": outcome["label"],
                                "index": outcome["index"],
                                "error": outcome["error"],
                                "attempts": attempts[key],
                            }
                        )
                    else:
                        metrics.counter("faults.retries").inc()
                        retry_next.append(task_by_key[key])
                    continue
                record = ShardRecord.from_dict(outcome["record"])
                _record_completion(
                    store, manifest, record, outcome.get("quarantined", ())
                )
                report.shards_generated += 1
                report.samples_generated += record.num_samples
                report.vectors_quarantined += len(outcome.get("quarantined", ()))
            pending = retry_next
            if pending:
                wave += 1
                delay = policy.retry.delay(wave)
                if delay > 0:
                    time.sleep(delay)
        run_span.set(
            generated=report.shards_generated,
            skipped=report.shards_skipped,
            deferred=report.shards_deferred,
            failed=report.shards_failed,
        )
    report.seconds = run_span.duration_s
    # Resume bookkeeping is parent-side telemetry (workers only count the
    # shards they generated), so pool and inline runs merge identically.
    if report.shards_skipped:
        metrics.counter("datagen.shards_skipped").inc(report.shards_skipped)
    if report.shards_deferred:
        metrics.counter("datagen.shards_deferred").inc(report.shards_deferred)
    if report.shards_regenerated:
        metrics.counter("faults.corrupt_shards").inc(report.shards_regenerated)
    obs.flush_shard()
    _LOG.info(
        "corpus at %s: %d generated, %d skipped, %d deferred, %d failed (%.1f s)",
        root,
        report.shards_generated,
        report.shards_skipped,
        report.shards_deferred,
        report.shards_failed,
        report.seconds,
    )
    if failures:
        error = ShardFailedError(failures)
        error.report = report
        raise error
    return report


def _shard_verifies(
    store: ShardStore, manifest: CorpusManifest, label: str, index: int
) -> bool:
    """Whether a resumed shard's file still matches its manifest hash."""
    expected = manifest.get(label, index).content_hash
    try:
        shard = store.read_shard(label, index, expected_hash=expected)
    except CorruptShardError as error:
        _LOG.warning("resumed shard failed verification: %s", error)
        return False
    actual = dataset_content_hash(shard)
    if actual != expected:
        _LOG.warning(
            "resumed shard %s:%d hash mismatch (manifest %s…, file %s…); regenerating",
            label, index, expected[:12], actual[:12],
        )
        return False
    return True


def _record_completion(
    store: ShardStore,
    manifest: CorpusManifest,
    record: ShardRecord,
    quarantined: Sequence[dict] = (),
) -> None:
    """Add one finished shard (and its quarantine entries) to the manifest.

    The on-disk manifest is merged in first, so two concurrent runs (each
    generating the shards the other deferred) converge instead of the last
    saver erasing the other's records — quarantine entries merge the same
    way (deduplicated by vector).
    """
    try:
        on_disk = store.load_manifest()
    except (OSError, ValueError):
        on_disk = None
    if on_disk is not None and on_disk.config_hash == manifest.config_hash:
        for existing in on_disk.records:
            if manifest.get(existing.label, existing.index) is None:
                manifest.add(existing)
        for entry in on_disk.quarantined:
            manifest.add_quarantine(entry)
    manifest.add(record)
    for entry in quarantined:
        manifest.add_quarantine(entry)
    store.save_manifest(manifest)


def _run_tasks(
    tasks: Sequence[_ShardTask],
    design_factory: DesignFactory,
    num_workers: Optional[int],
    faults_factory: Optional[FaultsFactory] = None,
    shard_timeout_s: Optional[float] = None,
):
    """Yield shard outcomes, from a worker pool when possible, else inline.

    Shard-level errors never propagate from here: workers run
    :func:`_generate_shard_safe`, so an exception becomes a ``failed``
    outcome the caller's retry loop handles.  ``shard_timeout_s`` is
    enforced parent-side per pooled shard — a late result counts as a
    failed attempt (``faults.shard_timeouts``) while the stuck worker's
    claim keeps fencing the shard until the worker actually exits.
    """
    completed = 0
    if num_workers is None:
        num_workers = min(len(tasks), os.cpu_count() or 1)
    if num_workers and num_workers > 0:
        try:
            pool = ProcessPoolExecutor(
                max_workers=num_workers,
                initializer=_worker_init,
                initargs=(design_factory, faults_factory),
            )
        except (OSError, PermissionError, NotImplementedError) as error:
            _LOG.warning("cannot create process pool (%s); generating inline", error)
        else:
            with pool:
                try:
                    futures = [
                        pool.submit(_generate_shard_safe, task) for task in tasks
                    ]
                    for task, future in zip(tasks, futures):
                        try:
                            outcome = future.result(timeout=shard_timeout_s)
                        except FutureTimeoutError:
                            future.cancel()
                            obs.metrics().counter("faults.shard_timeouts").inc()
                            outcome = {
                                "failed": True,
                                "label": task.label,
                                "index": task.index,
                                "error": (
                                    f"TimeoutError('shard exceeded "
                                    f"{shard_timeout_s}s deadline')"
                                ),
                            }
                        completed += 1
                        yield outcome
                    return
                except (BrokenProcessPool, pickle.PicklingError) as error:
                    # Worker startup/transport failure, not a shard failure —
                    # shard exceptions are already failure outcomes.  Shards
                    # already yielded stay done (the caller recorded them);
                    # only the remainder falls back to inline execution.
                    # Hard-killed workers never ran their release(), so drop
                    # their dead-pid claims before retrying inline —
                    # otherwise the fallback would defer exactly the shards
                    # it is meant to finish.
                    _LOG.warning(
                        "process pool broke after %d/%d shards (%s); "
                        "generating the rest inline",
                        completed,
                        len(tasks),
                        error,
                    )
                    if tasks:
                        ShardStore(tasks[0].root).clear_stale_claims()
    _worker_init(design_factory, faults_factory)
    for task in tasks[completed:]:
        yield _generate_shard_safe(task)
