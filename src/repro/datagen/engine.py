"""The corpus generation engine: shard tasks, worker pool, resume logic.

:func:`generate_corpus` turns a :class:`~repro.datagen.spec.CorpusSpec` into
on-disk shards.  The unit of work is one *shard* — a contiguous slice of one
design's vector suite — and shards are independent by construction, so they
fan out across a :class:`~concurrent.futures.ProcessPoolExecutor` exactly
like the serving sweep fans out scenarios: design factory *references* cross
the process boundary, each worker builds its designs and transient
factorisations once, and every shard is written atomically with its content
hash recorded in the manifest.

Determinism contract: vector ``i`` of a design is generated from the ``i``-th
generator of ``spawn_rngs(seed, num_vectors)`` — the exact derivation
:meth:`~repro.workloads.vectors.TestVectorGenerator.generate_suite` uses —
and every simulation step is deterministic.  A corpus is therefore a pure,
bit-reproducible function of its spec (modulo wall-clock ``sim_runtime``
bookkeeping, which the content hashes exclude), no matter how the run was
parallelised, interrupted or resumed; against the sequential per-vector
pipeline it agrees to solver rounding (see ``docs/data-pipeline.md``).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import obs
from repro.datagen.shards import CorpusManifest, ShardRecord, ShardStore
from repro.datagen.spec import CorpusDesignSpec, CorpusSpec
from repro.pdn.designs import Design, design_from_name
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.transient import TransientOptions
from repro.utils import get_logger
from repro.utils.random import spawn_rngs
from repro.workloads.dataset import build_dataset
from repro.workloads.scenarios import build_scenario_trace
from repro.workloads.vectors import TestVectorGenerator

_LOG = get_logger("datagen.engine")

#: Signature of a design factory: reference string -> Design.
DesignFactory = Callable[[str], Design]


@dataclass(frozen=True)
class _ShardTask:
    """One shard's worth of generation work (picklable, self-contained)."""

    root: str
    label: str
    index: int
    design_spec: CorpusDesignSpec
    sim_batch_size: int
    solver_method: str
    integration_method: str
    initial_state: str


@dataclass
class GenerationReport:
    """Outcome of one :func:`generate_corpus` call.

    Attributes
    ----------
    root:
        The corpus root directory.
    shards_total:
        Shard count of the whole spec.
    shards_generated:
        Shards written by *this* run.
    shards_skipped:
        Shards already complete in the manifest (resume hits).
    shards_deferred:
        Shards left ungenerated — claimed by a concurrent run, or cut off
        by ``max_shards``.
    samples_generated:
        Vectors simulated by this run.
    seconds:
        Wall-clock time of this run.
    manifest:
        The manifest after this run.
    """

    root: Path
    shards_total: int
    shards_generated: int = 0
    shards_skipped: int = 0
    shards_deferred: int = 0
    samples_generated: int = 0
    seconds: float = 0.0
    manifest: Optional[CorpusManifest] = None

    @property
    def complete(self) -> bool:
        """Whether every shard of the spec is now complete."""
        return self.manifest is not None and all(
            self.manifest.is_complete(design.label, index)
            for design in self.manifest.spec.designs
            for index in range(design.num_shards)
        )

    def as_dict(self) -> dict:
        """Flat summary for logs and reports."""
        return {
            "root": str(self.root),
            "shards_total": self.shards_total,
            "shards_generated": self.shards_generated,
            "shards_skipped": self.shards_skipped,
            "shards_deferred": self.shards_deferred,
            "samples_generated": self.samples_generated,
            "seconds": self.seconds,
            "complete": self.complete,
        }


# Per-worker state, initialised once per process by _worker_init.
_WORKER_FACTORY: Optional[DesignFactory] = None
_WORKER_DESIGNS: dict[str, Design] = {}
_WORKER_ANALYSES: dict[tuple, DynamicNoiseAnalysis] = {}


def _worker_init(factory: DesignFactory) -> None:
    """Process-pool initializer: install the design factory, clear caches."""
    global _WORKER_FACTORY
    _WORKER_FACTORY = factory
    _WORKER_DESIGNS.clear()
    _WORKER_ANALYSES.clear()


def _worker_design(reference: str) -> Design:
    """Build (or fetch) this worker's instance of a design."""
    assert _WORKER_FACTORY is not None
    design = _WORKER_DESIGNS.get(reference)
    if design is None:
        design = _WORKER_FACTORY(reference)
        _WORKER_DESIGNS[reference] = design
    return design


def _worker_analysis(task: _ShardTask, design: Design) -> DynamicNoiseAnalysis:
    """Build (or fetch) the cached transient analysis for a task's options."""
    key = (
        task.design_spec.design,
        task.design_spec.dt,
        task.integration_method,
        task.initial_state,
        task.solver_method,
    )
    analysis = _WORKER_ANALYSES.get(key)
    if analysis is None:
        options = TransientOptions(
            method=task.integration_method,
            initial_state=task.initial_state,
            store_waveform=False,
            solver_method=task.solver_method,
        )
        analysis = DynamicNoiseAnalysis(design, task.design_spec.dt, options)
        _WORKER_ANALYSES[key] = analysis
    return analysis


def shard_vectors(design: Design, spec: CorpusDesignSpec, index: int):
    """Generate the test vectors of one shard, reproducibly.

    The seeds of the *whole* suite are derived first and then sliced, so a
    shard's vectors are identical to the same positions of
    :meth:`~repro.workloads.vectors.TestVectorGenerator.generate_suite`
    regardless of shard size or generation order.  Vector indices the spec's
    ``scenario_mix`` claims (see :meth:`~repro.datagen.spec.CorpusDesignSpec.
    scenario_assignment`) are built as scenario traces from the same
    per-vector generator, so blending scenarios in changes neither the other
    vectors nor the resume semantics.

    Parameters
    ----------
    design:
        The design the vectors excite.
    spec:
        The design's corpus slice.
    index:
        Shard index.

    Returns
    -------
    List of :class:`~repro.sim.waveform.CurrentTrace`, one per vector of the
    shard, named ``<design>-v<global index>``.
    """
    start, stop = spec.shard_bounds(index)
    rngs = spawn_rngs(spec.seed, spec.num_vectors)[start:stop]
    generator = TestVectorGenerator(design, spec.vector_config())
    assignment = spec.scenario_assignment()
    traces = []
    for global_index, rng in zip(range(start, stop), rngs):
        name = f"{design.name}-v{global_index:04d}"
        scenario = assignment.get(global_index)
        if scenario is None:
            traces.append(generator.generate(rng, name=name))
        else:
            traces.append(
                build_scenario_trace(
                    scenario, design,
                    num_steps=spec.num_steps, dt=spec.dt, seed=rng, name=name,
                )
            )
    return traces


def _generate_shard(task: _ShardTask) -> dict:
    """Generate one shard inside a worker; returns manifest-record fields.

    Claims the shard first; when another live run holds the claim the task
    returns a ``deferred`` marker instead of fighting over the file.
    """
    store = ShardStore(task.root)
    if not store.claim(task.label, task.index):
        return {"deferred": True, "label": task.label, "index": task.index}
    try:
        tracer = obs.get_tracer()
        with tracer.span("datagen.shard", label=task.label, index=task.index) as shard_span:
            spec = task.design_spec
            design = _worker_design(spec.design)
            analysis = _worker_analysis(task, design)
            traces = shard_vectors(design, spec, task.index)
            with tracer.span("datagen.simulate") as sim_span:
                dataset = build_dataset(
                    design,
                    traces,
                    compression_rate=spec.compression_rate,
                    rate_step=spec.rate_step,
                    analysis=analysis,
                    sim_batch_size=task.sim_batch_size,
                )
            content_hash = store.write_shard(task.label, task.index, dataset)
        start, stop = spec.shard_bounds(task.index)
        record = ShardRecord(
            label=task.label,
            index=task.index,
            start=start,
            stop=stop,
            path=store.shard_relpath(task.label, task.index),
            num_samples=len(dataset),
            content_hash=content_hash,
            seed=spec.seed,
        )
        # Worker-side telemetry: shard throughput counters plus the per-shard
        # solver-time histogram, flushed into this process's event shard so a
        # pool run reports exactly what the same run inline would.
        metrics = obs.metrics()
        metrics.counter("datagen.shards_generated").inc()
        metrics.counter("datagen.vectors_generated").inc(len(dataset))
        metrics.histogram("datagen.shard_seconds").observe(shard_span.duration_s)
        metrics.histogram("datagen.sim_seconds").observe(sim_span.duration_s)
        obs.flush_shard()
        return {"deferred": False, "record": record.to_dict(), "pid": os.getpid()}
    finally:
        store.release(task.label, task.index)


def generate_corpus(
    spec: CorpusSpec,
    root: Union[str, Path],
    num_workers: Optional[int] = None,
    design_factory: DesignFactory = design_from_name,
    resume: bool = True,
    max_shards: Optional[int] = None,
) -> GenerationReport:
    """Generate (or finish) a training corpus on disk.

    The call is idempotent and resumable: shards whose manifest records are
    complete (and whose files exist) are skipped, everything else is
    (re)generated, and the manifest is re-saved after every finished shard —
    killing the run at any point loses at most the shards in flight.

    Parameters
    ----------
    spec:
        What to generate.  A resumed root must carry the same
        :meth:`~repro.datagen.spec.CorpusSpec.config_hash`.
    root:
        Corpus root directory (created on demand).
    num_workers:
        Worker process count; ``0`` runs inline in this process (the lockstep
        block solver still applies), ``None`` picks
        ``min(pending shards, cpu_count)``.  Platforms that refuse to spawn
        processes degrade to inline execution.
    design_factory:
        Top-level callable turning a spec's ``design`` reference into a
        :class:`~repro.pdn.designs.Design` inside each worker (must be
        picklable by reference).
    resume:
        ``False`` regenerates every shard from scratch, ignoring (and
        overwriting) any previous manifest and shards.
    max_shards:
        Stop after generating this many shards (testing/ops knob — it is
        how the resume tests simulate an interrupted run).

    Returns
    -------
    A :class:`GenerationReport`; ``report.complete`` says whether the corpus
    is now fully generated.

    Raises
    ------
    ValueError
        When resuming a root whose manifest hash does not match ``spec``.
    """
    root = Path(root)
    store = ShardStore(root)

    manifest = store.load_manifest() if resume else None
    if manifest is not None and manifest.config_hash != spec.config_hash():
        raise ValueError(
            f"corpus at {root} was generated from a different spec "
            f"(manifest hash {manifest.config_hash[:12]}…, "
            f"spec hash {spec.config_hash()[:12]}…); "
            "use a fresh root or resume=False to regenerate"
        )
    if manifest is None:
        # Only a fresh manifest is written here; a resumed one is already on
        # disk, and rewriting our possibly stale snapshot could erase a
        # record a concurrent run lands in between (completions go through
        # the read-merge-save of _record_completion instead).
        manifest = CorpusManifest(spec)
        store.save_manifest(manifest)
    store.clear_stale_claims()

    report = GenerationReport(root=root, shards_total=spec.total_shards, manifest=manifest)
    tasks: list[_ShardTask] = []
    for design in spec.designs:
        for index in range(design.num_shards):
            if (
                resume
                and manifest.is_complete(design.label, index)
                and store.has_shard(design.label, index)
            ):
                report.shards_skipped += 1
                continue
            tasks.append(
                _ShardTask(
                    root=str(root),
                    label=design.label,
                    index=index,
                    design_spec=design,
                    sim_batch_size=spec.sim_batch_size,
                    solver_method=spec.solver_method,
                    integration_method=spec.integration_method,
                    initial_state=spec.initial_state,
                )
            )
    if max_shards is not None and len(tasks) > max_shards:
        report.shards_deferred += len(tasks) - max_shards
        tasks = tasks[:max_shards]

    with obs.get_tracer().span("datagen.generate_corpus", root=str(root)) as run_span:
        if tasks:
            for outcome in _run_tasks(tasks, design_factory, num_workers):
                if outcome.get("deferred"):
                    report.shards_deferred += 1
                    continue
                record = ShardRecord.from_dict(outcome["record"])
                _record_completion(store, manifest, record)
                report.shards_generated += 1
                report.samples_generated += record.num_samples
        run_span.set(
            generated=report.shards_generated,
            skipped=report.shards_skipped,
            deferred=report.shards_deferred,
        )
    report.seconds = run_span.duration_s
    # Resume bookkeeping is parent-side telemetry (workers only count the
    # shards they generated), so pool and inline runs merge identically.
    metrics = obs.metrics()
    if report.shards_skipped:
        metrics.counter("datagen.shards_skipped").inc(report.shards_skipped)
    if report.shards_deferred:
        metrics.counter("datagen.shards_deferred").inc(report.shards_deferred)
    obs.flush_shard()
    _LOG.info(
        "corpus at %s: %d generated, %d skipped, %d deferred (%.1f s)",
        root,
        report.shards_generated,
        report.shards_skipped,
        report.shards_deferred,
        report.seconds,
    )
    return report


def _record_completion(
    store: ShardStore, manifest: CorpusManifest, record: ShardRecord
) -> None:
    """Add one finished shard to the manifest and persist it.

    The on-disk manifest is merged in first, so two concurrent runs (each
    generating the shards the other deferred) converge instead of the last
    saver erasing the other's records.
    """
    try:
        on_disk = store.load_manifest()
    except (OSError, ValueError):
        on_disk = None
    if on_disk is not None and on_disk.config_hash == manifest.config_hash:
        for existing in on_disk.records:
            if manifest.get(existing.label, existing.index) is None:
                manifest.add(existing)
    manifest.add(record)
    store.save_manifest(manifest)


def _run_tasks(
    tasks: Sequence[_ShardTask],
    design_factory: DesignFactory,
    num_workers: Optional[int],
):
    """Yield shard outcomes, from a worker pool when possible, else inline."""
    completed = 0
    if num_workers is None:
        num_workers = min(len(tasks), os.cpu_count() or 1)
    if num_workers and num_workers > 0:
        try:
            pool = ProcessPoolExecutor(
                max_workers=num_workers,
                initializer=_worker_init,
                initargs=(design_factory,),
            )
        except (OSError, PermissionError, NotImplementedError) as error:
            _LOG.warning("cannot create process pool (%s); generating inline", error)
        else:
            with pool:
                try:
                    for outcome in pool.map(_generate_shard, tasks):
                        completed += 1
                        yield outcome
                    return
                except (BrokenProcessPool, pickle.PicklingError) as error:
                    # Worker startup/transport failure, not a shard failure —
                    # shard exceptions propagate unchanged.  Shards already
                    # yielded stay done (the caller recorded them); only the
                    # remainder falls back to inline execution.  Hard-killed
                    # workers never ran their release(), so drop their
                    # dead-pid claims before retrying inline — otherwise the
                    # fallback would defer exactly the shards it is meant to
                    # finish.
                    _LOG.warning(
                        "process pool broke after %d/%d shards (%s); "
                        "generating the rest inline",
                        completed,
                        len(tasks),
                        error,
                    )
                    if tasks:
                        ShardStore(tasks[0].root).clear_stale_claims()
    _worker_init(design_factory)
    for task in tasks[completed:]:
        yield _generate_shard(task)
