"""Span tracing: nested timed contexts with attributes.

A *span* is one timed region of work — ``with tracer.span("datagen.shard",
design="small")`` — recorded with its duration, its attributes, and its
position in the span tree (parent/child links via per-span ids and a
thread-local parent stack).  Spans replace the bare :class:`repro.utils.Timer`
instances that used to be scattered through ``eval.protocol``, ``eval.sweep``
and the baselines: the span still *exposes* its duration (``span.duration_s``
stays valid after the ``with`` block exits, exactly like ``Timer.last``), so
call sites keep reading their own timings while the tracer records them
centrally.

Spans always measure — entering a span on a disabled tracer still costs one
``perf_counter`` pair so ``duration_s`` is usable — but only an **enabled**
tracer retains records.  The retained list is capped (:attr:`SpanTracer.cap`)
with a dropped-span counter, so a long campaign cannot grow memory without
bound.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterator, Optional

__all__ = ["Span", "SpanTracer", "DEFAULT_SPAN_CAP"]

#: Default maximum number of span records a tracer retains.
DEFAULT_SPAN_CAP = 100_000


class Span:
    """One timed region of work; usable as a context manager.

    The object stays meaningful after the ``with`` block exits:
    ``duration_s`` holds the measured wall-clock duration and ``attributes``
    the (possibly updated) attribute mapping.  Create spans through
    :meth:`SpanTracer.span`, not directly.
    """

    __slots__ = (
        "name", "attributes", "span_id", "parent_id",
        "started_s", "duration_s", "_tracer",
    )

    def __init__(self, tracer: "SpanTracer", name: str, attributes: dict):
        self.name = name
        self.attributes = attributes
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.started_s = 0.0
        self.duration_s = 0.0
        self._tracer = tracer

    def set(self, **attributes) -> "Span":
        """Attach or update attributes mid-span; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self.started_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self.started_s
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)

    def to_dict(self) -> dict:
        """JSON-serialisable span record (id, parent, name, duration, attrs)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }


class SpanTracer:
    """Factory and recorder of :class:`Span` objects.

    Parameters
    ----------
    enabled:
        A disabled tracer hands out spans that measure (``duration_s`` works)
        but records nothing — the per-span overhead is two ``perf_counter``
        calls and one thread-local stack push/pop.
    cap:
        Maximum retained span records; further spans are counted in
        :attr:`dropped` instead of stored.

    Thread behaviour: the parent stack is thread-local, so spans nest
    correctly per thread; the record list is appended under a lock.
    """

    def __init__(self, enabled: bool = True, cap: int = DEFAULT_SPAN_CAP):
        self.enabled = bool(enabled)
        self.cap = int(cap)
        self.dropped = 0
        self._records: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    def span(self, name: str, **attributes) -> Span:
        """A new span called ``name``; use as ``with tracer.span(...) as s:``."""
        return Span(self, name, attributes)

    def record(self, name: str, duration_s: float, parent_id: Optional[int] = None, **attributes) -> None:
        """Record an externally measured duration as a complete span.

        For call sites that already hold a measured duration (e.g. a worker
        result dict carrying solver seconds) and need it in the span stream
        without re-timing the work.
        """
        if not self.enabled:
            return
        record = {
            "span_id": next(self._ids),
            "parent_id": parent_id if parent_id is not None else self._current_id(),
            "name": name,
            "duration_s": float(duration_s),
            "attributes": attributes,
        }
        self._append(record)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1] if stack else None
        span.span_id = next(self._ids)
        stack.append(span.span_id)

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        if self.enabled:
            self._append(span.to_dict())

    def _append(self, record: dict) -> None:
        with self._lock:
            if len(self._records) >= self.cap:
                self.dropped += 1
            else:
                self._records.append(record)

    def records(self) -> list[dict]:
        """Snapshot (copy) of the retained span records, in completion order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        """Number of retained span records."""
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        """Iterate a snapshot of the retained span records."""
        return iter(self.records())

    def clear(self) -> None:
        """Drop all retained records and reset the dropped counter."""
        with self._lock:
            self._records.clear()
            self.dropped = 0
