"""Metric instruments: counters, gauges, fixed-bucket latency histograms.

Three instrument kinds cover every quantity the stack reports:

* :class:`Counter` — a monotonically increasing event count (requests served,
  shards generated, cache hits).
* :class:`Gauge` — a sampled level (queue depth, batch size, gradient norm);
  tracks the last, extreme and count of the samples, not their history.
* :class:`LatencyHistogram` — positive measurements (latencies, throughputs)
  bucketed into **fixed log-spaced buckets** shared by every process of a
  run, so histograms merge exactly (bucket-wise addition) across worker
  shards and percentiles come from cumulative bucket counts instead of
  re-sorting raw sample lists.

All instruments live in a :class:`MetricsRegistry`.  A disabled registry
(:data:`NULL_REGISTRY`) hands out shared no-op instruments whose methods do
nothing — the cost of instrumentation at a disabled call site is one Python
call, which is what lets the hot paths stay instrumented unconditionally
(gated by ``benchmarks/bench_obs.py``).

Instruments are intentionally lock-free on the hot path: an increment is a
handful of interpreter operations protected by the GIL.  Call sites that
need exact counts under concurrent writers (the screening service) update
instruments under their own lock, exactly as they already did for their
counter bags; unsynchronised concurrent updates only risk losing individual
increments, never corrupting an instrument.
"""

from __future__ import annotations

from bisect import bisect_right
from threading import Lock
from typing import Iterable, Iterator, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS_PER_DECADE",
    "DEFAULT_LOW",
    "DEFAULT_HIGH",
]

#: Default histogram resolution: buckets per decade of the value range.
DEFAULT_BUCKETS_PER_DECADE = 24

#: Default lower edge of the histogram range (seconds / generic units).
DEFAULT_LOW = 1e-9

#: Default upper edge of the histogram range.  The wide span (1 ns .. 1 M)
#: lets one bucket layout serve latencies, shard times and throughputs.
DEFAULT_HIGH = 1e6

_BOUNDS_CACHE: dict[tuple[float, float, int], tuple[float, ...]] = {}


def _bucket_bounds(low: float, high: float, per_decade: int) -> tuple[float, ...]:
    """Log-spaced bucket edges from ``low`` to ``high`` (inclusive), cached."""
    key = (low, high, per_decade)
    bounds = _BOUNDS_CACHE.get(key)
    if bounds is None:
        import math

        decades = math.log10(high / low)
        count = int(round(decades * per_decade))
        bounds = tuple(low * 10.0 ** (i / per_decade) for i in range(count + 1))
        _BOUNDS_CACHE[key] = bounds
    return bounds


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (``{"type": "counter", "value": ...}``)."""
        return {"type": "counter", "value": self.value}

    def merge(self, payload: dict) -> None:
        """Fold another counter's :meth:`to_dict` snapshot into this one."""
        self.value += int(payload["value"])


class Gauge:
    """A sampled level: tracks last / min / max / count of ``set()`` calls."""

    __slots__ = ("name", "last", "min", "max", "count")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.count = 0

    def set(self, value: float) -> None:
        """Record one sample of the level."""
        value = float(value)
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the gauge statistics."""
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "count": self.count,
        }

    def merge(self, payload: dict) -> None:
        """Fold another gauge's snapshot in (extremes combine; last wins by
        merge order, which the deterministic shard ordering fixes)."""
        if not payload["count"]:
            return
        if not self.count:
            self.min = float("inf")
            self.max = float("-inf")
        self.last = float(payload["last"])
        self.min = min(self.min, float(payload["min"]))
        self.max = max(self.max, float(payload["max"]))
        self.count += int(payload["count"])


class LatencyHistogram:
    """Fixed-bucket log-spaced histogram with percentile extraction.

    Parameters
    ----------
    name:
        Metric name.
    low / high / buckets_per_decade:
        Bucket layout.  All histograms sharing a name across a run **must**
        share a layout or merging raises; the defaults cover 1 ns .. 1e6 at
        ~10% relative bucket width, which bounds the percentile error.

    Exact ``count`` / ``total`` / ``min`` / ``max`` are kept alongside the
    buckets, so means and extremes are exact and only intermediate
    percentiles carry the bucket-resolution error.
    """

    __slots__ = (
        "name", "low", "high", "buckets_per_decade",
        "_bounds", "_counts", "underflow", "overflow",
        "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str,
        low: float = DEFAULT_LOW,
        high: float = DEFAULT_HIGH,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ):
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.buckets_per_decade = int(buckets_per_decade)
        self._bounds = _bucket_bounds(self.low, self.high, self.buckets_per_decade)
        self._counts = [0] * (len(self._bounds) - 1)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one measurement (non-negative; the hot-path entry point)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self._counts[bisect_right(self._bounds, value) - 1] += 1

    @property
    def mean(self) -> float:
        """Exact mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0..100) from the bucket counts.

        The returned value is linearly interpolated inside the bucket that
        contains the requested rank, so the relative error is bounded by the
        bucket width (~10% at the default resolution).  The extremes are
        exact: ranks falling into the first/last occupied position clamp to
        the recorded ``min`` / ``max``.
        """
        if not self.count:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = q / 100.0 * self.count
        seen = self.underflow
        if rank <= seen:  # inside the underflow bucket: clamp to exact min
            return self.min
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            if rank <= seen + bucket_count:
                lo = max(self._bounds[index], self.min)
                hi = min(self._bounds[index + 1], self.max)
                fraction = (rank - seen) / bucket_count
                return lo + fraction * (hi - lo)
            seen += bucket_count
        return self.max

    def percentiles(self, qs: Sequence[float] = (50.0, 95.0, 99.0)) -> dict:
        """Mapping ``{"p50": ..., "p95": ..., ...}`` for the requested ranks."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def merge(self, other: Union["LatencyHistogram", dict]) -> None:
        """Fold another histogram (object or :meth:`to_dict` snapshot) in.

        Raises
        ------
        ValueError
            When the bucket layouts differ — merged histograms must share
            their edges exactly.
        """
        payload = other.to_dict() if isinstance(other, LatencyHistogram) else other
        layout = (payload["low"], payload["high"], payload["buckets_per_decade"])
        if layout != (self.low, self.high, self.buckets_per_decade):
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layout "
                f"{layout} != {(self.low, self.high, self.buckets_per_decade)}"
            )
        if not payload["count"]:
            return
        for index, bucket_count in payload["buckets"]:
            self._counts[int(index)] += int(bucket_count)
        self.underflow += int(payload["underflow"])
        self.overflow += int(payload["overflow"])
        self.count += int(payload["count"])
        self.total += float(payload["total"])
        self.min = min(self.min, float(payload["min"]))
        self.max = max(self.max, float(payload["max"]))

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (sparse ``[index, count]`` buckets)."""
        return {
            "type": "histogram",
            "low": self.low,
            "high": self.high,
            "buckets_per_decade": self.buckets_per_decade,
            "buckets": [
                [index, count] for index, count in enumerate(self._counts) if count
            ],
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def summary(self) -> dict:
        """Compact rendering payload: count, mean, p50/p95/p99, min, max."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            **self.percentiles(),
            "min": self.min,
            "max": self.max,
        }


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        """Do nothing (disabled instrumentation)."""

    def to_dict(self) -> dict:
        """Empty counter snapshot."""
        return {"type": "counter", "value": 0}


class _NullGauge:
    """Shared no-op gauge handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    last = 0.0
    count = 0

    def set(self, value: float) -> None:
        """Do nothing (disabled instrumentation)."""


class _NullHistogram:
    """Shared no-op histogram handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:
        """Do nothing (disabled instrumentation)."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name-keyed home of every instrument of one process (or component).

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    under a name creates the instrument, later calls return the same object,
    so call sites can resolve instruments lazily without coordination.
    Creation is locked; instrument *updates* are lock-free (see the module
    docstring).

    Parameters
    ----------
    enabled:
        ``False`` turns the registry into a null registry: every lookup
        returns a shared no-op instrument and ``snapshot()`` is empty.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = Lock()
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(name, Gauge)

    def histogram(
        self,
        name: str,
        low: float = DEFAULT_LOW,
        high: float = DEFAULT_HIGH,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> LatencyHistogram:
        """Get or create the histogram called ``name`` (layout set on first use)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(name, LatencyHistogram, low, high, buckets_per_decade)

    def get(self, name: str) -> Optional[object]:
        """The instrument called ``name``, or ``None`` when absent."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """Deterministic ``{name: instrument.to_dict()}`` mapping, name-sorted."""
        return {name: self._instruments[name].to_dict() for name in self.names()}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker shard) into this registry."""
        for name in sorted(snapshot):
            payload = snapshot[name]
            kind = payload.get("type")
            if kind == "counter":
                self.counter(name).merge(payload)
            elif kind == "gauge":
                self.gauge(name).merge(payload)
            elif kind == "histogram":
                self.histogram(
                    name,
                    low=payload["low"],
                    high=payload["high"],
                    buckets_per_decade=payload["buckets_per_decade"],
                ).merge(payload)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def __iter__(self) -> Iterator[tuple[str, object]]:
        """Iterate ``(name, instrument)`` pairs in name order."""
        for name in self.names():
            yield name, self._instruments[name]


#: The registry handed out when observability is disabled: every instrument
#: lookup returns a shared no-op object.
NULL_REGISTRY = MetricsRegistry(enabled=False)
