"""Process-pool-safe event sink: JSONL shards merged into one run report.

The sink follows the corpus-manifest conventions from :mod:`repro.datagen`:

* every process of a run (the parent and each pool worker) flushes its
  telemetry into its **own** JSONL shard ``events-<label>.jsonl`` inside the
  run directory, written atomically (temp file + replace) so a crash or a
  concurrent reader never observes a torn shard;
* a shard is **cumulative** — re-flushing a label overwrites that label's
  shard with the process's complete current state, so flushing is idempotent
  and workers can flush after every task without an append protocol;
* the parent merges shards **deterministically**: shards are read in sorted
  filename order, counters and histograms combine by addition, spans are
  grouped per shard label, and the merged ``run_report.json`` is rendered as
  canonical JSON (sorted keys) — the same inputs always produce a
  byte-identical report, which the tier-1 suite asserts pool-vs-inline;
* the report is stamped with a ``config_hash`` (sha256 of the canonical JSON
  of the run configuration) and the git revision, like every other resumable
  artefact in the repository.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer
from repro.utils.artifacts import atomic_write_text, git_revision

__all__ = [
    "SHARD_PREFIX",
    "RUN_REPORT_NAME",
    "REPORT_VERSION",
    "config_hash",
    "shard_path",
    "write_event_shard",
    "read_event_shard",
    "merge_shards",
    "build_run_report",
    "write_run_report",
    "load_run_report",
]

#: Filename prefix of per-process event shards inside a run directory.
SHARD_PREFIX = "events-"

#: Filename of the merged run report inside a run directory.
RUN_REPORT_NAME = "run_report.json"

#: Schema version stamped into every run report.
REPORT_VERSION = 1


def config_hash(config: Optional[dict]) -> str:
    """sha256 over the canonical JSON of the run configuration.

    Mirrors :meth:`repro.datagen.spec.CorpusSpec.config_hash` /
    :meth:`repro.eval.config.EvalConfig.config_hash`: sorted keys, compact
    separators.  ``None`` hashes the empty configuration, so every report
    carries *some* stamp.
    """
    canonical = json.dumps(config or {}, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def shard_path(directory: Union[str, Path], label: str) -> Path:
    """Path of the event shard a process flushing as ``label`` writes."""
    return Path(directory) / f"{SHARD_PREFIX}{label}.jsonl"


def write_event_shard(
    directory: Union[str, Path],
    label: str,
    metrics: MetricsRegistry,
    spans: Union[SpanTracer, Sequence[dict], None] = None,
) -> Path:
    """Atomically (over)write the event shard for ``label``.

    The shard holds the process's *complete* current telemetry: one header
    line, one ``metric`` line per instrument (name-sorted), one ``span``
    line per retained span record.  Because the shard is cumulative,
    re-flushing is idempotent — the merge never double-counts.

    Parameters
    ----------
    directory:
        Run directory (created if missing).
    label:
        Shard label; the parent process uses ``"main"``, pool workers use
        ``w<pid>``.
    metrics:
        The registry whose :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
        to persist.
    spans:
        A :class:`~repro.obs.trace.SpanTracer` (its records are taken) or an
        explicit sequence of span record dicts; ``None`` writes no spans.

    Returns
    -------
    The shard path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(spans, SpanTracer):
        span_records = spans.records()
    else:
        span_records = list(spans) if spans is not None else []
    lines = [json.dumps({"kind": "shard", "label": label}, sort_keys=True)]
    snapshot = metrics.snapshot()
    for name in sorted(snapshot):
        lines.append(
            json.dumps(
                {"kind": "metric", "name": name, **snapshot[name]}, sort_keys=True
            )
        )
    for record in span_records:
        lines.append(json.dumps({"kind": "span", **record}, sort_keys=True))
    path = shard_path(directory, label)
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def read_event_shard(path: Union[str, Path]) -> dict:
    """Parse one shard into ``{"label", "metrics", "spans"}``.

    Raises
    ------
    ValueError
        On a malformed shard (missing header, unknown event kind).
    """
    path = Path(path)
    label: Optional[str] = None
    metrics: dict[str, dict] = {}
    spans: list[dict] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.pop("kind", None)
            if kind == "shard":
                label = event["label"]
            elif kind == "metric":
                metrics[event.pop("name")] = event
            elif kind == "span":
                spans.append(event)
            else:
                raise ValueError(f"{path}:{line_number}: unknown event kind {kind!r}")
    if label is None:
        raise ValueError(f"{path}: missing shard header line")
    return {"label": label, "metrics": metrics, "spans": spans}


def merge_shards(directory: Union[str, Path]) -> dict:
    """Deterministically merge every ``events-*.jsonl`` shard in a directory.

    Shards are read in sorted filename order; metric instruments combine
    across shards (counters/histograms add, gauge extremes widen) and spans
    stay grouped per shard label.

    Returns
    -------
    ``{"metrics": MetricsRegistry, "spans": {label: [records]},
    "shards": [labels]}`` — the in-memory merge that
    :func:`build_run_report` serialises.
    """
    directory = Path(directory)
    merged = MetricsRegistry()
    spans: dict[str, list[dict]] = {}
    labels: list[str] = []
    for path in sorted(directory.glob(f"{SHARD_PREFIX}*.jsonl")):
        shard = read_event_shard(path)
        labels.append(shard["label"])
        merged.merge_snapshot(shard["metrics"])
        spans.setdefault(shard["label"], []).extend(shard["spans"])
    return {"metrics": merged, "spans": spans, "shards": labels}


def build_run_report(
    directory: Union[str, Path],
    config: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Merge a run directory's shards into the run-report payload.

    Histogram instruments additionally carry a human-oriented ``summary``
    block (count / mean / p50 / p95 / p99 / min / max) alongside their full
    bucket snapshot, so the report is directly readable and still merges
    losslessly downstream.

    Parameters
    ----------
    directory:
        Run directory holding the event shards.
    config:
        The run configuration; hashed into ``config_hash`` and embedded.
    extra:
        Optional additional top-level keys (must not collide with the
        standard ones).
    """
    merged = merge_shards(directory)
    registry: MetricsRegistry = merged["metrics"]
    metrics: dict[str, dict] = {}
    for name, instrument in registry:
        payload = instrument.to_dict()
        if payload.get("type") == "histogram":
            payload["summary"] = instrument.summary()
        metrics[name] = payload
    report = {
        "version": REPORT_VERSION,
        "config_hash": config_hash(config),
        "git_rev": git_revision(),
        "config": config or {},
        "shards": merged["shards"],
        "metrics": metrics,
        "spans": merged["spans"],
    }
    if extra:
        collisions = set(extra) & set(report)
        if collisions:
            raise ValueError(f"extra report keys collide: {sorted(collisions)}")
        report.update(extra)
    return report


def write_run_report(
    directory: Union[str, Path],
    config: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Merge shards and atomically write ``run_report.json``; returns its path.

    The report is rendered as canonical JSON (sorted keys, two-space
    indent): merging the same shards always produces a byte-identical file.
    """
    directory = Path(directory)
    report = build_run_report(directory, config=config, extra=extra)
    path = directory / RUN_REPORT_NAME
    atomic_write_text(path, json.dumps(report, sort_keys=True, indent=2) + "\n")
    return path


def load_run_report(path: Union[str, Path]) -> dict:
    """Load a ``run_report.json`` (accepts the file or its run directory).

    Raises
    ------
    ValueError
        When the payload's ``version`` is newer than this code understands.
    """
    path = Path(path)
    if path.is_dir():
        path = path / RUN_REPORT_NAME
    payload = json.loads(path.read_text())
    version = payload.get("version", 0)
    if version > REPORT_VERSION:
        raise ValueError(
            f"run report {path} has version {version}; this code understands "
            f"≤ {REPORT_VERSION}"
        )
    return payload
