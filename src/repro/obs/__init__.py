"""Unified telemetry: metrics registry, span tracing, run reports.

``repro.obs`` is the observability substrate every layer reports through:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket latency
  histograms with p50/p95/p99 extraction, no-ops when disabled;
* :mod:`repro.obs.trace` — nested ``with span(...)`` contexts producing
  parent/child span records with durations and attributes;
* :mod:`repro.obs.sink` — process-pool-safe JSONL event shards merged
  deterministically into a config-hash-stamped ``run_report.json``.

This package module owns the **process-global context**: one registry and
one tracer per process, resolved lazily.  Instrumented call sites do::

    from repro import obs

    obs.metrics().counter("serving.requests").inc()
    with obs.get_tracer().span("eval.heldout", design=name) as span:
        ...
    elapsed = span.duration_s

and pay one no-op method call when observability is off.

**Enabling.** Observability is off by default.  It turns on when the
``REPRO_OBS`` environment variable is truthy (``1``/``true``/``yes``/``on``)
or :func:`configure`/:func:`start_run` enable it programmatically.
:func:`start_run` additionally exports ``REPRO_OBS`` and ``REPRO_OBS_DIR``
into the environment so pool workers — whether forked or spawned — inherit
the run and flush their own event shards into the run directory.

**Process-pool safety.**  The context is keyed to the creating pid: a
worker that inherited the parent's module state via ``fork`` gets a fresh
registry/tracer on first use instead of double-counting the parent's
telemetry.  Workers flush shards labelled ``w<pid>``; the process that
called :func:`start_run` flushes as ``main`` and merges everything in
:func:`finish_run`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.trace import Span, SpanTracer
from repro.obs.sink import (
    RUN_REPORT_NAME,
    build_run_report,
    config_hash,
    load_run_report,
    merge_shards,
    read_event_shard,
    write_event_shard,
    write_run_report,
)

__all__ = [
    "enabled",
    "configure",
    "reset",
    "metrics",
    "get_tracer",
    "start_run",
    "finish_run",
    "active_run",
    "flush_shard",
    "worker_label",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "SpanTracer",
    "RUN_REPORT_NAME",
    "config_hash",
    "read_event_shard",
    "write_event_shard",
    "merge_shards",
    "build_run_report",
    "write_run_report",
    "load_run_report",
]

#: Environment variable that turns observability on when truthy.
ENV_ENABLED = "REPRO_OBS"

#: Environment variable naming the active run directory for event shards.
ENV_RUN_DIR = "REPRO_OBS_DIR"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

# Process-global context.  _ctx_pid keys the registry/tracer to the process
# that built them, so fork'd pool workers rebuild instead of inheriting (and
# double-counting) the parent's telemetry.
_registry: Optional[MetricsRegistry] = None
_tracer: Optional[SpanTracer] = None
_ctx_pid: Optional[int] = None
_enabled_override: Optional[bool] = None
_run_dir: Optional[Path] = None
_run_config: Optional[dict] = None
_owner_pid: Optional[int] = None


def enabled() -> bool:
    """Whether observability is on for this process.

    Programmatic :func:`configure`/:func:`start_run` settings win; otherwise
    the ``REPRO_OBS`` environment variable decides (truthy values: ``1``,
    ``true``, ``yes``, ``on``; case-insensitive).
    """
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_ENABLED, "").strip().lower() in _TRUTHY


def _ensure_context() -> None:
    """(Re)build the per-process registry/tracer when absent or after fork."""
    global _registry, _tracer, _ctx_pid
    pid = os.getpid()
    if _registry is None or _ctx_pid != pid:
        on = enabled()
        _registry = MetricsRegistry() if on else NULL_REGISTRY
        _tracer = SpanTracer(enabled=on)
        _ctx_pid = pid


def metrics() -> MetricsRegistry:
    """The process-global metrics registry (a null registry when disabled)."""
    _ensure_context()
    return _registry


def get_tracer() -> SpanTracer:
    """The process-global span tracer (non-recording when disabled)."""
    _ensure_context()
    return _tracer


def configure(enabled: Optional[bool] = None) -> None:
    """Programmatically force observability on/off for this process.

    Passing ``None`` drops the override and defers to ``REPRO_OBS`` again.
    The registry and tracer are rebuilt fresh either way.
    """
    global _enabled_override, _registry, _tracer
    _enabled_override = enabled
    _registry = None
    _tracer = None
    _ensure_context()


def reset() -> None:
    """Restore the pristine disabled state (test isolation hook).

    Clears the context, the override, any active run, and removes the
    ``REPRO_OBS``/``REPRO_OBS_DIR`` environment variables.
    """
    global _registry, _tracer, _ctx_pid, _enabled_override
    global _run_dir, _run_config, _owner_pid
    _registry = None
    _tracer = None
    _ctx_pid = None
    _enabled_override = None
    _run_dir = None
    _run_config = None
    _owner_pid = None
    os.environ.pop(ENV_ENABLED, None)
    os.environ.pop(ENV_RUN_DIR, None)


def active_run() -> Optional[Path]:
    """The active run directory, or ``None`` when no run is in progress.

    Resolves the directory :func:`start_run` recorded in this process, or —
    in a pool worker — the ``REPRO_OBS_DIR`` environment variable inherited
    from the parent.
    """
    if _run_dir is not None:
        return _run_dir
    from_env = os.environ.get(ENV_RUN_DIR)
    return Path(from_env) if from_env else None


def worker_label() -> str:
    """This process's shard label: ``main`` for the run owner, else ``w<pid>``."""
    if _owner_pid == os.getpid():
        return "main"
    return f"w{os.getpid()}"


def start_run(directory: Union[str, Path], config: Optional[dict] = None) -> Path:
    """Begin a telemetry run rooted at ``directory``.

    Enables observability, starts this process's context fresh, creates the
    run directory, and exports ``REPRO_OBS``/``REPRO_OBS_DIR`` so pool
    workers (forked *or* spawned) inherit the run and shard into it.

    Parameters
    ----------
    directory:
        Run directory; event shards and the merged report live here.
    config:
        The run configuration; remembered and stamped (as ``config_hash``)
        into the report that :func:`finish_run` writes.

    Returns
    -------
    The run directory as a :class:`~pathlib.Path`.
    """
    global _enabled_override, _run_dir, _run_config, _owner_pid, _registry, _tracer
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _enabled_override = True
    _run_dir = directory
    _run_config = config
    _owner_pid = os.getpid()
    os.environ[ENV_ENABLED] = "1"
    os.environ[ENV_RUN_DIR] = str(directory)
    _registry = None
    _tracer = None
    _ensure_context()
    return directory


def flush_shard() -> Optional[Path]:
    """Write this process's cumulative event shard into the active run.

    No-op (returns ``None``) when observability is disabled or no run is
    active.  Safe to call repeatedly — the shard is overwritten atomically
    with the process's complete current telemetry each time.
    """
    run = active_run()
    if run is None or not enabled():
        return None
    return write_event_shard(run, worker_label(), metrics(), get_tracer())


def finish_run(extra: Optional[dict] = None) -> Path:
    """Flush the owner shard, merge all shards, and write ``run_report.json``.

    Ends the run: the environment toggles set by :func:`start_run` are
    removed and the process context is reset to the disabled default.

    Parameters
    ----------
    extra:
        Optional additional top-level report keys, forwarded to
        :func:`~repro.obs.sink.build_run_report`.

    Returns
    -------
    Path of the written report.

    Raises
    ------
    RuntimeError
        When no run is active in this process.
    """
    if _run_dir is None:
        raise RuntimeError("finish_run() called with no active run; call start_run() first")
    flush_shard()
    report_path = write_run_report(_run_dir, config=_run_config, extra=extra)
    reset()
    return report_path
