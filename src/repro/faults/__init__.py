"""Shared deterministic fault-injection seams for every pipeline stage.

Production code calls the hooks of a :class:`FaultInjector` at every point
where a real deployment can fail: gateway queue delivery and batch
execution, datagen shard generation and the mid-write window of the atomic
shard rename, the transient ground-truth solve, the trainer's optimiser
step, and eval sweep rows.  The default injector is inert — every hook is a
no-op returning the undisturbed value — so a seam costs one method call per
event (gated ≤1% of the surrounding work by
``benchmarks/bench_resilience.py``).

The test suites (``tests/gateway/``, ``tests/resilience/``) script failures
through these hooks *deterministically*: no sleeps, no racing signal
handlers — a fault fires at an exact call ordinal of an exact seam, so a
kill-and-resume cycle is as reproducible as the pipeline it interrupts.

Two ways to inject:

* **Process-global install** — pipeline call sites read the injector via
  :func:`active`; tests swap it with :func:`install` or the
  :func:`injected` context manager.  Process-pool runs pass a picklable
  zero-argument *factory* to the engine (e.g. ``generate_corpus(...,
  faults_factory=...)``) which installs the injector inside each worker.
* **Explicit argument** — the gateway keeps taking its injector as a
  constructor argument (``ScreeningGateway(..., faults=...)``); the hooks
  are the same class either way.

``repro.gateway.faults`` re-exports :class:`FaultInjector`,
:class:`WorkerKilled` and :data:`NULL_FAULTS` for compatibility — the seam
started life there (see ``docs/resilience.md`` for the full failure model).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from pathlib import Path

    from repro.gateway.messages import GatewayRequest
    from repro.workloads.dataset import NoiseDataset

__all__ = [
    "FaultInjector",
    "ScriptedFaults",
    "WorkerKilled",
    "NULL_FAULTS",
    "active",
    "install",
    "injected",
]


class WorkerKilled(BaseException):
    """Injected worker/process death.

    Deliberately a :class:`BaseException`: pipeline error handling catches
    :class:`Exception` to retry or quarantine a failed unit of work, and a
    *kill* must not be swallowed by that handling — it has to unwind the
    worker (thread or process) wherever it is raised, exactly like a real
    SIGKILL or preemption would.  In a process-pool worker it takes the
    whole process down (the parent sees a broken pool); inline it unwinds
    straight out of the engine, which is how the chaos tests model dying
    mid-run without actually forking.
    """


class FaultInjector:
    """No-op fault hooks at every pipeline seam; subclass to script failures.

    Gateway seams (run on gateway worker threads):

    * :meth:`on_dequeue` — returns the deliveries to process for one
      dequeued request; return it twice to duplicate, ``()`` to delay.
    * :meth:`before_batch` — once per micro-batch before prediction;
      raising :class:`WorkerKilled` here crashes the worker mid-batch.
    * :meth:`on_checkpoint_load` — before a design's predictor fetch;
      raising fails only that design group.
    * :meth:`before_swap` — as a shard applies a hot checkpoint swap;
      raising fails the swap future.

    Pipeline seams (datagen / sim / training / eval):

    * :meth:`before_shard` — as a datagen worker starts a claimed shard.
    * :meth:`on_shard_dataset` — with a shard's freshly simulated dataset,
      before quarantine scanning and the shard write; return a replacement
      dataset to poison labels.
    * :meth:`during_shard_write` — between the shard's temp-file write and
      the atomic rename; raising :class:`WorkerKilled` here is the
      SIGKILL-mid-write scenario.
    * :meth:`before_solve` — before each transient ground-truth solve.
    * :meth:`on_train_step` — after each optimiser step; raise to model
      preemption, or write NaNs into the model to poison training.
    * :meth:`before_row` — before each eval row/sweep job attempt.
    """

    # -- gateway seams -------------------------------------------------- #

    def on_dequeue(
        self, shard_id: int, request: "GatewayRequest"
    ) -> Sequence["GatewayRequest"]:
        """Deliveries to process for one dequeued request (default: itself)."""
        return (request,)

    def before_batch(self, shard_id: int, requests: Sequence["GatewayRequest"]) -> None:
        """Called with each micro-batch before prediction; raise to crash."""

    def on_checkpoint_load(self, shard_id: int, design_name: str) -> None:
        """Called before a predictor fetch; raise to fail the load."""

    def before_swap(self, shard_id: int, design_name: str) -> None:
        """Called as a shard applies a checkpoint swap; raise to fail it."""

    # -- datagen seams --------------------------------------------------- #

    def before_shard(self, label: str, index: int) -> None:
        """Called as a worker starts one claimed shard; raise to fail the attempt."""

    def on_shard_dataset(
        self, label: str, index: int, dataset: "NoiseDataset"
    ) -> "NoiseDataset":
        """Called with a shard's freshly built dataset; return it (possibly poisoned)."""
        return dataset

    def during_shard_write(
        self, label: str, index: int, temporary: "Path"
    ) -> None:
        """Called between a shard's temp write and its atomic rename; raise to die mid-write."""

    # -- simulation seam -------------------------------------------------- #

    def before_solve(self, design_name: str, num_traces: int) -> None:
        """Called before each transient ground-truth solve; raise to fail it."""

    # -- training seam ---------------------------------------------------- #

    def on_train_step(self, epoch: int, step: int, model) -> None:
        """Called after each optimiser step; raise to crash, mutate ``model`` to poison."""

    # -- eval seam --------------------------------------------------------- #

    def before_row(self, key: str) -> None:
        """Called before each eval row attempt; raise to fail it."""


#: Shared inert injector used when no faults are configured.
NULL_FAULTS = FaultInjector()

# Process-global injector read by the pipeline seams.  Unlike the obs
# context this is NOT re-keyed per pid: a forked pool worker inheriting the
# parent's scripted injector is exactly what the chaos tests install a
# factory for, and the inert default has no per-process state to confuse.
_ACTIVE: FaultInjector = NULL_FAULTS


def active() -> FaultInjector:
    """The process-global injector (the inert :data:`NULL_FAULTS` by default)."""
    return _ACTIVE


def install(injector: Optional[FaultInjector]) -> FaultInjector:
    """Install the process-global injector and return the previous one.

    ``None`` restores the inert default.  Pool engines call this from their
    worker initialisers with the product of a picklable factory, so the same
    scripted faults fire no matter how the run is parallelised.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector if injector is not None else NULL_FAULTS
    return previous


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of a ``with`` block (test helper)."""
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)


#: A scripted error: an exception instance, or a zero-argument factory.
_ErrorScript = Union[BaseException, Callable[[], BaseException]]


class ScriptedFaults(FaultInjector):
    """Injector firing scripted exceptions at exact seam-call ordinals.

    Arm failures with :meth:`fail_at`; each seam counts its calls (0-based,
    per seam name) and raises the armed error when its ordinal comes up.
    Counting is deterministic because every pipeline seam is called at
    deterministic points, so "kill the second shard build" or "fail the
    fourth solve" reproduce exactly across runs — the property every
    ``tests/resilience/`` scenario is built on.

    Seam names: ``datagen.shard`` (:meth:`before_shard`),
    ``datagen.dataset`` (:meth:`on_shard_dataset`), ``datagen.shard_write``
    (:meth:`during_shard_write`), ``sim.solve`` (:meth:`before_solve`),
    ``training.step`` (:meth:`on_train_step`), ``eval.row``
    (:meth:`before_row`), ``gateway.batch`` (:meth:`before_batch`),
    ``gateway.checkpoint_load`` (:meth:`on_checkpoint_load`),
    ``gateway.swap`` (:meth:`before_swap`).

    Every fired fault increments the ``faults.injected`` counter and is
    recorded in :attr:`fired` as ``(seam, ordinal)``.
    """

    def __init__(self) -> None:
        self._scripts: dict[str, dict[int, _ErrorScript]] = {}
        #: Per-seam call counts (inspectable by tests).
        self.calls: dict[str, int] = {}
        #: ``(seam, ordinal)`` of every fault that fired, in order.
        self.fired: list[tuple[str, int]] = []

    def fail_at(self, seam: str, ordinal: int, error: _ErrorScript) -> "ScriptedFaults":
        """Arm ``error`` to fire on the ``ordinal``-th call of ``seam`` (chainable)."""
        self._scripts.setdefault(seam, {})[int(ordinal)] = error
        return self

    def _fire(self, seam: str) -> None:
        """Count one seam call; raise the armed error when scripted."""
        count = self.calls.get(seam, 0)
        self.calls[seam] = count + 1
        error = self._scripts.get(seam, {}).get(count)
        if error is None:
            return
        self.fired.append((seam, count))
        from repro import obs

        obs.metrics().counter("faults.injected").inc()
        if isinstance(error, BaseException):
            raise error
        raise error()

    # -- scripted overrides of every seam --------------------------------- #

    def on_dequeue(self, shard_id, request):
        """Count/fire at ``gateway.dequeue``; deliver the request unchanged."""
        self._fire("gateway.dequeue")
        return (request,)

    def before_batch(self, shard_id, requests) -> None:
        """Count/fire at ``gateway.batch``."""
        self._fire("gateway.batch")

    def on_checkpoint_load(self, shard_id, design_name) -> None:
        """Count/fire at ``gateway.checkpoint_load``."""
        self._fire("gateway.checkpoint_load")

    def before_swap(self, shard_id, design_name) -> None:
        """Count/fire at ``gateway.swap``."""
        self._fire("gateway.swap")

    def before_shard(self, label, index) -> None:
        """Count/fire at ``datagen.shard``."""
        self._fire("datagen.shard")

    def on_shard_dataset(self, label, index, dataset):
        """Count/fire at ``datagen.dataset``; pass the dataset through."""
        self._fire("datagen.dataset")
        return dataset

    def during_shard_write(self, label, index, temporary) -> None:
        """Count/fire at ``datagen.shard_write``."""
        self._fire("datagen.shard_write")

    def before_solve(self, design_name, num_traces) -> None:
        """Count/fire at ``sim.solve``."""
        self._fire("sim.solve")

    def on_train_step(self, epoch, step, model) -> None:
        """Count/fire at ``training.step``."""
        self._fire("training.step")

    def before_row(self, key) -> None:
        """Count/fire at ``eval.row``."""
        self._fire("eval.row")
