"""Waveform containers shared by the simulation engine and the workloads.

A *test vector* in the paper is a transient trace of switching currents: for
every load and every time stamp, the current drawn from the grid.  The
simulator consumes a :class:`CurrentTrace`; its output is either a full
:class:`VoltageWaveform` (per-node droop over time) or just the running
per-node maximum, which is all worst-case noise validation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils import check_finite, check_positive


@dataclass
class CurrentTrace:
    """Per-load switching currents over time.

    Attributes
    ----------
    currents:
        Array of shape ``(T, L)``: ``currents[k, j]`` is the current in
        amperes drawn by load ``j`` at time stamp ``k``.
    dt:
        Time-step between consecutive stamps, in seconds (the paper uses
        ``dt = 1 ps``).
    name:
        Optional identifier (vector id in a workload suite).
    """

    currents: np.ndarray
    dt: float
    name: str = ""

    def __post_init__(self) -> None:
        self.currents = np.asarray(self.currents, dtype=float)
        if self.currents.ndim != 2:
            raise ValueError(f"currents must be 2-D (T, L), got shape {self.currents.shape}")
        check_positive(self.dt, "dt")
        check_finite(self.currents, "currents")
        if np.any(self.currents < 0):
            raise ValueError("load currents must be non-negative")

    @property
    def num_steps(self) -> int:
        """Number of time stamps ``T``."""
        return int(self.currents.shape[0])

    @property
    def num_loads(self) -> int:
        """Number of loads ``L``."""
        return int(self.currents.shape[1])

    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return self.num_steps * self.dt

    @property
    def times(self) -> np.ndarray:
        """Time stamps in seconds, shape ``(T,)``."""
        return np.arange(self.num_steps) * self.dt

    def total_current(self) -> np.ndarray:
        """Total drawn current per time stamp, shape ``(T,)``.

        This is the quantity Algorithm 1 sorts when deciding which time
        stamps to keep.
        """
        return np.sum(self.currents, axis=1)

    def subset(self, step_indices: np.ndarray) -> "CurrentTrace":
        """Return a new trace containing only the selected time stamps."""
        step_indices = np.asarray(step_indices, dtype=int)
        if step_indices.size == 0:
            raise ValueError("cannot build an empty trace subset")
        if np.any(step_indices < 0) or np.any(step_indices >= self.num_steps):
            raise ValueError("step indices out of range")
        return CurrentTrace(self.currents[step_indices], self.dt, name=self.name)

    def scaled(self, factor: float) -> "CurrentTrace":
        """Return a copy with every current multiplied by ``factor``."""
        check_positive(factor, "factor")
        return CurrentTrace(self.currents * factor, self.dt, name=self.name)


@dataclass
class VoltageWaveform:
    """Per-node droop waveform produced by the transient engine.

    Attributes
    ----------
    droops:
        Array of shape ``(T, N)`` with the voltage droop (V) of every node at
        every stamp.  Positive values mean the local supply is below nominal.
    dt:
        Time-step in seconds.
    """

    droops: np.ndarray
    dt: float

    def __post_init__(self) -> None:
        self.droops = np.asarray(self.droops, dtype=float)
        if self.droops.ndim != 2:
            raise ValueError(f"droops must be 2-D (T, N), got shape {self.droops.shape}")
        check_positive(self.dt, "dt")

    @property
    def num_steps(self) -> int:
        """Number of time stamps."""
        return int(self.droops.shape[0])

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return int(self.droops.shape[1])

    def worst_case_per_node(self) -> np.ndarray:
        """Maximum droop over time for every node, shape ``(N,)``."""
        return np.max(self.droops, axis=0)

    def worst_case(self) -> float:
        """Single worst droop over all nodes and stamps (Eq. 1)."""
        return float(np.max(self.droops))

    def node_waveform(self, node: int) -> np.ndarray:
        """Droop of one node over time, shape ``(T,)``."""
        return self.droops[:, node]


def per_tile_maximum(values: np.ndarray, tile_index: np.ndarray, num_tiles: int) -> np.ndarray:
    """Reduce per-node values to per-tile maxima.

    Parameters
    ----------
    values:
        Per-node values, shape ``(N,)``.
    tile_index:
        Flat tile index of each node, shape ``(N,)``.
    num_tiles:
        Total number of tiles ``m * n``.

    Returns
    -------
    Per-tile maxima, shape ``(num_tiles,)``; tiles containing no node get 0.
    """
    values = np.asarray(values, dtype=float)
    tile_index = np.asarray(tile_index, dtype=int)
    if values.shape != tile_index.shape:
        raise ValueError("values and tile_index must have the same shape")
    out = np.full(num_tiles, -np.inf)
    np.maximum.at(out, tile_index, values)
    out[out == -np.inf] = 0.0
    return out
