"""Random-walk power-grid solver.

The random-walk method (ref. [7] of the paper) estimates the voltage of a
*single* node without solving the whole system: starting from the node, a
walker repeatedly moves to a neighbour with probability proportional to the
branch conductance, collects a "reward" at every visited node proportional to
the local injected current, and terminates when it steps onto the reference
through a grounded branch.  The expected accumulated reward equals the node's
droop.  Its per-node cost makes it attractive for spot checks but expensive
for full-map extraction — exactly the trade-off the learning-based approach
is designed to beat, so it is included as a classical baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils import check_positive
from repro.utils.random import RandomState, ensure_rng


@dataclass
class RandomWalkEstimate:
    """Monte-Carlo estimate of one node's droop."""

    node: int
    mean: float
    standard_error: float
    num_walks: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval for the droop."""
        return (self.mean - z * self.standard_error, self.mean + z * self.standard_error)


class RandomWalkSolver:
    """Monte-Carlo estimator for individual entries of ``G^{-1} b``.

    Parameters
    ----------
    matrix:
        SPD conductance matrix with non-positive off-diagonals (an M-matrix),
        which every resistive grid with grounded branches satisfies.
    rhs:
        Injected current vector ``b``.
    max_steps:
        Safety cap on walk length; hitting it terminates the walk early and
        slightly biases the estimate low (reported via ``truncated_walks``).
    """

    def __init__(self, matrix: sp.spmatrix, rhs: np.ndarray, max_steps: int = 100_000):
        matrix = matrix.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got {matrix.shape}")
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (matrix.shape[0],):
            raise ValueError("rhs length must match the matrix size")
        check_positive(max_steps, "max_steps")

        self._matrix = matrix
        self._rhs = rhs
        self._max_steps = int(max_steps)
        self.truncated_walks = 0

        diagonal = matrix.diagonal()
        if np.any(diagonal <= 0):
            raise ValueError("matrix diagonal must be strictly positive")
        self._diagonal = diagonal

        # Pre-compute the transition structure row by row.
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        self._neighbours: list[np.ndarray] = []
        self._probabilities: list[np.ndarray] = []
        self._termination: np.ndarray = np.zeros(matrix.shape[0])
        for node in range(matrix.shape[0]):
            row_slice = slice(indptr[node], indptr[node + 1])
            cols = indices[row_slice]
            vals = data[row_slice]
            off = cols != node
            neighbour_conductance = -vals[off]
            if np.any(neighbour_conductance < -1e-15):
                raise ValueError("matrix must have non-positive off-diagonal entries")
            neighbour_conductance = np.clip(neighbour_conductance, 0.0, None)
            total = diagonal[node]
            # Probability mass not carried by neighbours corresponds to
            # grounded conductance, i.e. termination of the walk.
            probabilities = neighbour_conductance / total
            self._neighbours.append(cols[off])
            self._probabilities.append(probabilities)
            self._termination[node] = max(0.0, 1.0 - float(np.sum(probabilities)))

    def estimate_node(
        self,
        node: int,
        num_walks: int = 2000,
        seed: RandomState = None,
    ) -> RandomWalkEstimate:
        """Estimate the droop at ``node`` from ``num_walks`` random walks."""
        if not 0 <= node < self._matrix.shape[0]:
            raise ValueError(f"node {node} out of range")
        check_positive(num_walks, "num_walks")
        rng = ensure_rng(seed)

        rewards = np.empty(num_walks)
        for walk in range(num_walks):
            rewards[walk] = self._single_walk(node, rng)
        mean = float(np.mean(rewards))
        standard_error = float(np.std(rewards, ddof=1) / np.sqrt(num_walks)) if num_walks > 1 else 0.0
        return RandomWalkEstimate(
            node=node, mean=mean, standard_error=standard_error, num_walks=num_walks
        )

    def _single_walk(self, start: int, rng: np.random.Generator) -> float:
        """Accumulated reward of one walk starting at ``start``."""
        node = start
        reward = 0.0
        for _ in range(self._max_steps):
            reward += self._rhs[node] / self._diagonal[node]
            termination = self._termination[node]
            u = rng.random()
            if u < termination:
                return reward
            probabilities = self._probabilities[node]
            neighbours = self._neighbours[node]
            if neighbours.size == 0:
                return reward
            # Sample a neighbour conditioned on not terminating.
            u = (u - termination)
            cumulative = np.cumsum(probabilities)
            index = int(np.searchsorted(cumulative, u, side="right"))
            index = min(index, neighbours.size - 1)
            node = int(neighbours[index])
        self.truncated_walks += 1
        return reward

    def estimate_nodes(
        self,
        nodes: np.ndarray,
        num_walks: int = 2000,
        seed: RandomState = None,
    ) -> list[RandomWalkEstimate]:
        """Estimate several nodes with independent walk budgets."""
        rng = ensure_rng(seed)
        return [self.estimate_node(int(node), num_walks, rng) for node in np.asarray(nodes)]
