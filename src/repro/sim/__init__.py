"""PDN simulation engine.

This subpackage is the reproduction's substitute for the commercial PDN
sign-off tool: sparse linear solvers, static IR analysis, a transient engine
with companion models for decap and package inductance, the worst-case
dynamic noise analysis that produces the ground-truth tile maps, and the
classical multigrid / random-walk solvers the paper cites as conventional
alternatives.

Transient integration sits behind a solver-strategy seam: the full-order
companion path (:class:`FullOrderStrategy`) and the gated Krylov
reduced-order model (:class:`ReducedOrderStrategy`, ``solver_mode="rom"``)
are interchangeable behind :class:`TransientEngine` — see ``docs/solvers.md``.
"""

from repro.sim.linear import (
    CholeskySolver,
    ConjugateGradientSolver,
    DirectSolver,
    LinearSolver,
    make_solver,
    solver_names,
)
from repro.sim.multigrid import MultigridSolver
from repro.sim.random_walk import RandomWalkEstimate, RandomWalkSolver
from repro.sim.static_ir import StaticIRAnalysis, StaticIRResult, run_static_analysis
from repro.sim.transient import (
    INTEGRATION_METHODS,
    SOLVER_MODES,
    FullOrderStrategy,
    TransientEngine,
    TransientOptions,
    TransientResult,
    TransientSolverStrategy,
)
from repro.sim.rom import ReducedOrderStrategy, ROMOptions, ROMRunStats
from repro.sim.dynamic_noise import (
    DynamicNoiseAnalysis,
    DynamicNoiseResult,
    worst_case_summary,
)
from repro.sim.waveform import CurrentTrace, VoltageWaveform, per_tile_maximum

__all__ = [
    "LinearSolver",
    "DirectSolver",
    "CholeskySolver",
    "ConjugateGradientSolver",
    "MultigridSolver",
    "RandomWalkSolver",
    "RandomWalkEstimate",
    "make_solver",
    "solver_names",
    "StaticIRAnalysis",
    "StaticIRResult",
    "run_static_analysis",
    "TransientEngine",
    "TransientOptions",
    "TransientResult",
    "TransientSolverStrategy",
    "FullOrderStrategy",
    "ReducedOrderStrategy",
    "ROMOptions",
    "ROMRunStats",
    "INTEGRATION_METHODS",
    "SOLVER_MODES",
    "DynamicNoiseAnalysis",
    "DynamicNoiseResult",
    "worst_case_summary",
    "CurrentTrace",
    "VoltageWaveform",
    "per_tile_maximum",
]
