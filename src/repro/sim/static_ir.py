"""Static (DC) IR-drop analysis.

Static analysis "employs DC excitation and hence ignores the impact of
capacitance or inductance" (Sec. 2): inductors are shorts, capacitors are
open, and the droop is the solution of ``G x = I`` with the average load
currents on the right-hand side.  The static map is used as a sanity baseline
(it underestimates dynamic noise because it misses the die-package resonance)
and as the target of the classical-solver benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.pdn.designs import Design
from repro.pdn.stamps import MNASystem
from repro.sim.linear import LinearSolver, make_solver
from repro.sim.waveform import per_tile_maximum
from repro.utils import check_finite


@dataclass
class StaticIRResult:
    """Result of a static IR-drop analysis.

    Attributes
    ----------
    node_droop:
        Droop at every MNA node (V), shape ``(num_nodes,)``.
    tile_map:
        Per-tile maximum droop (V), shape ``(m, n)``; only filled when the
        analysis was given a :class:`~repro.pdn.designs.Design`.
    """

    node_droop: np.ndarray
    tile_map: Optional[np.ndarray] = None

    @property
    def worst_case(self) -> float:
        """Largest droop across all nodes (V)."""
        return float(np.max(self.node_droop))

    @property
    def mean_droop(self) -> float:
        """Mean droop across all nodes (V)."""
        return float(np.mean(self.node_droop))


class StaticIRAnalysis:
    """Reusable static analysis bound to one MNA system.

    The conductance matrix is factorised once at construction so repeated
    analyses with different current vectors amortise the factorisation, just
    as a sign-off tool would.
    """

    def __init__(self, mna: MNASystem, solver_method: str = "direct", **solver_kwargs):
        self._mna = mna
        self._solver: LinearSolver = make_solver(
            mna.static_conductance(), solver_method, **solver_kwargs
        )

    @property
    def solver(self) -> LinearSolver:
        """The underlying linear solver (exposed for benchmarking)."""
        return self._solver

    def solve(self, load_currents: np.ndarray) -> np.ndarray:
        """Droop at every node for the given per-load DC currents."""
        load_currents = np.asarray(load_currents, dtype=float)
        check_finite(load_currents, "load_currents")
        rhs = self._mna.load_vector(load_currents)
        return self._solver.solve(rhs)


def run_static_analysis(
    design: Design,
    load_currents: Optional[np.ndarray] = None,
    solver_method: str = "direct",
) -> StaticIRResult:
    """One-shot static IR analysis of a design.

    Parameters
    ----------
    design:
        The design to analyse.
    load_currents:
        Per-load DC currents (A); defaults to the nominal currents of the
        design's load placement.
    solver_method:
        Any name accepted by :func:`repro.sim.linear.make_solver`.
    """
    if load_currents is None:
        load_currents = design.loads.nominal_currents
    analysis = StaticIRAnalysis(design.mna, solver_method=solver_method)
    node_droop = analysis.solve(load_currents)

    die_droop = node_droop[: design.mna.num_die_nodes]
    tile_values = per_tile_maximum(
        die_droop, design.node_tile_index, design.tile_grid.num_tiles
    )
    return StaticIRResult(
        node_droop=node_droop,
        tile_map=tile_values.reshape(design.tile_grid.shape),
    )
