"""Worst-case dynamic PDN noise analysis (the "commercial tool" stand-in).

The paper's ground truth comes from a commercial dynamic PDN sign-off tool
that, given a test vector, reports the worst-case noise of every tile over
the whole trace.  :class:`DynamicNoiseAnalysis` plays that role here: it runs
the transient engine over a current trace and reduces the per-node droop
maxima to the per-tile worst-case noise map of Eq. 2, flags hotspots, and
reports its own wall-clock runtime so the CNN's speedup can be measured the
same way the paper measures it (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.pdn.designs import Design
from repro.sim.transient import TransientEngine, TransientOptions, TransientResult
from repro.sim.waveform import CurrentTrace, per_tile_maximum
from repro import faults, obs
from repro.utils import Timer, check_positive, get_logger

_LOG = get_logger("sim.dynamic_noise")


@dataclass
class DynamicNoiseResult:
    """Worst-case dynamic noise of one design under one test vector.

    Attributes
    ----------
    tile_noise:
        Worst-case noise map (V) over tiles, shape ``(m, n)``.
    node_noise:
        Worst-case droop per die node (V).
    worst_noise:
        Global worst-case noise (Eq. 1), in volts.
    worst_time_index:
        Time stamp at which the global worst droop occurred.
    hotspot_map:
        Boolean map of tiles whose worst-case noise exceeds the design's
        hotspot threshold (10% of Vdd by default).
    runtime_seconds:
        Wall-clock time of the analysis (transient integration + reduction).
    """

    tile_noise: np.ndarray
    node_noise: np.ndarray
    worst_noise: float
    worst_time_index: int
    hotspot_map: np.ndarray
    runtime_seconds: float

    @property
    def hotspot_ratio(self) -> float:
        """Fraction of tiles flagged as hotspots."""
        return float(np.mean(self.hotspot_map))

    @property
    def mean_tile_noise(self) -> float:
        """Mean worst-case noise across tiles (V)."""
        return float(np.mean(self.tile_noise))

    @property
    def max_tile_noise(self) -> float:
        """Maximum worst-case noise across tiles (V)."""
        return float(np.max(self.tile_noise))


class DynamicNoiseAnalysis:
    """Reusable worst-case dynamic noise analysis for one design.

    The transient engine (and therefore the sparse factorisation) is built
    once per (design, dt) pair and reused across test vectors, mirroring how
    a sign-off tool amortises matrix factorisation across vectors.
    """

    def __init__(
        self,
        design: Design,
        dt: float,
        transient_options: TransientOptions = TransientOptions(),
    ):
        check_positive(dt, "dt")
        self._design = design
        self._dt = dt
        self._engine = TransientEngine(design.mna, dt, transient_options)

    @property
    def design(self) -> Design:
        """The design under analysis."""
        return self._design

    @property
    def engine(self) -> TransientEngine:
        """The underlying transient engine."""
        return self._engine

    def _reduce(self, transient: TransientResult, runtime_seconds: float) -> DynamicNoiseResult:
        """Reduce one transient result to the per-tile worst-case noise map."""
        design = self._design
        die_noise = transient.max_droop_per_node[: design.mna.num_die_nodes]
        tile_values = per_tile_maximum(
            die_noise, design.node_tile_index, design.tile_grid.num_tiles
        )
        tile_noise = tile_values.reshape(design.tile_grid.shape)
        return DynamicNoiseResult(
            tile_noise=tile_noise,
            node_noise=die_noise,
            worst_noise=transient.worst_droop,
            worst_time_index=transient.worst_time_index,
            hotspot_map=tile_noise > design.spec.hotspot_threshold,
            runtime_seconds=runtime_seconds,
        )

    def run(self, trace: CurrentTrace) -> DynamicNoiseResult:
        """Compute the worst-case noise map for one test vector.

        Parameters
        ----------
        trace:
            The switching-current test vector (must match the analysis dt).

        Returns
        -------
        The :class:`DynamicNoiseResult` for this vector, with
        ``runtime_seconds`` measuring the transient integration plus the
        per-tile reduction.
        """
        faults.active().before_solve(self._design.name, 1)
        timer = Timer()
        with timer.measure():
            transient: TransientResult = self._engine.run(trace)
            result = self._reduce(transient, 0.0)
        result.runtime_seconds = timer.last
        obs.metrics().histogram("sim.analysis_seconds").observe(timer.last)
        _LOG.debug(
            "dynamic noise on %s: worst=%.1f mV, hotspot ratio=%.1f%%, %.2f s",
            self._design.name,
            1e3 * result.worst_noise,
            100.0 * result.hotspot_ratio,
            result.runtime_seconds,
        )
        return result

    def run_many(
        self,
        traces: Sequence[CurrentTrace],
        batch_size: Optional[int] = None,
    ) -> list[DynamicNoiseResult]:
        """Analyse a batch of test vectors with lockstep block solves.

        All traces advance through the transient engine together
        (:meth:`TransientEngine.run_many`), so every time stamp costs one
        block back-substitution for the whole batch instead of one solve per
        vector.  Noise maps agree with per-vector :meth:`run` calls to
        solver rounding (a few ULPs at worst) and are deterministic for a
        given batch decomposition; the ``runtime_seconds`` bookkeeping also
        differs — the batch wall-clock time is split evenly across the
        vectors, since individual solves are no longer separable.

        Parameters
        ----------
        traces:
            Test vectors to analyse (any mix of lengths; same dt).
        batch_size:
            Maximum vectors per lockstep block (bounds memory); ``None``
            integrates each equal-length group in one block.

        Returns
        -------
        One :class:`DynamicNoiseResult` per trace, in input order.
        """
        traces = list(traces)
        if not traces:
            return []
        faults.active().before_solve(self._design.name, len(traces))
        timer = Timer()
        with timer.measure():
            transients = self._engine.run_many(traces, batch_size=batch_size)
            share = 0.0
            results = [self._reduce(transient, share) for transient in transients]
        obs.metrics().histogram("sim.analysis_seconds").observe(timer.last)
        share = timer.last / len(traces)
        for result in results:
            result.runtime_seconds = share
        _LOG.debug(
            "dynamic noise batch on %s: %d vectors in %.2f s",
            self._design.name,
            len(traces),
            timer.last,
        )
        return results


def worst_case_summary(results: Sequence[DynamicNoiseResult]) -> dict:
    """Aggregate a batch of results into Table-1-style statistics.

    Returns mean / max worst-case noise (over vectors and tiles) and the
    average hotspot ratio, the quantities the paper reports per design.
    """
    if not results:
        raise ValueError("at least one result is required")
    tile_stack = np.stack([result.tile_noise for result in results])
    per_vector_mean = tile_stack.reshape(len(results), -1).mean(axis=1)
    per_vector_max = tile_stack.reshape(len(results), -1).max(axis=1)
    hotspot_ratios = np.array([result.hotspot_ratio for result in results])
    runtimes = np.array([result.runtime_seconds for result in results])
    return {
        "mean_worst_noise_mV": float(np.mean(per_vector_mean) * 1e3),
        "max_worst_noise_mV": float(np.max(per_vector_max) * 1e3),
        "hotspot_ratio": float(np.mean(hotspot_ratios)),
        "total_runtime_s": float(np.sum(runtimes)),
        "mean_runtime_s": float(np.mean(runtimes)),
        "num_vectors": len(results),
    }
