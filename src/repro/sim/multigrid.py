"""Algebraic multigrid solver for power-grid matrices.

Multigrid methods are one of the classical answers to large power-grid
analysis (refs. [6, 8] of the paper).  This module implements a compact
aggregation-based algebraic multigrid (AMG):

* coarsening by greedy aggregation over strong connections,
* piecewise-constant prolongation smoothed by one weighted-Jacobi step
  (smoothed aggregation),
* Galerkin coarse operators ``A_c = P^T A P``,
* V-cycles with weighted-Jacobi pre/post smoothing and a dense direct solve
  on the coarsest level.

It is exposed both as a standalone :class:`LinearSolver` (stationary V-cycle
iteration) and as a preconditioner for conjugate gradients, and serves as the
"conventional simulation based method" baseline in the solver benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.sim.linear import LinearSolver
from repro.utils import check_positive, get_logger

_LOG = get_logger("sim.multigrid")


@dataclass
class MultigridLevel:
    """One level of the multigrid hierarchy."""

    matrix: sp.csc_matrix
    prolongation: Optional[sp.csc_matrix]  # None on the coarsest level
    jacobi_diagonal: np.ndarray


def _strong_connections(matrix: sp.csr_matrix, theta: float) -> sp.csr_matrix:
    """Boolean pattern of strong off-diagonal connections.

    Entry ``(i, j)`` is strong when ``|a_ij| >= theta * max_k |a_ik|`` over
    off-diagonal ``k`` — the standard aggregation criterion.
    """
    coo = matrix.tocoo()
    off = coo.row != coo.col
    rows = coo.row[off]
    cols = coo.col[off]
    vals = np.abs(coo.data[off])
    row_max = np.zeros(matrix.shape[0])
    np.maximum.at(row_max, rows, vals)
    keep = vals >= theta * row_max[rows]
    pattern = sp.coo_matrix(
        (np.ones(np.count_nonzero(keep)), (rows[keep], cols[keep])), shape=matrix.shape
    )
    return pattern.tocsr()


def _aggregate(strength: sp.csr_matrix) -> np.ndarray:
    """Greedy aggregation: returns the aggregate id of every node.

    Pass 1 forms an aggregate around every node whose neighbourhood is still
    completely free; pass 2 attaches the remaining nodes to a neighbouring
    aggregate (or makes them singletons when isolated).
    """
    num_nodes = strength.shape[0]
    aggregate = np.full(num_nodes, -1, dtype=int)
    indptr, indices = strength.indptr, strength.indices
    next_aggregate = 0

    for node in range(num_nodes):
        if aggregate[node] != -1:
            continue
        neighbours = indices[indptr[node]:indptr[node + 1]]
        if np.all(aggregate[neighbours] == -1):
            aggregate[node] = next_aggregate
            aggregate[neighbours] = next_aggregate
            next_aggregate += 1

    for node in range(num_nodes):
        if aggregate[node] != -1:
            continue
        neighbours = indices[indptr[node]:indptr[node + 1]]
        assigned = neighbours[aggregate[neighbours] != -1]
        if assigned.size:
            aggregate[node] = aggregate[assigned[0]]
        else:
            aggregate[node] = next_aggregate
            next_aggregate += 1
    return aggregate


def _tentative_prolongation(aggregate: np.ndarray) -> sp.csc_matrix:
    """Piecewise-constant prolongation from aggregate ids."""
    num_fine = aggregate.shape[0]
    num_coarse = int(aggregate.max()) + 1
    data = np.ones(num_fine)
    return sp.coo_matrix((data, (np.arange(num_fine), aggregate)), shape=(num_fine, num_coarse)).tocsc()


class MultigridSolver(LinearSolver):
    """Smoothed-aggregation AMG used as a stationary iterative solver.

    Parameters
    ----------
    matrix:
        SPD system matrix.
    theta:
        Strength-of-connection threshold for aggregation.
    max_levels:
        Maximum depth of the hierarchy.
    coarse_size:
        Stop coarsening once a level is at most this many unknowns.
    smoothing_steps:
        Weighted-Jacobi pre- and post-smoothing sweeps per level.
    omega:
        Jacobi damping factor.
    tolerance / max_cycles:
        Stopping criterion of the outer V-cycle iteration.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        theta: float = 0.08,
        max_levels: int = 10,
        coarse_size: int = 200,
        smoothing_steps: int = 2,
        omega: float = 0.7,
        tolerance: float = 1e-10,
        max_cycles: int = 100,
    ):
        super().__init__(matrix)
        check_positive(tolerance, "tolerance")
        if not 0.0 < omega <= 1.0:
            raise ValueError(f"omega must be in (0, 1], got {omega}")
        self.tolerance = tolerance
        self.max_cycles = max_cycles
        self.smoothing_steps = smoothing_steps
        self.omega = omega
        self.cycles_used = 0
        self._levels: list[MultigridLevel] = []
        self._coarse_inverse: Optional[np.ndarray] = None
        self._build_hierarchy(theta, max_levels, coarse_size)

    def _build_hierarchy(self, theta: float, max_levels: int, coarse_size: int) -> None:
        current = self._matrix.tocsr()
        for _ in range(max_levels):
            diagonal = current.diagonal()
            if current.shape[0] <= coarse_size:
                self._levels.append(MultigridLevel(current.tocsc(), None, diagonal))
                break
            strength = _strong_connections(current, theta)
            aggregate = _aggregate(strength)
            tentative = _tentative_prolongation(aggregate)
            if tentative.shape[1] >= current.shape[0]:
                # Aggregation stalled; stop coarsening here.
                self._levels.append(MultigridLevel(current.tocsc(), None, diagonal))
                break
            # Smoothed aggregation: P = (I - omega D^-1 A) P_tent.
            inverse_diagonal = sp.diags(1.0 / diagonal)
            prolongation = tentative - self.omega * (inverse_diagonal @ (current @ tentative))
            coarse = (prolongation.T @ current @ prolongation).tocsr()
            self._levels.append(MultigridLevel(current.tocsc(), prolongation.tocsc(), diagonal))
            current = coarse
        else:
            self._levels.append(MultigridLevel(current.tocsc(), None, current.diagonal()))
        coarsest = self._levels[-1].matrix.toarray()
        self._coarse_inverse = np.linalg.pinv(coarsest)
        _LOG.debug(
            "AMG hierarchy: %s", [level.matrix.shape[0] for level in self._levels]
        )

    @property
    def num_levels(self) -> int:
        """Depth of the multigrid hierarchy."""
        return len(self._levels)

    def _smooth(
        self, level: MultigridLevel, x: np.ndarray, rhs: np.ndarray, steps: int
    ) -> np.ndarray:
        for _ in range(steps):
            residual = rhs - level.matrix @ x
            x = x + self.omega * residual / level.jacobi_diagonal
        return x

    def _v_cycle(self, level_index: int, rhs: np.ndarray) -> np.ndarray:
        level = self._levels[level_index]
        if level.prolongation is None:
            return self._coarse_inverse @ rhs
        x = np.zeros_like(rhs)
        x = self._smooth(level, x, rhs, self.smoothing_steps)
        residual = rhs - level.matrix @ x
        coarse_rhs = level.prolongation.T @ residual
        coarse_correction = self._v_cycle(level_index + 1, coarse_rhs)
        x = x + level.prolongation @ coarse_correction
        x = self._smooth(level, x, rhs, self.smoothing_steps)
        return x

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        x = np.zeros_like(rhs)
        rhs_norm = np.linalg.norm(rhs)
        if rhs_norm == 0.0:
            self.cycles_used = 0
            return x
        for cycle in range(1, self.max_cycles + 1):
            residual = rhs - self._matrix @ x
            if np.linalg.norm(residual) / rhs_norm < self.tolerance:
                self.cycles_used = cycle - 1
                return x
            x = x + self._v_cycle(0, residual)
        self.cycles_used = self.max_cycles
        _LOG.warning(
            "AMG reached max cycles (%d) with residual %.3e",
            self.max_cycles,
            self.residual_norm(x, rhs),
        )
        return x

    def as_preconditioner(self):
        """Return a callable applying one V-cycle, usable as a CG preconditioner."""

        def apply(vector: np.ndarray) -> np.ndarray:
            return self._v_cycle(0, np.asarray(vector, dtype=float))

        return apply
