"""Krylov reduced-order model (ROM) of the PDN transient problem.

Datagen throughput is bounded by the full-order transient solver: every time
stamp of every test vector is one sparse back-substitution against the
companion system ``S = G + G_L(dt) + cap_factor * C / dt``.  This module
replays the *same* companion-model iteration in a small subspace instead:

1. **Basis construction** (truncated block Krylov / moment matching): the
   starting block is the *complete* set of excitation ports — every load
   incidence column of ``B`` plus the package-inductor incidence ``E`` — so
   no excited region is invisible to the subspace.  The block Krylov
   sequence ``S⁻¹X, (S⁻¹D)S⁻¹X, …`` (``D`` the capacitor companion
   diagonal) is the sequence of moments of the *discrete-time* transfer
   function the integrator realises; each level is rank-truncated before
   being propagated (bounding the sparse-solve width) and a final
   Gram-matrix eigendecomposition keeps the ``rank`` dominant directions of
   the whole moment stack.  The construction is fully deterministic — no
   random sketch — and reuses the sparse factorisation already paid for by
   the full-order path.
2. **Projection**: the reduced system ``V^T S V`` (dense, a few hundred
   rows) is Cholesky-factored **once per design**; the step recursion is
   then pre-applied (``F = S_r⁻¹ D_r`` and friends) so each time stamp costs
   a single ``r × r`` GEMM.  Inductor branch currents are *not* projected —
   the package has few of them and keeping them exact preserves the
   die–package resonance feedback loop.
3. **Integration** (:class:`ReducedOrderStrategy`): the companion iteration
   runs in reduced coordinates, and node droops are reconstructed chunk-wise
   with one level-3 BLAS product per chunk (optionally in float32 — see
   :attr:`ROMOptions.reconstruct_dtype`) to track the per-node maxima the
   noise labels need.

Accuracy is **gated, not assumed**: :meth:`repro.sim.transient.
TransientEngine.run_many` validates a deterministic sample of every batch
against the full-order strategy and falls back wholesale when the relative
``worst_droop`` error exceeds :attr:`ROMOptions.tolerance` (recorded in
:class:`ROMRunStats`, the ``sim.rom.*`` metrics and the corpus manifest).
See ``docs/solvers.md`` for the full contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np
import scipy.linalg

from repro import obs
from repro.sim.transient import TransientResult, TransientSolverStrategy
from repro.sim.waveform import CurrentTrace, VoltageWaveform
from repro.utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.transient import FullOrderStrategy

_LOG = get_logger("sim.rom")

#: Gram-eigenvalue ratio below which moment columns are dropped as linearly
#: dependent (eigenvalues are squared singular values, hence the square of
#: the usual singular-value drop tolerance).
_DROP_TOLERANCE = 1e-13

#: Hard ceiling of the automatic rank choice (``ROMOptions.rank == 0``).
_AUTO_RANK_CAP = 256

#: Floor of the automatic rank choice.
_AUTO_RANK_FLOOR = 64

#: Target byte size of one reconstruction chunk (bounds the dense ``(N, c, V)``
#: working set of the chunked level-3 BLAS reconstruction).
_CHUNK_TARGET_BYTES = 1 << 25

#: Allowed values of :attr:`ROMOptions.reconstruct_dtype`.
RECONSTRUCT_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class ROMOptions:
    """Knobs of the reduced-order strategy and its error gate.

    Attributes
    ----------
    order:
        Krylov depth — how many moments of the discrete-time transfer
        function the basis matches.  Deeper captures more of the ringing
        transient; 6 is the sweet spot on the seed designs.
    rank:
        Number of basis columns kept after truncation.  ``0`` (the default)
        chooses automatically from the design: half the excitation-port
        count, clamped to ``[64, 256]`` and to the node count.
    tolerance:
        Relative ``worst_droop`` error above which a gated batch falls back
        to the full-order solver.
    validate_vectors:
        How many traces of each :meth:`~repro.sim.transient.TransientEngine.
        run_many` call are validated against the full-order solver
        (``0`` disables the gate — labels are then *unvalidated*).
    droop_floor:
        Absolute floor (V) for the gate's relative-error denominator, so
        near-zero reference droops cannot inflate the error.
    reconstruct_dtype:
        Dtype of the chunked droop reconstruction (``"float32"`` halves the
        dominant GEMM cost at ~1e-7 relative error — far below any usable
        gate tolerance; ``"float64"`` reconstructs at working precision).
        The reduced state recursion itself always runs in float64.
    """

    order: int = 6
    rank: int = 0
    tolerance: float = 0.08
    validate_vectors: int = 2
    droop_floor: float = 1e-9
    reconstruct_dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0 (0 = auto), got {self.rank}")
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {self.tolerance}")
        if self.validate_vectors < 0:
            raise ValueError(f"validate_vectors must be >= 0, got {self.validate_vectors}")
        if self.droop_floor <= 0:
            raise ValueError(f"droop_floor must be > 0, got {self.droop_floor}")
        if self.reconstruct_dtype not in RECONSTRUCT_DTYPES:
            raise ValueError(
                f"reconstruct_dtype must be one of {RECONSTRUCT_DTYPES}, "
                f"got {self.reconstruct_dtype!r}"
            )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (folded into corpus hashes)."""
        return {
            "order": self.order,
            "rank": self.rank,
            "tolerance": self.tolerance,
            "validate_vectors": self.validate_vectors,
            "droop_floor": self.droop_floor,
            "reconstruct_dtype": self.reconstruct_dtype,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ROMOptions":
        """Rebuild options from :meth:`to_dict` output."""
        return cls(**payload)


@dataclass
class ROMRunStats:
    """Cumulative gate statistics of one :class:`ReducedOrderStrategy`.

    Attributes
    ----------
    calls:
        Gated ``run_many`` calls seen.
    validated:
        Traces integrated by *both* strategies for the error gate.
    fallbacks:
        Gated calls that fell back wholesale to the full-order solver.
    rom_vectors / full_vectors:
        Traces whose returned labels came from the reduced / full path.
    max_rel_error:
        Worst relative ``worst_droop`` error observed at the gate.
    """

    calls: int = 0
    validated: int = 0
    fallbacks: int = 0
    rom_vectors: int = 0
    full_vectors: int = 0
    max_rel_error: float = 0.0


def _normalise_columns(block: np.ndarray) -> np.ndarray:
    """Scale columns to unit norm (zero columns are left untouched)."""
    norms = np.linalg.norm(block, axis=0, keepdims=True)
    return block / np.where(norms > 0.0, norms, 1.0)


def _gram_truncate(block: np.ndarray, rank: int) -> np.ndarray:
    """Dominant ``rank``-dimensional orthonormal subspace of ``block``.

    Works on the (small) Gram matrix ``K^T K`` instead of a tall SVD — an
    ``O(N·W²)`` GEMM plus an ``O(W³)`` symmetric eigendecomposition, which is
    far cheaper than ``O(N·W²)``-with-large-constants LAPACK ``gesdd`` for
    the tall stacks the Krylov recurrence produces.  Columns are normalised
    first so the eigenvalue spectrum reflects directions, not scales;
    eigenvalues below ``_DROP_TOLERANCE`` times the largest are dropped as
    linearly dependent.  Deterministic (no randomised sketch).
    """
    if block.shape[1] == 0:
        return block
    normalised = _normalise_columns(block)
    gram = normalised.T @ normalised
    eigenvalues, eigenvectors = scipy.linalg.eigh(gram, check_finite=False)
    # eigh returns ascending order; walk from the top.
    top = eigenvalues[-1]
    if top <= 0.0:
        return block[:, :0]
    keep = min(rank, int((eigenvalues > top * _DROP_TOLERANCE).sum()))
    sel = slice(len(eigenvalues) - keep, len(eigenvalues))
    mixed = normalised @ (eigenvectors[:, sel] / np.sqrt(eigenvalues[sel]))
    # The Gram route loses a few digits of orthonormality; one thin QR
    # restores it to working precision for the reduced Cholesky.
    polished, _ = scipy.linalg.qr(mixed, mode="economic", check_finite=False)
    return np.ascontiguousarray(polished)


def _excitation_block(full: "FullOrderStrategy") -> np.ndarray:
    """The complete excitation-port block ``X = [B | E]``.

    Every load incidence column and every package-inductor port, so the
    level-0 moments span the response of *each* excitation individually;
    the rank truncation (not a lossy sketch) then decides what to keep.
    """
    mna = full.mna
    columns = [mna.load_incidence().toarray()]
    if mna.num_inductors:
        columns.append(mna.inductor_incidence().toarray())
    return np.concatenate(columns, axis=1)


def _auto_rank(num_ports: int, num_nodes: int) -> int:
    """Default basis size: half the port count, clamped to a sane band."""
    rank = max(_AUTO_RANK_FLOOR, (num_ports + 1) // 2)
    return min(rank, _AUTO_RANK_CAP, num_nodes)


class ReducedOrderStrategy(TransientSolverStrategy):
    """Moment-matching reduced-order integrator behind the solver seam.

    Built from (and sharing the factorisation of) a
    :class:`~repro.sim.transient.FullOrderStrategy` via :meth:`build`; the
    projected dense system is factored once and pre-applied to the companion
    recursion, then reused across every trace.  Results carry
    ``solver="rom"`` and agree with the full-order strategy to the gated
    tolerance on the worst-droop metric (``docs/solvers.md``).
    """

    name = "rom"

    def __init__(
        self,
        full: "FullOrderStrategy",
        options: ROMOptions,
        basis: np.ndarray,
        step_matrix: np.ndarray,
        load_gain: np.ndarray,
        inductor_gain: np.ndarray,
        inductor_projection: np.ndarray,
    ):
        self._full = full
        self._options = options
        self._basis = basis
        #: ``F = S_r⁻¹ D_r`` — the pre-applied reduced step matrix.
        self._step_matrix = step_matrix
        #: ``S_r⁻¹ B_r`` — pre-applied reduced load scatter.
        self._load_gain = load_gain
        #: ``S_r⁻¹ E_r`` — pre-applied reduced inductor scatter.
        self._ind_gain = inductor_gain
        #: ``E_r = (E^T V)^T`` — un-applied, for branch voltages ``E^T V z``.
        self._ind_proj = inductor_projection
        self._reconstruct_dtype = np.dtype(options.reconstruct_dtype)
        self._basis_recon = (
            basis
            if self._reconstruct_dtype == basis.dtype
            else basis.astype(self._reconstruct_dtype)
        )
        #: Cumulative gate statistics, updated by the engine's gate.
        self.stats = ROMRunStats()

    @classmethod
    def build(
        cls, full: "FullOrderStrategy", options: Optional[ROMOptions] = None
    ) -> "ReducedOrderStrategy":
        """Project the companion system of a full-order strategy.

        Runs the truncated block-Krylov recurrence against the full
        strategy's (already paid) factorisation, keeps the ``rank`` dominant
        directions of the moment stack, projects ``(S, D, B, E)`` onto the
        basis and Cholesky-factors + pre-applies the reduced system.
        Observed as ``sim.rom.build_seconds`` / ``sim.rom.builds`` and the
        ``sim.rom.build`` span; the kept basis size lands in the
        ``sim.rom.rank`` gauge.
        """
        options = options or ROMOptions()
        mna = full.mna
        build_started = time.perf_counter()
        ports = _excitation_block(full)
        rank = options.rank or _auto_rank(ports.shape[1], mna.num_nodes)
        rank = min(rank, mna.num_nodes)
        with obs.get_tracer().span(
            "sim.rom.build", nodes=mna.num_nodes, order=options.order, rank=rank
        ):
            cap_column = full.cap_companion[:, np.newaxis]
            moment = full.solver.solve_many(ports)
            levels = [_normalise_columns(moment)]
            for _ in range(options.order - 1):
                if moment.shape[1] > rank:
                    moment = _gram_truncate(moment, rank)
                if moment.shape[1] == 0:
                    break  # subspace exhausted (tiny designs)
                moment = full.solver.solve_many(cap_column * moment)
                levels.append(_normalise_columns(moment))
            basis = _gram_truncate(np.concatenate(levels, axis=1), rank)

            reduced = basis.T @ (full.system_matrix @ basis)
            reduced = 0.5 * (reduced + reduced.T)
            factor = scipy.linalg.cho_factor(reduced, lower=True, check_finite=False)
            cap_companion_r = (basis * full.cap_companion[:, np.newaxis]).T @ basis
            load_projection = np.ascontiguousarray((mna.load_incidence().T @ basis).T)
            if mna.num_inductors:
                inductor_projection = np.ascontiguousarray(
                    (mna.inductor_incidence().T @ basis).T
                )
            else:
                inductor_projection = np.empty((basis.shape[1], 0))
            # Pre-apply the reduced inverse once so the step loop is pure
            # GEMM — no per-step triangular solves.
            step_matrix = scipy.linalg.cho_solve(factor, cap_companion_r, check_finite=False)
            load_gain = scipy.linalg.cho_solve(factor, load_projection, check_finite=False)
            inductor_gain = scipy.linalg.cho_solve(
                factor, inductor_projection, check_finite=False
            )

        elapsed = time.perf_counter() - build_started
        obs.metrics().histogram("sim.rom.build_seconds").observe(elapsed)
        obs.metrics().counter("sim.rom.builds").inc()
        obs.metrics().gauge("sim.rom.rank").set(basis.shape[1])
        _LOG.info(
            "built ROM basis: %d nodes -> %d columns in %.3f s",
            mna.num_nodes,
            basis.shape[1],
            elapsed,
        )
        return cls(
            full,
            options,
            basis,
            step_matrix,
            load_gain,
            inductor_gain,
            inductor_projection,
        )

    @property
    def options(self) -> ROMOptions:
        """The ROM options the strategy was built with."""
        return self._options

    @property
    def rank(self) -> int:
        """Number of basis columns actually kept after rank truncation."""
        return int(self._basis.shape[1])

    @property
    def basis(self) -> np.ndarray:
        """The orthonormal projection basis ``V``, shape ``(N, r)``."""
        return self._basis

    def run(self, trace: CurrentTrace) -> TransientResult:
        """Integrate one trace in reduced coordinates (a block of one)."""
        return self.run_block([trace])[0]

    def run_block(self, traces: list[CurrentTrace]) -> list[TransientResult]:
        """Lockstep reduced-order integration of equal-length traces.

        Mirrors the full-order companion iteration exactly, restricted to the
        basis: the load drive of *all* stamps is pre-applied in one GEMM, the
        reduced state advances through a single ``r × r`` GEMM per stamp
        (``F = S_r⁻¹ D_r`` was pre-applied at build time), inductor branch
        currents stay exact, and node droops are reconstructed chunk-wise
        (one level-3 BLAS product per chunk, in
        :attr:`ROMOptions.reconstruct_dtype`) to accumulate the per-node
        maxima.
        """
        solve_started = time.perf_counter()
        full = self._full
        mna = full.mna
        options = full.options
        num_nodes = mna.num_nodes
        num_traces = len(traces)
        num_steps = traces[0].num_steps
        trapezoidal = options.method == "trapezoidal"
        basis = self._basis
        rank = basis.shape[1]
        currents = np.stack([trace.currents for trace in traces])  # (V, T, L)

        if options.initial_state == "dc":
            droop, inductor_current = full._dc_state_block(currents[:, 0, :])
        else:
            droop = np.zeros((num_nodes, num_traces))
            inductor_current = np.zeros((mna.num_inductors, num_traces))

        # Pre-applied load drive of every stamp: one GEMM for the whole block.
        flat = np.ascontiguousarray(currents.transpose(2, 1, 0)).reshape(
            mna.num_loads, num_steps * num_traces
        )
        drive = (self._load_gain @ flat).reshape(rank, num_steps, num_traces)

        state = basis.T @ droop  # reduced coordinates z with x ~= V z
        step_matrix = self._step_matrix
        ind_gain = self._ind_gain
        ind_proj = self._ind_proj
        ind_companion = full.ind_companion[:, np.newaxis]
        has_inductors = bool(mna.num_inductors)
        applied = step_matrix @ state  # F z, carried across steps
        cap_term = np.zeros((rank, num_traces))  # S_r⁻¹ c_r (trapezoidal only)
        branch_voltage = ind_proj.T @ state if has_inductors else None

        # The DC droop is known exactly — seed the maxima with it rather than
        # with its in-subspace projection.
        max_droop = droop.copy()
        worst_droop = droop.max(axis=0) if num_nodes else np.zeros(num_traces)
        worst_time_index = np.zeros(num_traces, dtype=int)
        stored: Optional[np.ndarray] = None
        if options.store_waveform:
            stored = np.empty((num_steps, num_nodes, num_traces))
            stored[0] = droop

        rdtype = self._reconstruct_dtype
        basis_r = self._basis_recon
        itemsize = rdtype.itemsize
        chunk_steps = max(
            1, int(_CHUNK_TARGET_BYTES // max(1, itemsize * num_nodes * num_traces))
        )
        pending: list[np.ndarray] = []
        pending_start = 1

        def flush() -> None:
            """Reconstruct the pending chunk and fold it into the maxima."""
            nonlocal pending, pending_start
            if not pending:
                return
            count = len(pending)
            stacked = np.stack(pending, axis=1).astype(rdtype, copy=False)  # (r, c, V)
            frames = (basis_r @ stacked.reshape(rank, count * num_traces)).reshape(
                num_nodes, count, num_traces
            )
            np.maximum(max_droop, frames.max(axis=1), out=max_droop)
            if num_nodes:
                step_worst = frames.max(axis=0)  # (c, V)
                chunk_max = step_worst.max(axis=0)
                chunk_arg = step_worst.argmax(axis=0)
                improved = chunk_max > worst_droop
                worst_droop[improved] = chunk_max[improved]
                worst_time_index[improved] = pending_start + chunk_arg[improved]
            if stored is not None:
                stored[pending_start:pending_start + count] = frames.transpose(1, 0, 2)
            pending_start += count
            pending = []

        for step in range(1, num_steps):
            # z' = F z + S_r⁻¹(c_r + B u_t - E h_t); ``applied`` carries F z.
            rhs = applied + drive[:, step, :]
            if trapezoidal:
                rhs += cap_term
            if has_inductors:
                if trapezoidal:
                    history = inductor_current + ind_companion * branch_voltage
                else:
                    history = inductor_current
                rhs -= ind_gain @ history
            new_applied = step_matrix @ rhs
            if has_inductors:
                branch_voltage = ind_proj.T @ rhs
                if trapezoidal:
                    inductor_current = history + ind_companion * branch_voltage
                else:
                    inductor_current = inductor_current + ind_companion * branch_voltage
            if trapezoidal:
                # c_r' = D_r (z' - z) - c_r, kept in pre-applied form.
                cap_term = new_applied - applied - cap_term
            state = rhs
            applied = new_applied
            pending.append(state)
            if len(pending) >= chunk_steps:
                flush()
        flush()

        final_droop = basis @ state  # (N, V)
        obs.metrics().histogram("sim.rom.solve_seconds").observe(
            time.perf_counter() - solve_started
        )
        results = []
        for column in range(num_traces):
            waveform = None
            if stored is not None:
                waveform = VoltageWaveform(stored[:, :, column].copy(), full._dt)
            results.append(
                TransientResult(
                    max_droop_per_node=np.asarray(max_droop[:, column], dtype=float).copy(),
                    final_droop=final_droop[:, column].copy(),
                    worst_droop=float(worst_droop[column]),
                    worst_time_index=int(worst_time_index[column]),
                    num_steps=num_steps,
                    dt=full._dt,
                    waveform=waveform,
                    solver=self.name,
                )
            )
        return results
