"""Sparse linear solvers for the PDN system matrix.

Dynamic PDN analysis is "a series of static analyses, where the system matrix
is the same but with different right-hand-side items" (Sec. 2 of the paper),
so the dominant cost is repeated solves against one SPD matrix.  This module
provides the solver back-ends used by the static and transient engines:

* :class:`DirectSolver` — sparse LU factorisation (SuperLU via scipy),
  factorise once, solve many times; the default for sign-off accuracy.
* :class:`CholeskySolver` — LL^T factorisation through a shifted LDL^T; kept
  as an alternative direct method that exploits symmetry.
* :class:`ConjugateGradientSolver` — Jacobi- or multigrid-preconditioned CG,
  the classic iterative choice for very large grids.

All solvers share the :class:`LinearSolver` interface so the simulation
engines and the solver benchmarks can switch between them freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils import check_finite, get_logger

_LOG = get_logger("sim.linear")


class LinearSolver(abc.ABC):
    """A reusable solver for ``A x = b`` with a fixed sparse SPD matrix."""

    def __init__(self, matrix: sp.spmatrix):
        matrix = matrix.tocsc()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        self._matrix = matrix

    @property
    def matrix(self) -> sp.csc_matrix:
        """The system matrix this solver was built for."""
        return self._matrix

    @property
    def size(self) -> int:
        """Number of unknowns."""
        return self._matrix.shape[0]

    @abc.abstractmethod
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` for a single right-hand side."""

    def solve_many(self, rhs_matrix: np.ndarray) -> np.ndarray:
        """Solve for several right-hand sides stacked as columns.

        Parameters
        ----------
        rhs_matrix:
            Either a single right-hand side of shape ``(n,)`` or a block of
            ``k`` right-hand sides stacked as columns, shape ``(n, k)``.

        Returns
        -------
        The solutions in the same layout as the input (``(n,)`` or
        ``(n, k)``).  Column ``j`` agrees with ``solve(rhs_matrix[:, j])``
        to solver rounding (see :class:`_FactorizedDirectSolver`).

        Iterative solvers fall back to a per-column loop (each column keeps
        its own convergence history); factorised direct solvers dispatch the
        whole block to one back-substitution call.
        """
        rhs_matrix = np.asarray(rhs_matrix, dtype=float)
        if rhs_matrix.ndim == 1:
            return self.solve(rhs_matrix)
        if rhs_matrix.ndim != 2 or rhs_matrix.shape[0] != self.size:
            raise ValueError(
                f"rhs_matrix must have shape ({self.size},) or ({self.size}, k), "
                f"got {rhs_matrix.shape}"
            )
        if rhs_matrix.shape[1] == 0:
            return rhs_matrix.copy()
        return np.column_stack([self.solve(rhs_matrix[:, j]) for j in range(rhs_matrix.shape[1])])

    def residual_norm(self, x: np.ndarray, rhs: np.ndarray) -> float:
        """Relative residual ``||A x - b|| / ||b||`` (0 when ``b`` is 0)."""
        rhs_norm = np.linalg.norm(rhs)
        if rhs_norm == 0.0:
            return float(np.linalg.norm(self._matrix @ x))
        return float(np.linalg.norm(self._matrix @ x - rhs) / rhs_norm)


class _FactorizedDirectSolver(LinearSolver):
    """Shared solve paths for solvers backed by a SuperLU factorisation.

    Subclasses set ``self._lu`` in their constructor.  Both the single- and
    multi-RHS paths go through the factorisation object directly, so a block
    of right-hand sides is always solved in **one** back-substitution call —
    never a per-column Python loop.  SuperLU back-substitutes the columns of
    a block independently of each other; ``solve_many(B)[:, j]`` equals
    ``solve(B[:, j])`` up to a few ULPs (the multi-RHS kernel may round
    differently than the single-RHS one — data-dependent, observed at the
    1e-17 level) and is *deterministic* for a given block, which is what the
    dataset factory's reproducibility contract builds on (see
    ``tests/sim/test_linear.py`` and ``docs/data-pipeline.md``).
    """

    _lu: spla.SuperLU

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` for one right-hand side of shape ``(n,)``."""
        rhs = np.asarray(rhs, dtype=float)
        check_finite(rhs, "rhs")
        return self._lu.solve(rhs)

    def solve_many(self, rhs_matrix: np.ndarray) -> np.ndarray:
        """Solve a whole RHS block ``(n, k)`` in a single factorised call.

        Falls through to :meth:`solve` for a 1-D input.  See
        :meth:`LinearSolver.solve_many` for the layout contract.
        """
        rhs_matrix = np.asarray(rhs_matrix, dtype=float)
        if rhs_matrix.ndim == 1:
            return self.solve(rhs_matrix)
        if rhs_matrix.ndim != 2 or rhs_matrix.shape[0] != self.size:
            raise ValueError(
                f"rhs_matrix must have shape ({self.size},) or ({self.size}, k), "
                f"got {rhs_matrix.shape}"
            )
        if rhs_matrix.shape[1] == 0:
            return rhs_matrix.copy()
        check_finite(rhs_matrix, "rhs_matrix")
        return self._lu.solve(rhs_matrix)


class DirectSolver(_FactorizedDirectSolver):
    """Sparse LU (SuperLU) factorisation; factor once, solve many times."""

    def __init__(self, matrix: sp.spmatrix):
        super().__init__(matrix)
        self._lu = spla.splu(self._matrix)


class CholeskySolver(_FactorizedDirectSolver):
    """Symmetric factorisation via SuperLU on the symmetrised system.

    scipy has no sparse Cholesky; we keep the symmetric permutation options of
    SuperLU (``diag_pivot_thresh=0`` with natural symmetric mode) which, for
    an SPD matrix, behaves like an LDL^T factorisation without pivoting.
    """

    def __init__(self, matrix: sp.spmatrix):
        super().__init__(matrix)
        self._lu = spla.splu(
            self._matrix,
            diag_pivot_thresh=0.0,
            permc_spec="MMD_AT_PLUS_A",
            options={"SymmetricMode": True},
        )


@dataclass
class IterativeStats:
    """Convergence bookkeeping for the most recent iterative solve."""

    iterations: int = 0
    converged: bool = True
    residual: float = 0.0


class ConjugateGradientSolver(LinearSolver):
    """Preconditioned conjugate gradients.

    Parameters
    ----------
    matrix:
        SPD system matrix.
    tolerance:
        Relative residual tolerance.
    max_iterations:
        Iteration cap; ``None`` lets scipy pick ``10 * n``.
    preconditioner:
        ``"jacobi"`` (default), ``"none"``, or a callable applying ``M^{-1}``.
    """

    def __init__(
        self,
        matrix: sp.spmatrix,
        tolerance: float = 1e-10,
        max_iterations: Optional[int] = None,
        preconditioner: str | Callable[[np.ndarray], np.ndarray] = "jacobi",
    ):
        super().__init__(matrix)
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.stats = IterativeStats()
        self._preconditioner = self._build_preconditioner(preconditioner)

    def _build_preconditioner(
        self, preconditioner: str | Callable[[np.ndarray], np.ndarray]
    ) -> Optional[spla.LinearOperator]:
        if callable(preconditioner):
            return spla.LinearOperator(self._matrix.shape, matvec=preconditioner)
        if preconditioner == "none":
            return None
        if preconditioner == "jacobi":
            diagonal = self._matrix.diagonal()
            if np.any(diagonal <= 0):
                raise ValueError("Jacobi preconditioner requires a positive diagonal")
            inverse_diagonal = 1.0 / diagonal
            return spla.LinearOperator(
                self._matrix.shape, matvec=lambda vector: inverse_diagonal * vector
            )
        raise ValueError(f"unknown preconditioner {preconditioner!r}")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        check_finite(rhs, "rhs")
        iteration_counter = {"count": 0}

        def callback(_):
            iteration_counter["count"] += 1

        solution, info = spla.cg(
            self._matrix,
            rhs,
            rtol=self.tolerance,
            maxiter=self.max_iterations,
            M=self._preconditioner,
            callback=callback,
        )
        self.stats = IterativeStats(
            iterations=iteration_counter["count"],
            converged=(info == 0),
            residual=self.residual_norm(solution, rhs),
        )
        if info != 0:
            _LOG.warning("CG did not converge (info=%s, residual=%.3e)", info, self.stats.residual)
        return solution


_SOLVER_REGISTRY: dict[str, type[LinearSolver]] = {
    "direct": DirectSolver,
    "cholesky": CholeskySolver,
    "cg": ConjugateGradientSolver,
}


def make_solver(matrix: sp.spmatrix, method: str = "direct", **kwargs) -> LinearSolver:
    """Create a solver by name (``"direct"``, ``"cholesky"``, ``"cg"``).

    The multigrid and random-walk solvers live in their own modules and are
    registered lazily to avoid import cycles.
    """
    if method == "multigrid":
        from repro.sim.multigrid import MultigridSolver

        return MultigridSolver(matrix, **kwargs)
    try:
        solver_class = _SOLVER_REGISTRY[method]
    except KeyError as error:
        known = sorted(_SOLVER_REGISTRY) + ["multigrid"]
        raise ValueError(f"unknown solver method {method!r}; expected one of {known}") from error
    return solver_class(matrix, **kwargs)


def solver_names() -> tuple[str, ...]:
    """Names accepted by :func:`make_solver`."""
    return tuple(sorted(_SOLVER_REGISTRY)) + ("multigrid",)
