"""Transient (dynamic) simulation of the PDN.

This is the reproduction's stand-in for the commercial dynamic sign-off
engine: it integrates ``C x' + G x = B i(t)`` over the test-vector trace with
a fixed time step, using companion models for capacitors and inductors so
that the system matrix is constant and a single sparse factorisation is
reused for every time stamp — exactly the "series of static analyses with the
same matrix" structure the paper describes (Sec. 2).

Backward Euler (default, L-stable) and the trapezoidal rule (second-order,
used to validate accuracy) are provided.

The integration itself sits behind a **solver-strategy seam**
(:class:`TransientSolverStrategy`): :class:`FullOrderStrategy` is the classic
full-order companion-model path described above, and
:class:`repro.sim.rom.ReducedOrderStrategy` replays the *same* companion
iteration in a small Krylov subspace (``solver_mode="rom"``), validated
against the full solver by a deterministic error gate (see
``docs/solvers.md``).  :class:`TransientEngine` routes :meth:`~TransientEngine.
run` and :meth:`~TransientEngine.run_many` through whichever strategy the
options select.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.pdn.stamps import INDUCTOR_SHORT_RESISTANCE, REFERENCE_NODE, MNASystem
from repro.sim.linear import LinearSolver, make_solver
from repro.sim.waveform import CurrentTrace, VoltageWaveform
from repro.utils import check_positive, get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.sim.rom import ReducedOrderStrategy, ROMOptions, ROMRunStats

_LOG = get_logger("sim.transient")

#: Supported integration methods.
INTEGRATION_METHODS = ("backward_euler", "trapezoidal")

#: Supported solver strategies (see ``docs/solvers.md``).
SOLVER_MODES = ("full", "rom")


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient engine.

    Attributes
    ----------
    method:
        ``"backward_euler"`` or ``"trapezoidal"``.
    initial_state:
        ``"dc"`` starts from the DC solution of the first time stamp
        (no artificial power-on transient); ``"zero"`` starts from rest.
    store_waveform:
        Keep the full ``(T, N)`` droop waveform.  Worst-case noise analysis
        only needs the running maximum, so this defaults to off.
    solver_method:
        Linear solver used for the (single) factorised system and for the
        DC initial-condition solves.
    solver_mode:
        ``"full"`` integrates the full-order companion system
        (:class:`FullOrderStrategy`, the default); ``"rom"`` integrates the
        Krylov reduced-order projection
        (:class:`repro.sim.rom.ReducedOrderStrategy`) with a gated fallback
        to the full solver.
    rom:
        Reduced-order options (:class:`repro.sim.rom.ROMOptions`); only
        meaningful with ``solver_mode="rom"``, where ``None`` means the
        defaults.
    """

    method: str = "backward_euler"
    initial_state: str = "dc"
    store_waveform: bool = False
    solver_method: str = "direct"
    solver_mode: str = "full"
    rom: Optional["ROMOptions"] = None

    def __post_init__(self) -> None:
        if self.method not in INTEGRATION_METHODS:
            raise ValueError(
                f"unknown integration method {self.method!r}; expected one of {INTEGRATION_METHODS}"
            )
        if self.initial_state not in ("dc", "zero"):
            raise ValueError(f"initial_state must be 'dc' or 'zero', got {self.initial_state!r}")
        if self.solver_mode not in SOLVER_MODES:
            raise ValueError(
                f"unknown solver mode {self.solver_mode!r}; expected one of {SOLVER_MODES}"
            )
        if self.solver_mode == "rom":
            from repro.sim.rom import ROMOptions

            if self.rom is None:
                object.__setattr__(self, "rom", ROMOptions())
            elif not isinstance(self.rom, ROMOptions):
                raise TypeError(f"rom must be a ROMOptions, got {type(self.rom).__name__}")
        elif self.rom is not None:
            raise ValueError("rom options require solver_mode='rom'")


@dataclass
class TransientResult:
    """Outcome of one transient run.

    Attributes
    ----------
    max_droop_per_node:
        Maximum droop over the whole trace for every MNA node (V).
    final_droop:
        Droop at the final time stamp (useful for chained traces).
    worst_droop:
        The single worst droop over all nodes and stamps (Eq. 1).
    worst_time_index:
        Time-stamp index at which ``worst_droop`` occurred.
    num_steps / dt:
        Trace length and step used.
    waveform:
        Full waveform, only when ``store_waveform`` was requested.
    solver:
        Name of the strategy that produced this result (``"full"`` or
        ``"rom"``) — in gated ROM runs the validation sample comes back
        ``"full"``.
    """

    max_droop_per_node: np.ndarray
    final_droop: np.ndarray
    worst_droop: float
    worst_time_index: int
    num_steps: int
    dt: float
    waveform: Optional[VoltageWaveform] = None
    solver: str = "full"


class TransientSolverStrategy(abc.ABC):
    """Interface between :class:`TransientEngine` and a concrete integrator.

    A strategy owns whatever factorisations or projection bases it needs and
    turns current traces into :class:`TransientResult` objects.  The engine
    handles trace validation, batching/grouping and (in ROM mode) the error
    gate; strategies only integrate.
    """

    #: Short strategy name stamped into :attr:`TransientResult.solver`.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, trace: CurrentTrace) -> TransientResult:
        """Integrate one (already validated) current trace."""

    @abc.abstractmethod
    def run_block(self, traces: list[CurrentTrace]) -> list[TransientResult]:
        """Integrate equal-length traces in lockstep (one column each)."""


class FullOrderStrategy(TransientSolverStrategy):
    """The full-order companion-model integrator (the classic path).

    Building the strategy assembles and factorises the companion system
    ``S = G + G_L(dt) + cap_factor * C / dt`` once; every run afterwards is
    back-substitution against that factorisation.  This is the reference
    every other strategy is validated against: its results define the
    ground-truth labels of the corpus format.
    """

    name = "full"

    def __init__(self, mna: MNASystem, dt: float, options: TransientOptions):
        self._mna = mna
        self._dt = dt
        self._options = options

        if options.method == "backward_euler":
            cap_factor = 1.0
            ind_factor = 1.0
        else:  # trapezoidal
            cap_factor = 2.0
            ind_factor = 0.5

        self._cap_companion = cap_factor * mna.cap_diag / dt
        if mna.num_inductors:
            self._ind_companion = ind_factor * dt / mna.ind_value
        else:
            self._ind_companion = np.empty(0)

        system = mna.conductance_with_inductor_branches(self._ind_companion)
        system = system + sp.diags(self._cap_companion, format="csc")
        self._system = system.tocsc()
        factor_started = time.perf_counter()
        self._solver: LinearSolver = make_solver(self._system, options.solver_method)
        # The factor/solve split: building the strategy pays the (single)
        # sparse factorisation; every run() afterwards is back-substitution.
        obs.metrics().histogram("sim.factor_seconds").observe(
            time.perf_counter() - factor_started
        )

        # Static solver for DC initial conditions (built lazily).
        self._static_solver: Optional[LinearSolver] = None

    @property
    def mna(self) -> MNASystem:
        """The MNA system being integrated."""
        return self._mna

    @property
    def options(self) -> TransientOptions:
        """The option set the strategy was built with."""
        return self._options

    @property
    def solver(self) -> LinearSolver:
        """The factorised companion-system solver (shared with ROM builds)."""
        return self._solver

    @property
    def system_matrix(self) -> sp.csc_matrix:
        """The assembled companion system matrix ``S`` (CSC)."""
        return self._system

    @property
    def cap_companion(self) -> np.ndarray:
        """Per-node capacitor companion conductance ``cap_factor * C / dt``."""
        return self._cap_companion

    @property
    def ind_companion(self) -> np.ndarray:
        """Per-branch inductor companion conductance ``ind_factor * dt / L``."""
        return self._ind_companion

    def _static(self) -> LinearSolver:
        """The lazily built static (DC) solver shared by all initial states."""
        if self._static_solver is None:
            self._static_solver = make_solver(
                self._mna.static_conductance(), self._options.solver_method
            )
        return self._static_solver

    def _dc_state(self, load_currents: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """DC droop and inductor branch currents for given load currents."""
        droop = self._static().solve(self._mna.load_vector(load_currents))
        if self._mna.num_inductors:
            v_a = droop[self._mna.ind_a]
            v_b = np.where(
                self._mna.ind_b == REFERENCE_NODE, 0.0, droop[np.maximum(self._mna.ind_b, 0)]
            )
            branch_current = (v_a - v_b) / INDUCTOR_SHORT_RESISTANCE
        else:
            branch_current = np.empty(0)
        return droop, branch_current

    def _dc_state_block(self, load_currents: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Block form of :meth:`_dc_state`.

        Parameters
        ----------
        load_currents:
            Per-trace first-stamp currents, shape ``(V, L)``.

        Returns
        -------
        ``(droop, branch_current)`` with one column per trace: shapes
        ``(N, V)`` and ``(num_inductors, V)``.
        """
        num_traces = load_currents.shape[0]
        droop = self._static().solve_many(self._mna.load_vector_block(load_currents))
        if self._mna.num_inductors:
            to_ref = (self._mna.ind_b == REFERENCE_NODE)[:, np.newaxis]
            v_a = droop[self._mna.ind_a]
            v_b = np.where(to_ref, 0.0, droop[np.maximum(self._mna.ind_b, 0)])
            branch_current = (v_a - v_b) / INDUCTOR_SHORT_RESISTANCE
        else:
            branch_current = np.empty((0, num_traces))
        return droop, branch_current

    def run(self, trace: CurrentTrace) -> TransientResult:
        """Integrate the system over one current trace."""
        solve_started = time.perf_counter()

        mna = self._mna
        options = self._options
        num_nodes = mna.num_nodes
        trapezoidal = options.method == "trapezoidal"

        if options.initial_state == "dc":
            droop, inductor_current = self._dc_state(trace.currents[0])
        else:
            droop = np.zeros(num_nodes)
            inductor_current = np.zeros(mna.num_inductors)
        cap_current = np.zeros(num_nodes)  # only used by the trapezoidal rule

        max_droop = droop.copy()
        worst_droop = float(np.max(droop)) if num_nodes else 0.0
        worst_time_index = 0
        stored: Optional[np.ndarray] = None
        if options.store_waveform:
            stored = np.empty((trace.num_steps, num_nodes))
            stored[0] = droop

        ind_a = mna.ind_a
        ind_b = mna.ind_b
        ind_to_ref = ind_b == REFERENCE_NODE
        ind_b_safe = np.where(ind_to_ref, 0, ind_b)

        for step in range(1, trace.num_steps):
            rhs = mna.load_vector(trace.currents[step])
            rhs += self._cap_companion * droop
            if trapezoidal:
                rhs += cap_current
            if mna.num_inductors:
                if trapezoidal:
                    v_ab = droop[ind_a] - np.where(ind_to_ref, 0.0, droop[ind_b_safe])
                    history = inductor_current + self._ind_companion * v_ab
                else:
                    history = inductor_current
                np.subtract.at(rhs, ind_a, history)
                if np.any(~ind_to_ref):
                    np.add.at(rhs, ind_b_safe[~ind_to_ref], history[~ind_to_ref])

            new_droop = self._solver.solve(rhs)

            if mna.num_inductors:
                v_ab_new = new_droop[ind_a] - np.where(ind_to_ref, 0.0, new_droop[ind_b_safe])
                if trapezoidal:
                    inductor_current = history + self._ind_companion * v_ab_new
                else:
                    inductor_current = inductor_current + self._ind_companion * v_ab_new
            if trapezoidal:
                cap_current = self._cap_companion * (new_droop - droop) - cap_current

            droop = new_droop
            np.maximum(max_droop, droop, out=max_droop)
            step_worst = float(np.max(droop))
            if step_worst > worst_droop:
                worst_droop = step_worst
                worst_time_index = step
            if stored is not None:
                stored[step] = droop

        waveform = None
        if stored is not None:
            waveform = VoltageWaveform(stored, self._dt)
        obs.metrics().histogram("sim.solve_seconds").observe(
            time.perf_counter() - solve_started
        )
        return TransientResult(
            max_droop_per_node=max_droop,
            final_droop=droop,
            worst_droop=worst_droop,
            worst_time_index=worst_time_index,
            num_steps=trace.num_steps,
            dt=self._dt,
            waveform=waveform,
            solver=self.name,
        )

    def run_block(self, traces: list[CurrentTrace]) -> list[TransientResult]:
        """Lockstep integration of equal-length traces (one column each)."""
        solve_started = time.perf_counter()
        mna = self._mna
        options = self._options
        num_nodes = mna.num_nodes
        num_traces = len(traces)
        num_steps = traces[0].num_steps
        trapezoidal = options.method == "trapezoidal"
        currents = np.stack([trace.currents for trace in traces])  # (V, T, L)

        if options.initial_state == "dc":
            droop, inductor_current = self._dc_state_block(currents[:, 0, :])
        else:
            droop = np.zeros((num_nodes, num_traces))
            inductor_current = np.zeros((mna.num_inductors, num_traces))
        cap_current = np.zeros((num_nodes, num_traces))

        max_droop = droop.copy()
        if num_nodes:
            worst_droop = droop.max(axis=0)
        else:
            worst_droop = np.zeros(num_traces)
        worst_time_index = np.zeros(num_traces, dtype=int)
        stored: Optional[np.ndarray] = None
        if options.store_waveform:
            stored = np.empty((num_steps, num_nodes, num_traces))
            stored[0] = droop

        cap_companion = self._cap_companion[:, np.newaxis]
        ind_companion = self._ind_companion[:, np.newaxis]
        ind_a = mna.ind_a
        ind_b = mna.ind_b
        ind_to_ref = ind_b == REFERENCE_NODE
        ind_b_safe = np.where(ind_to_ref, 0, ind_b)
        ind_to_ref_col = ind_to_ref[:, np.newaxis]

        # Scatter fast paths: when indices are unique (the common case —
        # loads rarely share a node, package inductors never do), plain
        # fancy-indexed assignment replaces the much slower ``np.ufunc.at``
        # with bit-identical results.
        load_nodes = mna.load_nodes
        unique_loads = np.unique(load_nodes).size == load_nodes.size
        unique_inductors = np.unique(ind_a).size == ind_a.size
        any_internal_ind = bool(np.any(~ind_to_ref))
        # (T, L, V) layout makes the per-step slice contiguous.
        step_currents = np.ascontiguousarray(currents.transpose(1, 2, 0))
        rhs = np.empty((num_nodes, num_traces))

        for step in range(1, num_steps):
            rhs.fill(0.0)
            if unique_loads:
                rhs[load_nodes] = step_currents[step]
            else:
                np.add.at(rhs, load_nodes, step_currents[step])
            rhs += cap_companion * droop
            if trapezoidal:
                rhs += cap_current
            if mna.num_inductors:
                if trapezoidal:
                    v_ab = droop[ind_a] - np.where(ind_to_ref_col, 0.0, droop[ind_b_safe])
                    history = inductor_current + ind_companion * v_ab
                else:
                    history = inductor_current
                if unique_inductors:
                    rhs[ind_a] -= history
                else:
                    np.subtract.at(rhs, ind_a, history)
                if any_internal_ind:
                    np.add.at(rhs, ind_b_safe[~ind_to_ref], history[~ind_to_ref])

            new_droop = self._solver.solve_many(rhs)

            if mna.num_inductors:
                v_ab_new = new_droop[ind_a] - np.where(
                    ind_to_ref_col, 0.0, new_droop[ind_b_safe]
                )
                if trapezoidal:
                    inductor_current = history + ind_companion * v_ab_new
                else:
                    inductor_current = inductor_current + ind_companion * v_ab_new
            if trapezoidal:
                cap_current = cap_companion * (new_droop - droop) - cap_current

            droop = new_droop
            np.maximum(max_droop, droop, out=max_droop)
            if num_nodes:
                step_worst = droop.max(axis=0)
                improved = step_worst > worst_droop
                worst_droop[improved] = step_worst[improved]
                worst_time_index[improved] = step
            if stored is not None:
                stored[step] = droop

        obs.metrics().histogram("sim.solve_seconds").observe(
            time.perf_counter() - solve_started
        )
        results = []
        for column in range(num_traces):
            waveform = None
            if stored is not None:
                waveform = VoltageWaveform(stored[:, :, column].copy(), self._dt)
            results.append(
                TransientResult(
                    max_droop_per_node=max_droop[:, column].copy(),
                    final_droop=droop[:, column].copy(),
                    worst_droop=float(worst_droop[column]),
                    worst_time_index=int(worst_time_index[column]),
                    num_steps=num_steps,
                    dt=self._dt,
                    waveform=waveform,
                    solver=self.name,
                )
            )
        return results


class TransientEngine:
    """Reusable transient integrator bound to one MNA system and time step.

    Building the engine factorises the companion-model system matrix; calling
    :meth:`run` with different current traces reuses that factorisation, which
    is how repeated worst-case validations amortise their cost.

    With ``solver_mode="rom"`` the engine additionally builds the Krylov
    reduced-order projection (:mod:`repro.sim.rom`) from that same
    factorisation and routes integration through it; :meth:`run_many` then
    validates a deterministic sample of every batch against the full-order
    path and falls back wholesale when the ROM misses the pinned
    ``worst_droop`` tolerance (see ``docs/solvers.md``).
    """

    def __init__(
        self,
        mna: MNASystem,
        dt: float,
        options: TransientOptions = TransientOptions(),
    ):
        check_positive(dt, "dt")
        self._mna = mna
        self._dt = dt
        self._options = options

        self._full = FullOrderStrategy(mna, dt, options)
        self._rom: Optional["ReducedOrderStrategy"] = None
        if options.solver_mode == "rom":
            from repro.sim.rom import ReducedOrderStrategy

            self._rom = ReducedOrderStrategy.build(self._full, options.rom)

    @property
    def dt(self) -> float:
        """Integration time step in seconds."""
        return self._dt

    @property
    def options(self) -> TransientOptions:
        """The option set the engine was built with."""
        return self._options

    @property
    def mna(self) -> MNASystem:
        """The MNA system being integrated."""
        return self._mna

    @property
    def strategy(self) -> TransientSolverStrategy:
        """The active integration strategy (full-order or ROM)."""
        return self._rom if self._rom is not None else self._full

    @property
    def full_order(self) -> FullOrderStrategy:
        """The full-order strategy (always built; the ROM's reference)."""
        return self._full

    @property
    def rom_stats(self) -> Optional["ROMRunStats"]:
        """Gate statistics of the ROM strategy (``None`` in full mode)."""
        return self._rom.stats if self._rom is not None else None

    def _check_trace(self, trace: CurrentTrace) -> None:
        """Validate one trace against the engine's dt and load count."""
        if not np.isclose(trace.dt, self._dt, rtol=1e-9, atol=0.0):
            raise ValueError(
                f"trace dt {trace.dt} does not match engine dt {self._dt}; "
                "build a new engine for a different time step"
            )
        if trace.num_loads != self._mna.num_loads:
            raise ValueError(
                f"trace has {trace.num_loads} loads but the design has {self._mna.num_loads}"
            )

    def run(self, trace: CurrentTrace) -> TransientResult:
        """Integrate the system over a current trace.

        The trace's ``dt`` must match the engine's ``dt`` (the factorisation
        depends on it).  In ROM mode the single-trace path is *ungated* —
        the error gate needs a batch to sample from; use :meth:`run_many`
        for validated reduced-order labels.
        """
        self._check_trace(trace)
        return self.strategy.run(trace)

    # ------------------------------------------------------------------ #
    # lockstep block integration
    # ------------------------------------------------------------------ #

    def run_many(
        self,
        traces: Sequence[CurrentTrace],
        batch_size: Optional[int] = None,
    ) -> list[TransientResult]:
        """Integrate several traces in lockstep through one factorisation.

        Dynamic PDN analysis is a series of static solves against one
        matrix; this is the block-RHS version of that observation.  Traces
        are grouped by length and each group advances through time together:
        at every stamp the per-trace right-hand sides are stacked as columns
        and handed to the solver's block back-substitution
        (:meth:`~repro.sim.linear.LinearSolver.solve_many`) in a **single**
        call, so the per-solve overhead — and all per-step Python work — is
        amortised across the whole batch.  This is the hot path of the
        dataset factory (:mod:`repro.datagen`).

        Column back-substitutions are independent inside SuperLU: each
        returned :class:`TransientResult` agrees with what :meth:`run`
        produces for the same trace to solver rounding (usually bit-equal;
        at worst a few ULPs, because the multi-RHS kernel may round
        differently), and results are fully deterministic for a given batch
        decomposition (asserted by ``tests/sim/test_transient.py``).

        In ROM mode every call is **gated**: a deterministic sample of the
        traces (:attr:`repro.sim.rom.ROMOptions.validate_vectors`, spread
        evenly over the call) is also integrated full-order; when the ROM's
        ``worst_droop`` deviates beyond
        :attr:`~repro.sim.rom.ROMOptions.tolerance` on any sampled trace the
        whole call falls back to the full-order strategy (recorded in
        :attr:`rom_stats` and the ``sim.rom.fallbacks`` counter).  Sampled
        traces always return their full-order results.

        Parameters
        ----------
        traces:
            Current traces; each must match the engine's ``dt`` and the
            design's load count.  Lengths may differ (equal lengths batch
            best).
        batch_size:
            Maximum number of traces integrated per lockstep block — bounds
            the ``(N, batch_size)`` working set.  ``None`` integrates each
            equal-length group as one block.

        Returns
        -------
        One :class:`TransientResult` per trace, in input order.
        """
        traces = list(traces)
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        for trace in traces:
            self._check_trace(trace)
        if not traces:
            return []
        if self._rom is None:
            return self._run_groups(traces, batch_size, self._full)
        return self._run_gated(traces, batch_size)

    def _run_groups(
        self,
        traces: list[CurrentTrace],
        batch_size: Optional[int],
        strategy: TransientSolverStrategy,
    ) -> list[TransientResult]:
        """Group already-validated traces by length and run lockstep blocks."""
        results: list[Optional[TransientResult]] = [None] * len(traces)
        groups: dict[int, list[int]] = {}
        for index, trace in enumerate(traces):
            groups.setdefault(trace.num_steps, []).append(index)
        for indices in groups.values():
            limit = batch_size or len(indices)
            for start in range(0, len(indices), limit):
                chunk = indices[start:start + limit]
                for index, result in zip(chunk, strategy.run_block([traces[i] for i in chunk])):
                    results[index] = result
        return results  # type: ignore[return-value]

    def _validation_indices(self, count: int) -> list[int]:
        """Deterministic evenly-spread sample of trace indices to validate."""
        assert self._rom is not None
        sample = min(self._rom.options.validate_vectors, count)
        if sample <= 0:
            return []
        if sample == 1:
            return [0]
        return sorted({round(i * (count - 1) / (sample - 1)) for i in range(sample)})

    def _run_gated(
        self, traces: list[CurrentTrace], batch_size: Optional[int]
    ) -> list[TransientResult]:
        """ROM integration with the deterministic full-order error gate."""
        rom = self._rom
        assert rom is not None
        results = self._run_groups(traces, batch_size, rom)
        indices = self._validation_indices(len(traces))
        if not indices:
            rom.stats.rom_vectors += len(traces)
            return results

        reference = self._run_groups([traces[i] for i in indices], batch_size, self._full)
        error = 0.0
        for index, full_result in zip(indices, reference):
            denominator = max(abs(full_result.worst_droop), rom.options.droop_floor)
            error = max(
                error, abs(results[index].worst_droop - full_result.worst_droop) / denominator
            )
        rom.stats.calls += 1
        rom.stats.validated += len(indices)
        rom.stats.max_rel_error = max(rom.stats.max_rel_error, error)
        obs.metrics().counter("sim.rom.validations").inc(len(indices))

        if error <= rom.options.tolerance:
            # Accept: the sampled traces keep their (free, exact) full-order
            # results, everything else stays reduced-order.
            for index, full_result in zip(indices, reference):
                results[index] = full_result
            rom.stats.rom_vectors += len(traces) - len(indices)
            rom.stats.full_vectors += len(indices)
            return results

        rom.stats.fallbacks += 1
        rom.stats.full_vectors += len(traces)
        obs.metrics().counter("sim.rom.fallbacks").inc()
        _LOG.warning(
            "ROM gate failed (rel. worst_droop error %.3g > tolerance %.3g); "
            "falling back to the full-order solver for this batch of %d traces",
            error,
            rom.options.tolerance,
            len(traces),
        )
        remaining = [i for i in range(len(traces)) if i not in set(indices)]
        recomputed = self._run_groups([traces[i] for i in remaining], batch_size, self._full)
        for index, full_result in zip(indices, reference):
            results[index] = full_result
        for index, full_result in zip(remaining, recomputed):
            results[index] = full_result
        return results
