"""Transient (dynamic) simulation of the PDN.

This is the reproduction's stand-in for the commercial dynamic sign-off
engine: it integrates ``C x' + G x = B i(t)`` over the test-vector trace with
a fixed time step, using companion models for capacitors and inductors so
that the system matrix is constant and a single sparse factorisation is
reused for every time stamp — exactly the "series of static analyses with the
same matrix" structure the paper describes (Sec. 2).

Backward Euler (default, L-stable) and the trapezoidal rule (second-order,
used to validate accuracy) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.pdn.stamps import INDUCTOR_SHORT_RESISTANCE, REFERENCE_NODE, MNASystem
from repro.sim.linear import LinearSolver, make_solver
from repro.sim.waveform import CurrentTrace, VoltageWaveform
from repro.utils import check_positive, get_logger

_LOG = get_logger("sim.transient")

#: Supported integration methods.
INTEGRATION_METHODS = ("backward_euler", "trapezoidal")


@dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient engine.

    Attributes
    ----------
    method:
        ``"backward_euler"`` or ``"trapezoidal"``.
    initial_state:
        ``"dc"`` starts from the DC solution of the first time stamp
        (no artificial power-on transient); ``"zero"`` starts from rest.
    store_waveform:
        Keep the full ``(T, N)`` droop waveform.  Worst-case noise analysis
        only needs the running maximum, so this defaults to off.
    solver_method:
        Linear solver used for the (single) factorised system.
    """

    method: str = "backward_euler"
    initial_state: str = "dc"
    store_waveform: bool = False
    solver_method: str = "direct"

    def __post_init__(self) -> None:
        if self.method not in INTEGRATION_METHODS:
            raise ValueError(
                f"unknown integration method {self.method!r}; expected one of {INTEGRATION_METHODS}"
            )
        if self.initial_state not in ("dc", "zero"):
            raise ValueError(f"initial_state must be 'dc' or 'zero', got {self.initial_state!r}")


@dataclass
class TransientResult:
    """Outcome of one transient run.

    Attributes
    ----------
    max_droop_per_node:
        Maximum droop over the whole trace for every MNA node (V).
    final_droop:
        Droop at the final time stamp (useful for chained traces).
    worst_droop:
        The single worst droop over all nodes and stamps (Eq. 1).
    worst_time_index:
        Time-stamp index at which ``worst_droop`` occurred.
    num_steps / dt:
        Trace length and step used.
    waveform:
        Full waveform, only when ``store_waveform`` was requested.
    """

    max_droop_per_node: np.ndarray
    final_droop: np.ndarray
    worst_droop: float
    worst_time_index: int
    num_steps: int
    dt: float
    waveform: Optional[VoltageWaveform] = None


class TransientEngine:
    """Reusable transient integrator bound to one MNA system and time step.

    Building the engine factorises the companion-model system matrix; calling
    :meth:`run` with different current traces reuses that factorisation, which
    is how repeated worst-case validations amortise their cost.
    """

    def __init__(
        self,
        mna: MNASystem,
        dt: float,
        options: TransientOptions = TransientOptions(),
    ):
        check_positive(dt, "dt")
        self._mna = mna
        self._dt = dt
        self._options = options

        if options.method == "backward_euler":
            cap_factor = 1.0
            ind_factor = 1.0
        else:  # trapezoidal
            cap_factor = 2.0
            ind_factor = 0.5

        self._cap_companion = cap_factor * mna.cap_diag / dt
        if mna.num_inductors:
            self._ind_companion = ind_factor * dt / mna.ind_value
        else:
            self._ind_companion = np.empty(0)

        system = mna.conductance_with_inductor_branches(self._ind_companion)
        system = system + sp.diags(self._cap_companion, format="csc")
        self._solver: LinearSolver = make_solver(system.tocsc(), options.solver_method)

        # Static solver for DC initial conditions (built lazily).
        self._static_solver: Optional[LinearSolver] = None

    @property
    def dt(self) -> float:
        """Integration time step in seconds."""
        return self._dt

    @property
    def options(self) -> TransientOptions:
        """The option set the engine was built with."""
        return self._options

    @property
    def mna(self) -> MNASystem:
        """The MNA system being integrated."""
        return self._mna

    def _dc_state(self, load_currents: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """DC droop and inductor branch currents for given load currents."""
        if self._static_solver is None:
            self._static_solver = make_solver(self._mna.static_conductance(), "direct")
        droop = self._static_solver.solve(self._mna.load_vector(load_currents))
        if self._mna.num_inductors:
            v_a = droop[self._mna.ind_a]
            v_b = np.where(
                self._mna.ind_b == REFERENCE_NODE, 0.0, droop[np.maximum(self._mna.ind_b, 0)]
            )
            branch_current = (v_a - v_b) / INDUCTOR_SHORT_RESISTANCE
        else:
            branch_current = np.empty(0)
        return droop, branch_current

    def run(self, trace: CurrentTrace) -> TransientResult:
        """Integrate the system over a current trace.

        The trace's ``dt`` must match the engine's ``dt`` (the factorisation
        depends on it).
        """
        if not np.isclose(trace.dt, self._dt, rtol=1e-9, atol=0.0):
            raise ValueError(
                f"trace dt {trace.dt} does not match engine dt {self._dt}; "
                "build a new engine for a different time step"
            )
        if trace.num_loads != self._mna.num_loads:
            raise ValueError(
                f"trace has {trace.num_loads} loads but the design has {self._mna.num_loads}"
            )

        mna = self._mna
        options = self._options
        num_nodes = mna.num_nodes
        trapezoidal = options.method == "trapezoidal"

        if options.initial_state == "dc":
            droop, inductor_current = self._dc_state(trace.currents[0])
        else:
            droop = np.zeros(num_nodes)
            inductor_current = np.zeros(mna.num_inductors)
        cap_current = np.zeros(num_nodes)  # only used by the trapezoidal rule

        max_droop = droop.copy()
        worst_droop = float(np.max(droop)) if num_nodes else 0.0
        worst_time_index = 0
        stored = [droop.copy()] if options.store_waveform else None

        ind_a = mna.ind_a
        ind_b = mna.ind_b
        ind_to_ref = ind_b == REFERENCE_NODE
        ind_b_safe = np.where(ind_to_ref, 0, ind_b)

        for step in range(1, trace.num_steps):
            rhs = mna.load_vector(trace.currents[step])
            rhs += self._cap_companion * droop
            if trapezoidal:
                rhs += cap_current
            if mna.num_inductors:
                if trapezoidal:
                    v_ab = droop[ind_a] - np.where(ind_to_ref, 0.0, droop[ind_b_safe])
                    history = inductor_current + self._ind_companion * v_ab
                else:
                    history = inductor_current
                np.subtract.at(rhs, ind_a, history)
                if np.any(~ind_to_ref):
                    np.add.at(rhs, ind_b_safe[~ind_to_ref], history[~ind_to_ref])

            new_droop = self._solver.solve(rhs)

            if mna.num_inductors:
                v_ab_new = new_droop[ind_a] - np.where(ind_to_ref, 0.0, new_droop[ind_b_safe])
                if trapezoidal:
                    inductor_current = history + self._ind_companion * v_ab_new
                else:
                    inductor_current = inductor_current + self._ind_companion * v_ab_new
            if trapezoidal:
                cap_current = self._cap_companion * (new_droop - droop) - cap_current

            droop = new_droop
            np.maximum(max_droop, droop, out=max_droop)
            step_worst = float(np.max(droop))
            if step_worst > worst_droop:
                worst_droop = step_worst
                worst_time_index = step
            if stored is not None:
                stored.append(droop.copy())

        waveform = None
        if stored is not None:
            waveform = VoltageWaveform(np.vstack(stored), self._dt)
        return TransientResult(
            max_droop_per_node=max_droop,
            final_droop=droop,
            worst_droop=worst_droop,
            worst_time_index=worst_time_index,
            num_steps=trace.num_steps,
            dt=self._dt,
            waveform=waveform,
        )
