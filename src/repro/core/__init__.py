"""The paper's primary contribution: the worst-case noise prediction framework.

Contains the three-subnet CNN (Fig. 3), the training procedure with the
training-set expansion strategy (Sec. 3.4.4), the inference-side predictor,
the accuracy metrics of Tables 2/3, and the end-to-end pipeline of Fig. 2.
"""

from repro.core.config import ModelConfig, PipelineConfig, TrainingConfig
from repro.core.subnets import (
    CurrentFusionNet,
    DistanceReductionNet,
    EncoderDecoder,
    NoisePredictionNet,
)
from repro.core.model import WorstCaseNoiseNet
from repro.core.metrics import (
    AccuracyReport,
    absolute_error,
    evaluate_predictions,
    hotspot_missing_rate,
    hotspot_precision_recall,
    relative_error,
    roc_auc,
)
from repro.core.training import NoiseModelTrainer, TrainingHistory, TrainingResult
from repro.core.inference import NoisePredictor, PredictionResult
from repro.core.pipeline import FrameworkResult, RuntimeComparison, WorstCaseNoiseFramework

__all__ = [
    "ModelConfig",
    "TrainingConfig",
    "PipelineConfig",
    "DistanceReductionNet",
    "CurrentFusionNet",
    "NoisePredictionNet",
    "EncoderDecoder",
    "WorstCaseNoiseNet",
    "AccuracyReport",
    "absolute_error",
    "relative_error",
    "hotspot_missing_rate",
    "hotspot_precision_recall",
    "roc_auc",
    "evaluate_predictions",
    "NoiseModelTrainer",
    "TrainingHistory",
    "TrainingResult",
    "NoisePredictor",
    "PredictionResult",
    "FrameworkResult",
    "RuntimeComparison",
    "WorstCaseNoiseFramework",
]
