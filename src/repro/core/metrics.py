"""Accuracy metrics used in the paper's evaluation (Tables 2 and 3).

For every test vector the model predicts a worst-case noise map; the paper
reports, over all tiles of all test vectors:

* mean / 99th-percentile / maximum absolute error (AE, in mV),
* mean / 99th-percentile / maximum relative error (RE, in %),
* the hotspot *missing rate* — the fraction of ground-truth hotspot tiles the
  prediction fails to flag,
* the ROC AUC of hotspot classification (used in the PowerNet comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils import check_positive


def absolute_error(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Elementwise absolute error ``|v_hat - v|`` (same shape as the inputs)."""
    predicted = np.asarray(predicted, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if predicted.shape != truth.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {truth.shape}")
    return np.abs(predicted - truth)


def relative_error(
    predicted: np.ndarray, truth: np.ndarray, floor: float = 1e-6
) -> np.ndarray:
    """Elementwise relative error ``|v_hat - v| / max(v, floor)``.

    ``floor`` (volts) guards against division by tiles with essentially zero
    noise; the paper notes that its largest relative errors come precisely
    from tiles with very small worst-case noise.
    """
    check_positive(floor, "floor")
    truth = np.asarray(truth, dtype=float)
    return absolute_error(predicted, truth) / np.maximum(truth, floor)


def hotspot_missing_rate(
    predicted: np.ndarray, truth: np.ndarray, threshold: float
) -> float:
    """Fraction of true hotspot tiles that the prediction misses.

    A tile is a hotspot when its worst-case noise exceeds ``threshold``
    (10% of the nominal supply in the paper).  Returns 0 when the ground
    truth contains no hotspots.
    """
    check_positive(threshold, "threshold")
    truth_hot = np.asarray(truth, dtype=float) > threshold
    predicted_hot = np.asarray(predicted, dtype=float) > threshold
    total_hot = int(np.count_nonzero(truth_hot))
    if total_hot == 0:
        return 0.0
    missed = int(np.count_nonzero(truth_hot & ~predicted_hot))
    return missed / total_hot


def hotspot_precision_recall(
    predicted: np.ndarray, truth: np.ndarray, threshold: float
) -> tuple[float, float]:
    """Precision and recall of hotspot classification at ``threshold``.

    A tile is a hotspot when its worst-case noise exceeds ``threshold``.
    Precision is the fraction of *predicted* hotspot tiles that are real;
    recall is the fraction of *true* hotspot tiles the prediction flags
    (``1 - hotspot_missing_rate``).  Degenerate cases follow the usual
    conventions: precision is 1.0 when nothing is predicted hot, recall is
    1.0 when the ground truth has no hotspots — an empty claim is never
    wrong.

    Parameters
    ----------
    predicted / truth:
        Noise maps (any matching shapes) in volts.
    threshold:
        Absolute hotspot threshold in volts.

    Returns
    -------
    The ``(precision, recall)`` pair, both in ``[0, 1]``.
    """
    check_positive(threshold, "threshold")
    predicted = np.asarray(predicted, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if predicted.shape != truth.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {truth.shape}")
    predicted_hot = predicted > threshold
    truth_hot = truth > threshold
    true_positive = int(np.count_nonzero(predicted_hot & truth_hot))
    claimed = int(np.count_nonzero(predicted_hot))
    actual = int(np.count_nonzero(truth_hot))
    precision = true_positive / claimed if claimed else 1.0
    recall = true_positive / actual if actual else 1.0
    return precision, recall


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (Mann-Whitney U).

    ``scores`` are continuous predictions (here: predicted noise), ``labels``
    are boolean ground-truth hotspot flags.  Returns 0.5 when either class is
    empty (no information).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    labels = np.asarray(labels, dtype=bool).ravel()
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    num_positive = int(np.count_nonzero(labels))
    num_negative = labels.size - num_positive
    if num_positive == 0 or num_negative == 0:
        return 0.5
    # Average ranks handle ties correctly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=float)
    sorted_scores = scores[order]
    ranks[order] = np.arange(1, scores.size + 1)
    # Assign tied groups their average rank.
    unique, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    cumulative = np.cumsum(counts)
    average_rank = cumulative - (counts - 1) / 2.0
    ranks[order] = average_rank[inverse]
    rank_sum_positive = ranks[labels].sum()
    u_statistic = rank_sum_positive - num_positive * (num_positive + 1) / 2.0
    return float(u_statistic / (num_positive * num_negative))


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate accuracy of a predictor on a set of test vectors.

    All error statistics are computed over every tile of every vector, the
    way the paper's Table 2 aggregates them.  Absolute errors are in volts
    (properties expose mV), relative errors are fractions (properties expose
    percent).
    """

    mean_ae: float
    mean_re: float
    p99_ae: float
    p99_re: float
    max_ae: float
    max_re: float
    hotspot_missing_rate: float
    auc: float
    num_vectors: int
    num_tiles: int

    @property
    def mean_ae_mv(self) -> float:
        """Mean absolute error in millivolts."""
        return self.mean_ae * 1e3

    @property
    def p99_ae_mv(self) -> float:
        """99th-percentile absolute error in millivolts."""
        return self.p99_ae * 1e3

    @property
    def max_ae_mv(self) -> float:
        """Maximum absolute error in millivolts."""
        return self.max_ae * 1e3

    @property
    def mean_re_percent(self) -> float:
        """Mean relative error in percent."""
        return self.mean_re * 100.0

    @property
    def p99_re_percent(self) -> float:
        """99th-percentile relative error in percent."""
        return self.p99_re * 100.0

    @property
    def max_re_percent(self) -> float:
        """Maximum relative error in percent."""
        return self.max_re * 100.0

    def as_dict(self) -> dict:
        """Flat dictionary (used by the benchmark harness and EXPERIMENTS.md)."""
        return {
            "mean_AE_mV": self.mean_ae_mv,
            "mean_RE_%": self.mean_re_percent,
            "p99_AE_mV": self.p99_ae_mv,
            "p99_RE_%": self.p99_re_percent,
            "max_AE_mV": self.max_ae_mv,
            "max_RE_%": self.max_re_percent,
            "hotspot_missing_rate_%": self.hotspot_missing_rate * 100.0,
            "AUC": self.auc,
            "num_vectors": self.num_vectors,
            "num_tiles": self.num_tiles,
        }

    def table_row(self) -> str:
        """One formatted row in the style of the paper's Table 2."""
        return (
            f"{self.mean_ae_mv:.2f}mV/{self.mean_re_percent:.2f}% | "
            f"{self.p99_ae_mv:.2f}mV/{self.p99_re_percent:.2f}% | "
            f"{self.max_ae_mv:.2f}mV/{self.max_re_percent:.2f}% | "
            f"missing {self.hotspot_missing_rate * 100.0:.2f}% | AUC {self.auc:.3f}"
        )


def evaluate_predictions(
    predicted_maps: np.ndarray,
    truth_maps: np.ndarray,
    hotspot_threshold: float,
    relative_floor: float = 1e-3,
) -> AccuracyReport:
    """Compute an :class:`AccuracyReport` from stacked prediction/truth maps.

    Parameters
    ----------
    predicted_maps / truth_maps:
        Arrays of shape ``(num_vectors, m, n)`` in volts.
    hotspot_threshold:
        Absolute hotspot threshold in volts (10% of Vdd in the paper).
    relative_floor:
        Lower bound (volts) on the denominator of relative errors.
    """
    predicted_maps = np.asarray(predicted_maps, dtype=float)
    truth_maps = np.asarray(truth_maps, dtype=float)
    if predicted_maps.shape != truth_maps.shape:
        raise ValueError(f"shape mismatch: {predicted_maps.shape} vs {truth_maps.shape}")
    if predicted_maps.ndim != 3:
        raise ValueError(
            f"expected stacked maps of shape (num_vectors, m, n), got {predicted_maps.shape}"
        )

    ae = absolute_error(predicted_maps, truth_maps)
    re = relative_error(predicted_maps, truth_maps, floor=relative_floor)
    truth_hot = truth_maps > hotspot_threshold

    return AccuracyReport(
        mean_ae=float(ae.mean()),
        mean_re=float(re.mean()),
        p99_ae=float(np.percentile(ae, 99.0)),
        p99_re=float(np.percentile(re, 99.0)),
        max_ae=float(ae.max()),
        max_re=float(re.max()),
        hotspot_missing_rate=hotspot_missing_rate(
            predicted_maps, truth_maps, hotspot_threshold
        ),
        auc=roc_auc(predicted_maps, truth_hot),
        num_vectors=predicted_maps.shape[0],
        num_tiles=int(np.prod(predicted_maps.shape[1:])),
    )
