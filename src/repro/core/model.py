"""The complete worst-case dynamic PDN noise prediction model (Fig. 3).

:class:`WorstCaseNoiseNet` wires the three subnets together:

1. the distance tensor ``(B, m, n)`` is reduced to a single-channel map,
2. each retained current map is passed through the (weight-shared) fusion
   subnet, and the per-tile statistics ``I_max``, ``I_mean`` and ``I_msd``
   are taken over the time axis,
3. the four maps are concatenated and the noise-prediction subnet produces
   the worst-case noise map ``V in R^{m x n}``.

The whole noise map of a design is produced with a single forward pass —
this "one-time execution" property is the paper's main efficiency argument
against tile-by-tile approaches such as PowerNet.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.config import ModelConfig
from repro.core.subnets import CurrentFusionNet, DistanceReductionNet, NoisePredictionNet
from repro.nn import Module, Tensor, as_tensor, cat

ArrayOrTensor = Union[np.ndarray, Tensor]


class WorstCaseNoiseNet(Module):
    """Three-subnet CNN predicting the worst-case dynamic noise map.

    Parameters
    ----------
    num_bumps:
        Number of power bumps ``B`` (input channels of the distance subnet).
    config:
        Architecture hyper-parameters (``C1``, ``C2``, ``C3``, depths).
    """

    def __init__(self, num_bumps: int, config: ModelConfig = ModelConfig()):
        super().__init__()
        self.config = config
        self.num_bumps = num_bumps
        self.distance_subnet = DistanceReductionNet(
            num_bumps=num_bumps,
            hidden_channels=config.distance_kernels,
            depth=config.distance_depth,
            kernel_size=config.kernel_size,
            seed=config.seed,
        )
        self.fusion_subnet = CurrentFusionNet(
            hidden_channels=config.fusion_kernels,
            kernel_size=config.kernel_size,
            seed=config.seed + 1,
        )
        self.prediction_subnet = NoisePredictionNet(
            hidden_channels=config.prediction_kernels,
            depth=config.prediction_depth,
            kernel_size=config.kernel_size,
            seed=config.seed + 2,
        )

    # ------------------------------------------------------------------ #
    # forward pieces
    # ------------------------------------------------------------------ #

    def reduce_distance(self, distance: ArrayOrTensor) -> Tensor:
        """Reduced distance map ``(1, 1, m, n)`` from a ``(B, m, n)`` tensor."""
        tensor = as_tensor(distance)
        if tensor.ndim != 3:
            raise ValueError(f"distance must have shape (B, m, n), got {tensor.shape}")
        batched = tensor.reshape(1, *tensor.shape)
        return self.distance_subnet(batched)

    def fuse_currents(self, current_maps: ArrayOrTensor) -> Tensor:
        """Fused current statistics ``(1, 3, m, n)`` from ``(T, m, n)`` maps.

        The fusion subnet runs on every stamp with shared weights; the
        statistics (max, (max+min)/2, mu+3sigma) are taken across stamps.
        """
        tensor = as_tensor(current_maps)
        if tensor.ndim != 3:
            raise ValueError(f"current maps must have shape (T, m, n), got {tensor.shape}")
        num_steps, height, width = tensor.shape
        as_batch = tensor.reshape(num_steps, 1, height, width)
        fused = self.fusion_subnet(as_batch)  # (T, 1, m, n)
        fused = fused.reshape(num_steps, height, width)

        maximum = fused.max(axis=0, keepdims=True)
        minimum = fused.min(axis=0, keepdims=True)
        mean = fused.mean(axis=0, keepdims=True)
        std = fused.std(axis=0, keepdims=True)
        i_max = maximum
        i_mean = 0.5 * (maximum + minimum)
        i_msd = mean + 3.0 * std
        stacked = cat([i_max, i_mean, i_msd], axis=0)  # (3, m, n)
        return stacked.reshape(1, 3, height, width)

    def forward(self, current_maps: ArrayOrTensor, distance: ArrayOrTensor) -> Tensor:
        """Predict the (normalised) worst-case noise map, shape ``(m, n)``.

        Parameters
        ----------
        current_maps:
            Normalised, temporally compressed current maps ``(T, m, n)``.
        distance:
            Normalised distance tensor ``(B, m, n)``.
        """
        reduced_distance = self.reduce_distance(distance)  # (1, 1, m, n)
        fused_currents = self.fuse_currents(current_maps)  # (1, 3, m, n)
        features = cat([fused_currents, reduced_distance], axis=1)  # (1, 4, m, n)
        prediction = self.prediction_subnet(features)  # (1, 1, m, n)
        height, width = prediction.shape[2], prediction.shape[3]
        return prediction.reshape(height, width)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def architecture_summary(self) -> dict:
        """Parameter counts per subnet (useful for logging and tests)."""
        return {
            "distance_subnet": self.distance_subnet.num_parameters(),
            "fusion_subnet": self.fusion_subnet.num_parameters(),
            "prediction_subnet": self.prediction_subnet.num_parameters(),
            "total": self.num_parameters(),
        }
