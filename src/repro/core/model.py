"""The complete worst-case dynamic PDN noise prediction model (Fig. 3).

:class:`WorstCaseNoiseNet` wires the three subnets together:

1. the distance tensor ``(B, m, n)`` is reduced to a single-channel map,
2. each retained current map is passed through the (weight-shared) fusion
   subnet, and the per-tile statistics ``I_max``, ``I_mean`` and ``I_msd``
   are taken over the time axis,
3. the four maps are concatenated and the noise-prediction subnet produces
   the worst-case noise map ``V in R^{m x n}``.

The whole noise map of a design is produced with a single forward pass —
this "one-time execution" property is the paper's main efficiency argument
against tile-by-tile approaches such as PowerNet.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import ModelConfig
from repro.core.subnets import CurrentFusionNet, DistanceReductionNet, NoisePredictionNet
from repro.nn import Module, Tensor, as_tensor, cat

ArrayOrTensor = Union[np.ndarray, Tensor]

#: A batch of test vectors: either a dense ``(N, T, m, n)`` stack (all vectors
#: share the stamp count) or a sequence of ``(T_i, m, n)`` ragged stacks.
CurrentBatch = Union[ArrayOrTensor, Sequence[ArrayOrTensor]]


class WorstCaseNoiseNet(Module):
    """Three-subnet CNN predicting the worst-case dynamic noise map.

    Parameters
    ----------
    num_bumps:
        Number of power bumps ``B`` (input channels of the distance subnet).
    config:
        Architecture hyper-parameters (``C1``, ``C2``, ``C3``, depths).
    """

    def __init__(self, num_bumps: int, config: ModelConfig = ModelConfig()):
        super().__init__()
        self.config = config
        self.num_bumps = num_bumps
        self.distance_subnet = DistanceReductionNet(
            num_bumps=num_bumps,
            hidden_channels=config.distance_kernels,
            depth=config.distance_depth,
            kernel_size=config.kernel_size,
            seed=config.seed,
        )
        self.fusion_subnet = CurrentFusionNet(
            hidden_channels=config.fusion_kernels,
            kernel_size=config.kernel_size,
            seed=config.seed + 1,
        )
        self.prediction_subnet = NoisePredictionNet(
            hidden_channels=config.prediction_kernels,
            depth=config.prediction_depth,
            kernel_size=config.kernel_size,
            seed=config.seed + 2,
        )

    # ------------------------------------------------------------------ #
    # forward pieces
    # ------------------------------------------------------------------ #

    def reduce_distance(self, distance: ArrayOrTensor) -> Tensor:
        """Reduced distance map ``(1, 1, m, n)`` from a ``(B, m, n)`` tensor."""
        tensor = as_tensor(distance)
        if tensor.ndim != 3:
            raise ValueError(f"distance must have shape (B, m, n), got {tensor.shape}")
        batched = tensor.reshape(1, *tensor.shape)
        return self.distance_subnet(batched)

    def fuse_currents(self, current_maps: ArrayOrTensor) -> Tensor:
        """Fused current statistics ``(1, 3, m, n)`` from ``(T, m, n)`` maps.

        The fusion subnet runs on every stamp with shared weights; the
        statistics (max, (max+min)/2, mu+3sigma) are taken across stamps.
        """
        tensor = as_tensor(current_maps)
        if tensor.ndim != 3:
            raise ValueError(f"current maps must have shape (T, m, n), got {tensor.shape}")
        num_steps, height, width = tensor.shape
        as_batch = tensor.reshape(num_steps, 1, height, width)
        fused = self.fusion_subnet(as_batch)  # (T, 1, m, n)
        # Single source of truth for the statistics formulas: the same helper
        # serves the batched path, so forward() and forward_batch() can never
        # drift apart.
        return self._temporal_statistics(
            fused.reshape(1, num_steps, height, width), axis=1
        )

    def fuse_currents_batch(self, current_maps: CurrentBatch) -> Tensor:
        """Fused current statistics ``(N, 3, m, n)`` for a batch of vectors.

        Accepts either a dense ``(N, T, m, n)`` array (every vector retains
        the same number of stamps) or a sequence of ``(T_i, m, n)`` stacks
        (ragged batch, e.g. per-vector Algorithm-1 compression).  All stamps
        of all vectors go through the weight-shared fusion subnet in a single
        forward pass; the temporal statistics are then reduced per vector.
        """
        tensors, lengths = self._coerce_current_batch(current_maps)
        height, width = tensors[0].shape[1], tensors[0].shape[2]
        flat = tensors[0] if len(tensors) == 1 else cat(tensors, axis=0)
        total = flat.shape[0]
        fused = self.fusion_subnet(flat.reshape(total, 1, height, width))
        fused = fused.reshape(total, height, width)

        if len(set(lengths)) == 1:
            # Uniform stamp counts: reduce along the stamp axis vectorized.
            per_vector = fused.reshape(len(lengths), lengths[0], height, width)
            return self._temporal_statistics(per_vector, axis=1)
        # Ragged batch: bucket vectors by stamp count so each bucket still
        # reduces vectorized, then restore the submission order.
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        buckets: dict[int, list[int]] = {}
        for index, length in enumerate(lengths):
            buckets.setdefault(length, []).append(index)
        pieces = []
        order: list[int] = []
        for length, indices in buckets.items():
            rows = np.concatenate(
                [np.arange(offsets[i], offsets[i] + length) for i in indices]
            )
            segment = fused[rows]
            stats = self._temporal_statistics(
                segment.reshape(len(indices), length, height, width), axis=1
            )
            pieces.append(stats)
            order.extend(indices)
        stacked = pieces[0] if len(pieces) == 1 else cat(pieces, axis=0)
        if order == sorted(order):
            return stacked
        return stacked[np.argsort(order)]

    @staticmethod
    def _temporal_statistics(per_vector: Tensor, axis: int) -> Tensor:
        """``I_max`` / ``I_mean`` / ``I_msd`` along ``axis``, stacked as channels."""
        maximum = per_vector.max(axis=axis, keepdims=True)
        minimum = per_vector.min(axis=axis, keepdims=True)
        mean = per_vector.mean(axis=axis, keepdims=True)
        std = per_vector.std(axis=axis, keepdims=True)
        i_max = maximum
        i_mean = 0.5 * (maximum + minimum)
        i_msd = mean + 3.0 * std
        return cat([i_max, i_mean, i_msd], axis=axis)

    def _coerce_current_batch(self, current_maps: CurrentBatch) -> tuple[list[Tensor], list[int]]:
        """Normalise a batch argument into per-vector tensors plus lengths."""
        if isinstance(current_maps, (Tensor, np.ndarray)):
            tensor = as_tensor(current_maps)
            if tensor.ndim != 4:
                raise ValueError(
                    f"batched current maps must have shape (N, T, m, n), got {tensor.shape}"
                )
            batch, num_steps, height, width = tensor.shape
            return [tensor.reshape(batch * num_steps, height, width)], [num_steps] * batch
        tensors = [as_tensor(maps) for maps in current_maps]
        if not tensors:
            raise ValueError("current-map batch is empty")
        for tensor in tensors:
            if tensor.ndim != 3:
                raise ValueError(
                    f"each vector's current maps must have shape (T, m, n), got {tensor.shape}"
                )
            if tensor.shape[1:] != tensors[0].shape[1:]:
                raise ValueError(
                    "all vectors in a batch must share the tile shape; got "
                    f"{tensor.shape[1:]} and {tensors[0].shape[1:]}"
                )
        return tensors, [tensor.shape[0] for tensor in tensors]

    def forward_batch(
        self,
        current_maps: CurrentBatch,
        distance: ArrayOrTensor,
        reduced_distance: Optional[ArrayOrTensor] = None,
    ) -> Tensor:
        """Predict (normalised) noise maps for N vectors in one pass, ``(N, m, n)``.

        The distance tensor is shared by the whole batch (all vectors excite
        the same design), so the distance subnet runs exactly once and its
        reduced map is broadcast across the batch — unlike N calls of
        :meth:`forward`, which would re-reduce it every time.  Serving layers
        that predict for a fixed design over and over can precompute
        ``reduced_distance`` (the :meth:`reduce_distance` output,
        ``(1, 1, m, n)``) and skip even that single reduction.

        The pass is fully gradient-capable: every op on the path (including
        the ragged length-bucketing gather and the distance broadcast) has a
        registered adjoint, so the batched training engine pushes a whole
        minibatch through this method as **one** autograd graph per step —
        the same code serving runs under ``no_grad``.  Training must pass
        ``distance`` (not a cached ``reduced_distance``) so gradients reach
        the distance subnet's weights.
        """
        fused_currents = self.fuse_currents_batch(current_maps)  # (N, 3, m, n)
        batch, _, height, width = fused_currents.shape
        if reduced_distance is None:
            reduced_distance = self.reduce_distance(distance)  # (1, 1, m, n)
        else:
            reduced_distance = as_tensor(reduced_distance)
        reduced_distance = reduced_distance.broadcast_to(batch, 1, height, width)
        features = cat([fused_currents, reduced_distance], axis=1)  # (N, 4, m, n)
        prediction = self.prediction_subnet(features)  # (N, 1, m, n)
        return prediction.reshape(batch, height, width)

    def forward(self, current_maps: ArrayOrTensor, distance: ArrayOrTensor) -> Tensor:
        """Predict the (normalised) worst-case noise map, shape ``(m, n)``.

        Parameters
        ----------
        current_maps:
            Normalised, temporally compressed current maps ``(T, m, n)``.
        distance:
            Normalised distance tensor ``(B, m, n)``.
        """
        reduced_distance = self.reduce_distance(distance)  # (1, 1, m, n)
        fused_currents = self.fuse_currents(current_maps)  # (1, 3, m, n)
        features = cat([fused_currents, reduced_distance], axis=1)  # (1, 4, m, n)
        prediction = self.prediction_subnet(features)  # (1, 1, m, n)
        height, width = prediction.shape[2], prediction.shape[3]
        return prediction.reshape(height, width)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def architecture_summary(self) -> dict:
        """Parameter counts per subnet (useful for logging and tests)."""
        return {
            "distance_subnet": self.distance_subnet.num_parameters(),
            "fusion_subnet": self.fusion_subnet.num_parameters(),
            "prediction_subnet": self.prediction_subnet.num_parameters(),
            "total": self.num_parameters(),
        }
