"""End-to-end worst-case noise prediction framework (Fig. 2 of the paper).

:class:`WorstCaseNoiseFramework` strings the whole flow together for one
design:

1. randomly generate test vectors (:mod:`repro.workloads`),
2. run the ground-truth dynamic noise simulation for every vector
   (:mod:`repro.sim` — the commercial-tool stand-in),
3. spatially tile and temporally compress the current features
   (:mod:`repro.features`),
4. split the samples with the training-set expansion strategy, fit the
   normaliser, and train the three-subnet CNN (:mod:`repro.core.training`),
5. evaluate accuracy, hotspot coverage and runtime/speedup on the held-out
   test vectors — the quantities reported in Tables 2 and 3.

Benchmarks and examples build on this class rather than re-implementing the
flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.inference import NoisePredictor
from repro.core.metrics import AccuracyReport, evaluate_predictions
from repro.core.training import NoiseModelTrainer, TrainingResult
from repro.pdn.designs import Design
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.transient import TransientOptions
from repro.utils import get_logger
from repro.workloads.dataset import DatasetSplit, NoiseDataset, build_dataset, expansion_split
from repro.workloads.vectors import TestVectorGenerator, VectorConfig

_LOG = get_logger("core.pipeline")


@dataclass
class RuntimeComparison:
    """Wall-clock comparison between the simulator and the predictor.

    Both totals cover the same set of (test) vectors, mirroring how the paper
    compares its framework against the commercial tool in Table 2.
    """

    simulator_seconds: float
    predictor_seconds: float
    num_vectors: int
    #: Per-vector predictor latencies (seconds), when the evaluation kept
    #: them; lets reports derive percentile columns without re-predicting.
    per_vector_seconds: Optional[np.ndarray] = None

    @property
    def speedup(self) -> float:
        """Simulator time divided by predictor time."""
        if self.predictor_seconds <= 0:
            return float("inf")
        return self.simulator_seconds / self.predictor_seconds

    def as_dict(self) -> dict:
        """Flat dictionary for reporting."""
        return {
            "simulator_s": self.simulator_seconds,
            "predictor_s": self.predictor_seconds,
            "speedup": self.speedup,
            "num_vectors": self.num_vectors,
        }


@dataclass
class FrameworkResult:
    """Everything produced by one end-to-end framework run."""

    design_name: str
    dataset: NoiseDataset
    split: DatasetSplit
    training: TrainingResult
    predictor: NoisePredictor
    report: AccuracyReport
    runtime: RuntimeComparison
    predicted_test_maps: np.ndarray
    truth_test_maps: np.ndarray

    def summary(self) -> dict:
        """Flat summary combining accuracy and runtime (one Table-2 row)."""
        summary = {"design": self.design_name, "tile_shape": self.dataset.tile_shape}
        summary.update(self.report.as_dict())
        summary.update(self.runtime.as_dict())
        return summary


class WorstCaseNoiseFramework:
    """The proposed framework, end to end, for a single design."""

    def __init__(
        self,
        design: Design,
        config: PipelineConfig = PipelineConfig(),
        transient_options: TransientOptions = TransientOptions(),
    ):
        self.design = design
        self.config = config
        self.transient_options = transient_options

    # ------------------------------------------------------------------ #
    # individual stages (also usable on their own)
    # ------------------------------------------------------------------ #

    def generate_vectors(self):
        """Stage 1: random test vectors for this design."""
        vector_config = VectorConfig(num_steps=self.config.num_steps, dt=self.config.dt)
        generator = TestVectorGenerator(self.design, vector_config)
        return generator.generate_suite(self.config.num_vectors, seed=self.config.seed)

    def build_dataset(
        self,
        traces=None,
        analysis: Optional[DynamicNoiseAnalysis] = None,
        corpus_dir: Optional[Union[str, Path]] = None,
    ) -> NoiseDataset:
        """Stage 2+3: simulate ground truth and extract features.

        Parameters
        ----------
        traces:
            Test vectors to label; generated from the config when omitted.
        analysis:
            An existing simulator to reuse (must match the trace ``dt``).
        corpus_dir:
            When given, skip simulation entirely and load this design's
            dataset from a sharded corpus produced by
            :func:`repro.datagen.generate_corpus` (looked up under the
            design's name).  Training then consumes factory shards
            transparently.

        Returns
        -------
        The labelled :class:`NoiseDataset`.
        """
        if corpus_dir is not None:
            if traces is not None:
                raise ValueError("pass either traces or corpus_dir, not both")
            # Imported lazily: repro.datagen depends on repro.workloads and
            # repro.sim, and importing it here at module scope would cycle.
            from repro.datagen import load_design_dataset

            dataset = load_design_dataset(corpus_dir, self.design.name)
            # Design names do not encode scale ("D1" at any scale is "D1"),
            # so guard against silently training on a corpus generated for a
            # different-sized variant of this design.
            if dataset.tile_shape != self.design.tile_grid.shape:
                raise ValueError(
                    f"corpus at {corpus_dir} holds {dataset.tile_shape} tile maps "
                    f"for design {self.design.name!r}, but this framework's design "
                    f"has a {self.design.tile_grid.shape} tile grid — the corpus "
                    "was generated for a different variant of the design"
                )
            if not np.isclose(dataset.dt, self.config.dt, rtol=1e-9, atol=0.0):
                raise ValueError(
                    f"corpus dt {dataset.dt} does not match the configured dt "
                    f"{self.config.dt}"
                )
            return dataset
        if traces is None:
            traces = self.generate_vectors()
        return build_dataset(
            self.design,
            traces,
            compression_rate=self.config.compression_rate,
            rate_step=self.config.rate_step,
            transient_options=self.transient_options,
            analysis=analysis,
            sim_batch_size=self.config.sim_batch_size,
        )

    def corpus_design_spec(
        self,
        design_reference: str,
        label: Optional[str] = None,
        shard_size: Optional[int] = None,
    ):
        """This framework's data requirements as a corpus slice.

        Translates the pipeline configuration (vector count, trace length,
        dt, compression, seed) into a
        :class:`repro.datagen.CorpusDesignSpec`.  The slice carries only
        the data-shape fields; the simulation options (integration method,
        initial state, solver) live on the enclosing
        :class:`repro.datagen.CorpusSpec` — use :meth:`corpus_spec` to get
        a complete spec that matches this framework's transient options
        too.

        Parameters
        ----------
        design_reference:
            Factory reference that rebuilds this design in a datagen worker
            (e.g. ``"D1@0.2"``; see
            :func:`repro.pdn.designs.design_from_name`).
        label:
            Corpus label; defaults to the design name.
        shard_size:
            Vectors per shard; defaults to one quarter of the vector count.

        Returns
        -------
        A :class:`repro.datagen.CorpusDesignSpec`.
        """
        from repro.datagen import CorpusDesignSpec

        config = self.config
        if shard_size is None:
            shard_size = max(1, config.num_vectors // 4)
        return CorpusDesignSpec(
            label=label or self.design.name,
            design=design_reference,
            num_vectors=config.num_vectors,
            num_steps=config.num_steps,
            dt=config.dt,
            seed=config.seed,
            shard_size=shard_size,
            compression_rate=config.compression_rate,
            rate_step=config.rate_step,
        )

    def corpus_spec(
        self,
        design_reference: str,
        label: Optional[str] = None,
        shard_size: Optional[int] = None,
    ):
        """A complete single-design corpus spec reproducing this framework.

        Unlike :meth:`corpus_design_spec` alone, the returned
        :class:`repro.datagen.CorpusSpec` also carries this framework's
        *transient options* (integration method, initial state, solver) and
        maps ``config.sim_batch_size`` onto the corpus batch size (``None``
        becomes 1, i.e. true per-vector simulation) — so
        ``generate_corpus(framework.corpus_spec(ref), root)`` labels exactly
        what :meth:`build_dataset` would simulate in-process, physics
        included.

        Parameters
        ----------
        design_reference / label / shard_size:
            As in :meth:`corpus_design_spec`.

        Returns
        -------
        A single-design :class:`repro.datagen.CorpusSpec`.
        """
        from repro.datagen import CorpusSpec

        options = self.transient_options
        return CorpusSpec(
            designs=(self.corpus_design_spec(design_reference, label, shard_size),),
            sim_batch_size=self.config.sim_batch_size or 1,
            solver_method=options.solver_method,
            integration_method=options.method,
            initial_state=options.initial_state,
        )

    def train(self, dataset: NoiseDataset, split: Optional[DatasetSplit] = None) -> TrainingResult:
        """Stage 4: expansion split plus CNN training."""
        if split is None:
            split = expansion_split(
                dataset,
                train_fraction=self.config.train_fraction,
                validation_ratio=self.config.validation_ratio,
                seed=self.config.seed,
            )
        trainer = NoiseModelTrainer(
            dataset,
            design=self.design,
            split=split,
            model_config=self.config.model,
            training_config=self.config.training,
        )
        return trainer.train()

    def evaluate(
        self,
        dataset: NoiseDataset,
        training: TrainingResult,
        indices: Optional[Sequence[int]] = None,
    ) -> tuple[AccuracyReport, RuntimeComparison, np.ndarray, np.ndarray]:
        """Stage 5: accuracy and runtime on the held-out test vectors."""
        if indices is None:
            indices = training.split.test
        indices = np.asarray(list(indices), dtype=int)
        predictor = NoisePredictor(
            model=training.model,
            normalizer=training.normalizer,
            distance=dataset.distance,
            compression_rate=self.config.compression_rate,
            rate_step=self.config.rate_step,
        )
        # Time each vector through the full stateless forward (including the
        # distance reduction), exactly as the paper measures one vector at a
        # time against the commercial tool — predict_batch would amortise the
        # reduced distance map across vectors and flatter the speedup.  The
        # batched serving throughput is benchmarked separately in
        # bench_serving.py.
        per_vector = [
            predictor.predict_features(dataset.samples[int(i)].features) for i in indices
        ]
        predicted = np.stack([result.noise_map for result in per_vector])
        runtimes = np.array([result.runtime_seconds for result in per_vector])
        truth = np.stack([dataset.samples[i].target for i in indices])
        report = evaluate_predictions(
            predicted, truth, hotspot_threshold=dataset.hotspot_threshold
        )
        simulator_seconds = float(
            np.sum([dataset.samples[i].sim_runtime for i in indices])
        )
        runtime = RuntimeComparison(
            simulator_seconds=simulator_seconds,
            predictor_seconds=float(np.sum(runtimes)),
            num_vectors=len(indices),
            per_vector_seconds=runtimes,
        )
        return report, runtime, predicted, truth

    # ------------------------------------------------------------------ #
    # end to end
    # ------------------------------------------------------------------ #

    def run(self, dataset: Optional[NoiseDataset] = None) -> FrameworkResult:
        """Run the complete flow and return the bundled results."""
        if dataset is None:
            dataset = self.build_dataset()
        training = self.train(dataset)
        report, runtime, predicted, truth = self.evaluate(dataset, training)
        predictor = NoisePredictor(
            model=training.model,
            normalizer=training.normalizer,
            distance=dataset.distance,
            compression_rate=self.config.compression_rate,
            rate_step=self.config.rate_step,
        )
        result = FrameworkResult(
            design_name=self.design.name,
            dataset=dataset,
            split=training.split,
            training=training,
            predictor=predictor,
            report=report,
            runtime=runtime,
            predicted_test_maps=predicted,
            truth_test_maps=truth,
        )
        _LOG.info("framework run on %s: %s", self.design.name, report.table_row())
        return result
