"""The three subnets of the worst-case noise prediction model (Sec. 3.4).

* :class:`DistanceReductionNet` — U-Net-like encoder/decoder that squeezes
  the ``B``-channel distance tensor down to a single reduced distance map
  (Sec. 3.4.1).
* :class:`CurrentFusionNet` — a small 4-layer encoder/decoder applied to each
  (compressed) current map independently; the temporal reduction to
  ``I_max`` / ``I_mean`` / ``I_msd`` happens in the parent model (Sec. 3.4.2).
* :class:`NoisePredictionNet` — U-Net-like network mapping the concatenated
  ``4 x m x n`` feature tensor to the predicted worst-case noise map
  (Sec. 3.4.3).

Following the paper, convolution layers use replication padding and ReLU,
deconvolution (transposed-convolution) layers use zero padding, downsampling
and upsampling layers use stride 2 and are each followed by a stride-1
convolution, skip connections join same-size encoder/decoder features, and
the output layer has a single kernel and no activation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn import Conv2d, ConvTranspose2d, Module, ReLU, Sequential, Tensor, cat
from repro.utils.random import ensure_rng


def _conv(in_channels: int, out_channels: int, kernel: int, stride: int, seed) -> Conv2d:
    """Stride-``stride`` convolution with replication padding (paper's choice)."""
    return Conv2d(
        in_channels,
        out_channels,
        kernel_size=kernel,
        stride=stride,
        padding=kernel // 2,
        padding_mode="replicate",
        seed=seed,
    )


def _deconv(in_channels: int, out_channels: int, seed) -> ConvTranspose2d:
    """Stride-2 transposed convolution with zero padding (paper's choice)."""
    return ConvTranspose2d(
        in_channels, out_channels, kernel_size=4, stride=2, padding=1, seed=seed
    )


def _crop_to(x: Tensor, height: int, width: int) -> Tensor:
    """Crop the spatial dims of an NCHW tensor (upsampled maps can overshoot by one)."""
    if x.shape[2] == height and x.shape[3] == width:
        return x
    return x[:, :, :height, :width]


class EncoderDecoder(Module):
    """A U-Net-like encoder/decoder with skip connections.

    Parameters
    ----------
    in_channels / out_channels:
        Channel counts of the input tensor and the (single-kernel) output.
    hidden_channels:
        Kernels per internal layer (``C1``/``C3`` in the paper).
    depth:
        Number of downsampling (and matching upsampling) levels.
    kernel_size:
        Square kernel size of all stride-1 convolutions.
    seed:
        Weight-initialisation seed.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        hidden_channels: int,
        depth: int = 2,
        kernel_size: int = 3,
        seed: int = 0,
    ):
        super().__init__()
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        rng = ensure_rng(seed)
        self.depth = depth

        self.input_conv = _conv(in_channels, hidden_channels, kernel_size, 1, rng)
        self.input_relu = ReLU()

        self._down_samplers: list[Sequential] = []
        self._up_samplers: list[ConvTranspose2d] = []
        self._up_refiners: list[Sequential] = []
        for level in range(depth):
            down = Sequential(
                _conv(hidden_channels, hidden_channels, kernel_size, 2, rng),
                ReLU(),
                _conv(hidden_channels, hidden_channels, kernel_size, 1, rng),
                ReLU(),
            )
            self._down_samplers.append(down)
            setattr(self, f"down{level}", down)
        for level in range(depth):
            up = _deconv(hidden_channels, hidden_channels, rng)
            refine = Sequential(
                # The refine conv sees the upsampled features concatenated
                # with the same-size skip features.
                _conv(2 * hidden_channels, hidden_channels, kernel_size, 1, rng),
                ReLU(),
            )
            self._up_samplers.append(up)
            self._up_refiners.append(refine)
            setattr(self, f"up{level}", up)
            setattr(self, f"refine{level}", refine)
        self.output_conv = _conv(hidden_channels, out_channels, kernel_size, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        """Encode-decode one ``(N, C_in, m, n)`` batch to ``(N, C_out, m, n)``."""
        features = self.input_relu(self.input_conv(x))
        skips: list[Tensor] = [features]
        for down in self._down_samplers:
            features = down(features)
            skips.append(features)

        # The deepest feature map is both the last skip and the decoder input.
        skips.pop()
        for up, refine in zip(self._up_samplers, self._up_refiners):
            skip = skips.pop()
            upsampled = up(features).relu()
            upsampled = _crop_to(upsampled, skip.shape[2], skip.shape[3])
            features = refine(cat([upsampled, skip], axis=1))
        return self.output_conv(features)


class DistanceReductionNet(Module):
    """Distance-dimension-reduction subnet (Sec. 3.4.1).

    Maps the normalised distance tensor ``(1, B, m, n)`` to the reduced
    single-channel map ``(1, 1, m, n)``.
    """

    def __init__(self, num_bumps: int, hidden_channels: int = 8, depth: int = 2, kernel_size: int = 3, seed: int = 0):
        super().__init__()
        if num_bumps < 1:
            raise ValueError(f"num_bumps must be >= 1, got {num_bumps}")
        self.num_bumps = num_bumps
        self.network = EncoderDecoder(
            in_channels=num_bumps,
            out_channels=1,
            hidden_channels=hidden_channels,
            depth=depth,
            kernel_size=kernel_size,
            seed=seed,
        )

    def forward(self, distance: Tensor) -> Tensor:
        """Reduce a ``(N, B, m, n)`` distance tensor to ``(N, 1, m, n)``."""
        if distance.ndim != 4 or distance.shape[1] != self.num_bumps:
            raise ValueError(
                f"distance tensor must have shape (N, {self.num_bumps}, m, n), got {distance.shape}"
            )
        return self.network(distance)


class CurrentFusionNet(Module):
    """Current-map-fusion subnet (Sec. 3.4.2).

    A small 4-layer encoder/decoder applied to every retained time stamp
    independently (the stamps are treated as a batch, so the subnet handles
    vectors of any length with shared weights).  The input has one channel;
    the output is again a single-channel map per stamp.
    """

    def __init__(self, hidden_channels: int = 8, kernel_size: int = 3, seed: int = 0):
        super().__init__()
        rng = ensure_rng(seed)
        self.encoder = Sequential(
            _conv(1, hidden_channels, kernel_size, 2, rng),
            ReLU(),
            _conv(hidden_channels, hidden_channels, kernel_size, 1, rng),
            ReLU(),
        )
        self.decoder_up = _deconv(hidden_channels, hidden_channels, rng)
        self.decoder_out = _conv(hidden_channels, 1, kernel_size, 1, rng)

    def forward(self, current_maps: Tensor) -> Tensor:
        """Map per-stamp maps ``(T, 1, m, n)`` to per-stamp responses ``(T, 1, m, n)``."""
        if current_maps.ndim != 4 or current_maps.shape[1] != 1:
            raise ValueError(
                f"current maps must have shape (T, 1, m, n), got {current_maps.shape}"
            )
        height, width = current_maps.shape[2], current_maps.shape[3]
        encoded = self.encoder(current_maps)
        upsampled = self.decoder_up(encoded).relu()
        upsampled = _crop_to(upsampled, height, width)
        return self.decoder_out(upsampled)


class NoisePredictionNet(Module):
    """Worst-case noise prediction subnet (Sec. 3.4.3).

    Consumes the ``4 x m x n`` concatenation of the reduced distance map and
    the three fused current statistics, and outputs the predicted noise map.
    """

    def __init__(self, hidden_channels: int = 16, depth: int = 2, kernel_size: int = 3, seed: int = 0):
        super().__init__()
        self.network = EncoderDecoder(
            in_channels=4,
            out_channels=1,
            hidden_channels=hidden_channels,
            depth=depth,
            kernel_size=kernel_size,
            seed=seed,
        )

    def forward(self, features: Tensor) -> Tensor:
        """Predict ``(N, 1, m, n)`` noise maps from the ``(N, 4, m, n)`` features."""
        if features.ndim != 4 or features.shape[1] != 4:
            raise ValueError(f"features must have shape (N, 4, m, n), got {features.shape}")
        return self.network(features)
