"""Configuration objects for the worst-case noise prediction framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils import check_positive, check_probability


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the three-subnet CNN (Sec. 3.4, Fig. 3).

    Attributes
    ----------
    distance_kernels:
        ``C1`` — kernels per layer in the distance-dimension-reduction subnet.
    fusion_kernels:
        ``C2`` — kernels per layer in the current-map-fusion subnet.
    prediction_kernels:
        ``C3`` — kernels per layer in the noise-prediction subnet.
    kernel_size:
        Square convolution kernel size used throughout.
    distance_depth / prediction_depth:
        Number of downsample/upsample levels in the two U-Net-like subnets.
    seed:
        Seed for weight initialisation.
    """

    distance_kernels: int = 8
    fusion_kernels: int = 8
    prediction_kernels: int = 16
    kernel_size: int = 3
    distance_depth: int = 2
    prediction_depth: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("distance_kernels", "fusion_kernels", "prediction_kernels"):
            check_positive(getattr(self, name), name)
        if self.kernel_size % 2 != 1:
            raise ValueError(f"kernel_size must be odd, got {self.kernel_size}")
        if self.distance_depth < 1 or self.prediction_depth < 1:
            raise ValueError("subnet depths must be >= 1")


@dataclass(frozen=True)
class TrainingConfig:
    """Training-loop parameters (Sec. 3.4.4).

    The paper uses Adam with learning rate 1e-4 and an L1 loss; with the
    scaled-down datasets used in this reproduction a slightly larger default
    learning rate converges in far fewer epochs while remaining faithful to
    the optimiser/loss choice.

    ``sequential`` selects the training engine: the default (``False``) runs
    the batched engine — each minibatch goes through one autograd graph with
    partitions pre-normalised once — while ``True`` keeps the original
    per-sample loop, bit-exact with the pre-batched trainer, as a regression
    escape hatch.  Both engines draw identical shuffle streams from the same
    seed, so their loss curves agree within float re-association tolerance
    (see ``DESIGN.md``).
    """

    learning_rate: float = 1e-3
    epochs: int = 60
    batch_size: int = 4
    loss: str = "l1"
    weight_decay: float = 0.0
    shuffle: bool = True
    seed: int = 0
    early_stopping_patience: Optional[int] = 15
    early_stopping_min_delta: float = 1e-5
    log_every: int = 10
    sequential: bool = False

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.epochs, "epochs")
        check_positive(self.batch_size, "batch_size")
        if self.loss not in ("l1", "mse", "huber"):
            raise ValueError(f"loss must be 'l1', 'mse' or 'huber', got {self.loss!r}")
        if self.early_stopping_patience is not None:
            check_positive(self.early_stopping_patience, "early_stopping_patience")
        if self.early_stopping_min_delta < 0:
            raise ValueError(
                f"early_stopping_min_delta must be >= 0, got {self.early_stopping_min_delta}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end framework parameters (data generation + features + training).

    Attributes
    ----------
    num_vectors:
        Number of random test vectors to generate and simulate (the paper
        uses 500; the quick presets here use fewer).
    num_steps / dt:
        Test-vector length and time step.
    compression_rate:
        Algorithm-1 retention rate applied to the current features.
    rate_step:
        Algorithm-1 sweep step.
    train_fraction / validation_ratio:
        Training-set expansion share and validation:test split of the rest.
    model / training:
        Sub-configurations.
    seed:
        Master seed for vector generation and splitting.
    sim_batch_size:
        When set (> 1), ground-truth simulations run through the lockstep
        block solver in batches of up to this many vectors (noise maps
        agree with the per-vector loop to solver rounding, several times
        faster; per-sample runtimes become batch averages).  ``None`` keeps
        the classic per-vector loop whose runtimes are true per-vector
        measurements.
    """

    num_vectors: int = 60
    num_steps: int = 300
    dt: float = 1e-11
    compression_rate: float = 0.3
    rate_step: float = 0.05
    train_fraction: float = 0.6
    validation_ratio: float = 0.3
    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0
    sim_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.num_vectors, "num_vectors")
        check_positive(self.num_steps, "num_steps")
        check_positive(self.dt, "dt")
        if self.sim_batch_size is not None:
            check_positive(self.sim_batch_size, "sim_batch_size")
        check_probability(self.train_fraction, "train_fraction")
        check_probability(self.validation_ratio, "validation_ratio")
        if not 0.0 < self.compression_rate <= 1.0:
            raise ValueError(
                f"compression_rate must be in (0, 1], got {self.compression_rate}"
            )
