"""Training engine for the worst-case noise prediction model (Sec. 3.4.4).

The trainer consumes a labelled :class:`~repro.workloads.dataset.NoiseDataset`
plus a train/validation/test split (usually produced by the training-set
expansion strategy), fits the feature normaliser on the training partition,
and optimises the model with Adam on the L1 loss of the normalised noise
maps.  Early stopping tracks the validation loss and the best-epoch weights
are restored at the end.

Two engines share that contract:

* **batched** (default) — the train and validation partitions are normalised
  *once* into stacked ``(N, T, m, n)`` current tensors and ``(N, m, n)``
  target stacks (per-sample arrays when stamp counts are ragged), and every
  minibatch runs through :meth:`WorstCaseNoiseNet.forward_batch` as a single
  autograd graph per step: one batched-GEMM convolution pass, one backward,
  one fused optimiser step.  Graphs are built inside
  :class:`~repro.nn.tensor.record_graph` so backpropagation replays the
  creation-order tape instead of re-deriving the traversal order each step,
  and validation runs through the same batched path under ``no_grad``.
* **sequential** (``TrainingConfig.sequential=True``) — the original
  per-sample loop, kept bit-exact with the pre-batched trainer as a
  regression escape hatch.

Both engines draw identical shuffle streams from the same seed, so their
minibatch compositions match and the loss curves differ only by float
re-association (see ``benchmarks/bench_training.py`` for the measured
tolerance and speedup).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro import faults, obs
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, fit_normalizer
from repro.nn import Adam, huber_loss, l1_loss, mse_loss, no_grad
from repro.nn.tensor import record_graph
from repro.pdn.designs import Design
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    TrainingGuard,
    divergence_detail,
)
from repro.utils import Timer, get_logger
from repro.utils.random import ensure_rng
from repro.workloads.dataset import DatasetSplit, NoiseDataset, expansion_split

__all__ = ["TrainingHistory", "TrainingResult", "NoiseModelTrainer"]

_LOG = get_logger("core.training")

#: Loss name -> callable table shared by every training engine (including the
#: pooled cross-design trainer in :mod:`repro.eval`).
LOSS_FUNCTIONS = {"l1": l1_loss, "mse": mse_loss, "huber": huber_loss}

#: A normalised partition's current maps: one dense ``(N, T, m, n)`` stack
#: when every sample retains the same number of stamps, else one ``(T_i, m,
#: n)`` array per sample (ragged Algorithm-1 compression).
_PartitionInputs = Union[np.ndarray, List[np.ndarray]]


def _gradient_norm(parameters) -> float:
    """Global L2 norm over every parameter gradient (missing grads skipped)."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            flat = parameter.grad.reshape(-1)
            total += float(np.dot(flat, flat))
    return float(np.sqrt(total))


def _observe_epoch(metrics, optimizer, num_examples: int, step_seconds: float) -> None:
    """Record one epoch's telemetry: step time, throughput, gradient norm.

    The gradient norm is read from the optimiser's parameters as left by the
    epoch's final backward pass — a cheap per-epoch health signal; it is only
    computed when the registry is live.
    """
    metrics.histogram("training.step_seconds").observe(max(step_seconds, 0.0))
    if step_seconds > 0.0:
        metrics.gauge("training.examples_per_sec").set(num_examples / step_seconds)
    if metrics.enabled:
        metrics.gauge("training.grad_norm").set(_gradient_norm(optimizer.parameters))


@dataclass
class TrainingHistory:
    """Per-epoch loss curves and the early-stopping bookmark."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    best_epoch: int = 0
    best_validation_loss: float = float("inf")
    wall_clock_seconds: float = 0.0

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)


@dataclass
class TrainingResult:
    """Everything the inference side needs after training."""

    model: WorstCaseNoiseNet
    normalizer: FeatureNormalizer
    history: TrainingHistory
    split: DatasetSplit


class NoiseModelTrainer:
    """Trains a :class:`WorstCaseNoiseNet` on a labelled dataset.

    Parameters
    ----------
    dataset:
        Labelled dataset (current maps, distance tensor, ground-truth maps).
    design:
        The design the dataset was built from (provides Vdd and die size for
        normalisation).  Optional — when omitted, normalisation scales are
        derived from the dataset alone.
    split:
        Train/validation/test indices; computed with the expansion strategy
        when omitted.
    model_config / training_config:
        Hyper-parameters.  ``training_config.sequential`` selects the
        engine (batched by default, see the module docstring).
    checkpointing:
        Optional :class:`~repro.resilience.checkpoint.CheckpointPolicy`
        enabling preemption-safe training: periodic atomic checkpoints
        (model + optimiser + RNG + history), bit-identical resume from the
        latest one, and divergence rollback.  Deliberately *not* a
        ``TrainingConfig`` field — it changes how a run survives, never
        what it computes, so config hashes stay stable.
    """

    def __init__(
        self,
        dataset: NoiseDataset,
        design: Optional[Design] = None,
        split: Optional[DatasetSplit] = None,
        model_config: ModelConfig = ModelConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        checkpointing: Optional[CheckpointPolicy] = None,
    ):
        if len(dataset) < 3:
            raise ValueError("training requires at least 3 samples")
        self.dataset = dataset
        self.design = design
        self.model_config = model_config
        self.training_config = training_config
        self.checkpointing = checkpointing
        self.split = split if split is not None else expansion_split(
            dataset, seed=training_config.seed
        )
        self.normalizer = self._fit_normalizer()
        self.model = WorstCaseNoiseNet(num_bumps=dataset.num_bumps, config=model_config)

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #

    def _fit_normalizer(self) -> FeatureNormalizer:
        """Fit feature scales on the training partition only (no leakage)."""
        train_samples = [self.dataset.samples[i] for i in self.split.train]
        current_stack = np.concatenate(
            [sample.features.current_maps for sample in train_samples], axis=0
        )
        noise_stack = np.stack([sample.target for sample in train_samples])
        if self.design is not None:
            return fit_normalizer(self.design, current_stack, noise_stack)
        diagonal = float(np.max(self.dataset.distance)) or 1.0
        positive = current_stack[current_stack > 0]
        return FeatureNormalizer(
            current_scale=float(np.percentile(positive, 99.0)) if positive.size else 1.0,
            distance_scale=diagonal,
            noise_scale=float(np.percentile(noise_stack, 99.0)) or 1.0,
        )

    def _normalized_partition(
        self, indices: np.ndarray
    ) -> tuple[_PartitionInputs, np.ndarray]:
        """Normalise one partition once, up front.

        Returns the stacked normalised current maps (dense ``(N, T, m, n)``
        when stamp counts are uniform, else a per-sample list) and the
        ``(N, m, n)`` normalised target stack.  The batched engine pays this
        cost once per training run instead of once per sample per epoch.
        """
        samples = [self.dataset.samples[int(index)] for index in indices]
        if not samples:
            empty = np.zeros((0,) + self.dataset.tile_shape)
            return empty, empty
        currents = [
            self.normalizer.normalize_currents(sample.features.current_maps)
            for sample in samples
        ]
        targets = np.stack(
            [self.normalizer.normalize_noise(sample.target) for sample in samples]
        )
        if len({maps.shape[0] for maps in currents}) == 1:
            return np.stack(currents), targets
        return currents, targets

    # ------------------------------------------------------------------ #
    # loss evaluation
    # ------------------------------------------------------------------ #

    def _loss_function(self):
        """The configured loss callable (l1 / mse / huber)."""
        return LOSS_FUNCTIONS[self.training_config.loss]

    def _make_guard(self, optimizer, rng) -> Optional[TrainingGuard]:
        """The run's :class:`TrainingGuard`, or ``None`` without checkpointing."""
        if self.checkpointing is None:
            return None
        return TrainingGuard(self.checkpointing, self.model, optimizer, rng)

    def _sample_loss(self, index: int, normalized_distance: np.ndarray):
        """Forward pass plus loss for one sample (returns the loss tensor)."""
        sample = self.dataset.samples[index]
        current = self.normalizer.normalize_currents(sample.features.current_maps)
        target = self.normalizer.normalize_noise(sample.target)
        prediction = self.model(current, normalized_distance)
        return self._loss_function()(prediction, target)

    def _evaluate_loss(self, indices: np.ndarray, normalized_distance: np.ndarray) -> float:
        """Mean loss over a partition without recording gradients (per sample)."""
        if len(indices) == 0:
            return float("nan")
        total = 0.0
        with no_grad():
            for index in indices:
                total += self._sample_loss(int(index), normalized_distance).item()
        return total / len(indices)

    def _evaluate_batched(
        self,
        inputs: _PartitionInputs,
        targets: np.ndarray,
        normalized_distance: np.ndarray,
    ) -> float:
        """Mean loss over a pre-normalised partition via the batched path."""
        count = len(targets)
        if count == 0:
            return float("nan")
        loss_function = self._loss_function()
        # Inference holds no autograd buffers, so evaluation can run much
        # wider minibatches than training without a memory downside.
        batch_size = max(self.training_config.batch_size, 32)
        total = 0.0
        with no_grad():
            # Weights are fixed during evaluation, so the distance subnet
            # runs once for all minibatches.
            reduced_distance = self.model.reduce_distance(normalized_distance)
            for start in range(0, count, batch_size):
                stop = min(start + batch_size, count)
                prediction = self.model.forward_batch(
                    inputs[start:stop], normalized_distance,
                    reduced_distance=reduced_distance,
                )
                total += loss_function(prediction, targets[start:stop]).item() * (stop - start)
        return total / count

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def train(self) -> TrainingResult:
        """Run the full training loop and return the best model.

        Dispatches to the batched engine, or to the bit-exact sequential
        per-sample loop when ``training_config.sequential`` is set.

        Training runs in float64 only — gradcheck coverage, optimizer state
        and convergence baselines all assume full precision; float32 is an
        inference-only precision (cast after training via
        ``model.astype("float32")`` or serve with
        ``NoisePredictor(dtype="float32")``).
        """
        for name, parameter in self.model.named_parameters():
            if parameter.data.dtype != np.float64:
                raise TypeError(
                    f"training requires float64 parameters, but {name!r} is "
                    f"{parameter.data.dtype.name}; cast the model back with "
                    "model.astype('float64') — float32 is an inference-only dtype"
                )
        if self.training_config.sequential:
            return self._train_sequential()
        return self._train_batched()

    def _train_batched(self) -> TrainingResult:
        """Batched engine: one autograd graph (and one fused step) per minibatch."""
        config = self.training_config
        rng = ensure_rng(config.seed)
        optimizer = Adam(
            self.model.parameters(),
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        loss_function = self._loss_function()
        normalized_distance = self.normalizer.normalize_distance(self.dataset.distance)
        train_inputs, train_targets = self._normalized_partition(self.split.train)
        validation_inputs, validation_targets = self._normalized_partition(
            self.split.validation
        )
        dense = isinstance(train_inputs, np.ndarray)
        num_train = len(train_targets)

        history = TrainingHistory()
        best_state = self.model.state_dict()
        epochs_without_improvement = 0
        guard = self._make_guard(optimizer, rng)
        epoch = 0
        if guard is not None:
            epoch, best_state, epochs_without_improvement = guard.restore(
                history, best_state, epochs_without_improvement
            )
        timer = Timer()

        metrics = obs.metrics()
        with timer.measure():
            while epoch < config.epochs:
                order = np.arange(num_train)
                if config.shuffle:
                    rng.shuffle(order)

                epoch_loss = 0.0
                epoch_started = time.perf_counter()
                for step, start in enumerate(range(0, num_train, config.batch_size)):
                    rows = order[start:start + config.batch_size]
                    batch_inputs = (
                        train_inputs[rows]
                        if dense
                        else [train_inputs[int(row)] for row in rows]
                    )
                    optimizer.zero_grad()
                    with record_graph():
                        prediction = self.model.forward_batch(
                            batch_inputs, normalized_distance
                        )
                        loss = loss_function(prediction, train_targets[rows])
                        loss.backward()
                    optimizer.step()
                    faults.active().on_train_step(epoch, step, self.model)
                    epoch_loss += loss.item() * len(rows)
                epoch_loss /= num_train
                _observe_epoch(
                    metrics, optimizer, num_train, time.perf_counter() - epoch_started
                )

                validation_loss = self._evaluate_batched(
                    validation_inputs, validation_targets, normalized_distance
                )
                if guard is not None:
                    detail = divergence_detail(
                        epoch_loss, validation_loss, len(self.split.validation) > 0
                    )
                    if detail is not None:
                        epoch, best_state, epochs_without_improvement = (
                            guard.handle_divergence(epoch, detail, history)
                        )
                        continue
                stop, best_state, epochs_without_improvement = self._note_epoch(
                    history,
                    epoch,
                    epoch_loss,
                    validation_loss,
                    best_state,
                    epochs_without_improvement,
                )
                if guard is not None:
                    guard.after_epoch(
                        epoch, history, best_state, epochs_without_improvement
                    )
                if stop:
                    break
                epoch += 1

        self.model.load_state_dict(best_state)
        history.wall_clock_seconds = timer.total
        return TrainingResult(
            model=self.model,
            normalizer=self.normalizer,
            history=history,
            split=self.split,
        )

    def _train_sequential(self) -> TrainingResult:
        """Sequential engine: the original per-sample loop (bit-exact escape hatch)."""
        config = self.training_config
        rng = ensure_rng(config.seed)
        optimizer = Adam(
            self.model.parameters(),
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        normalized_distance = self.normalizer.normalize_distance(self.dataset.distance)
        history = TrainingHistory()
        best_state = self.model.state_dict()
        epochs_without_improvement = 0
        guard = self._make_guard(optimizer, rng)
        epoch = 0
        if guard is not None:
            epoch, best_state, epochs_without_improvement = guard.restore(
                history, best_state, epochs_without_improvement
            )
        timer = Timer()

        metrics = obs.metrics()
        with timer.measure():
            while epoch < config.epochs:
                train_indices = np.array(self.split.train, dtype=int)
                if config.shuffle:
                    rng.shuffle(train_indices)

                epoch_loss = 0.0
                epoch_started = time.perf_counter()
                for step, start in enumerate(
                    range(0, len(train_indices), config.batch_size)
                ):
                    batch = train_indices[start:start + config.batch_size]
                    optimizer.zero_grad()
                    batch_loss = None
                    for index in batch:
                        loss = self._sample_loss(int(index), normalized_distance)
                        batch_loss = loss if batch_loss is None else batch_loss + loss
                    batch_loss = batch_loss * (1.0 / len(batch))
                    batch_loss.backward()
                    optimizer.step()
                    faults.active().on_train_step(epoch, step, self.model)
                    epoch_loss += batch_loss.item() * len(batch)
                epoch_loss /= len(train_indices)
                _observe_epoch(
                    metrics,
                    optimizer,
                    len(train_indices),
                    time.perf_counter() - epoch_started,
                )

                validation_loss = self._evaluate_loss(
                    self.split.validation, normalized_distance
                )
                if guard is not None:
                    detail = divergence_detail(
                        epoch_loss, validation_loss, len(self.split.validation) > 0
                    )
                    if detail is not None:
                        epoch, best_state, epochs_without_improvement = (
                            guard.handle_divergence(epoch, detail, history)
                        )
                        continue
                stop, best_state, epochs_without_improvement = self._note_epoch(
                    history,
                    epoch,
                    epoch_loss,
                    validation_loss,
                    best_state,
                    epochs_without_improvement,
                )
                if guard is not None:
                    guard.after_epoch(
                        epoch, history, best_state, epochs_without_improvement
                    )
                if stop:
                    break
                epoch += 1

        self.model.load_state_dict(best_state)
        history.wall_clock_seconds = timer.total
        return TrainingResult(
            model=self.model,
            normalizer=self.normalizer,
            history=history,
            split=self.split,
        )

    def _note_epoch(
        self,
        history: TrainingHistory,
        epoch: int,
        epoch_loss: float,
        validation_loss: float,
        best_state: dict,
        epochs_without_improvement: int,
    ) -> tuple[bool, dict, int]:
        """Record one epoch and apply early-stopping bookkeeping.

        Shared verbatim by both engines (and, through :func:`note_epoch`, by
        the pooled cross-design trainer) so every engine keeps the exact
        pre-batched control flow.  Returns ``(stop, best_state,
        epochs_without_improvement)``.
        """
        return note_epoch(
            self.model,
            self.training_config,
            history,
            epoch,
            epoch_loss,
            validation_loss,
            best_state,
            epochs_without_improvement,
        )


def note_epoch(
    model: WorstCaseNoiseNet,
    config: TrainingConfig,
    history: TrainingHistory,
    epoch: int,
    epoch_loss: float,
    validation_loss: float,
    best_state: dict,
    epochs_without_improvement: int,
) -> tuple[bool, dict, int]:
    """One epoch of loss-curve recording and early-stopping bookkeeping.

    The single implementation behind every training engine in the repository
    (batched, sequential, and the pooled cross-design trainer of
    :mod:`repro.eval.training`): appends the losses to ``history``, bookmarks
    the best validation epoch (snapshotting ``model.state_dict()``), and
    applies the patience rule.

    Returns
    -------
    ``(stop, best_state, epochs_without_improvement)`` — ``stop`` is ``True``
    when the patience budget is exhausted.
    """
    history.train_loss.append(epoch_loss)
    history.validation_loss.append(validation_loss)

    monitored = validation_loss if np.isfinite(validation_loss) else epoch_loss
    if monitored < history.best_validation_loss - config.early_stopping_min_delta:
        history.best_validation_loss = monitored
        history.best_epoch = epoch
        best_state = model.state_dict()
        epochs_without_improvement = 0
    else:
        epochs_without_improvement += 1

    if epoch % config.log_every == 0:
        _LOG.info(
            "epoch %d: train %.5f, val %.5f", epoch, epoch_loss, validation_loss
        )
    stop = (
        config.early_stopping_patience is not None
        and epochs_without_improvement >= config.early_stopping_patience
    )
    if stop:
        _LOG.info("early stopping at epoch %d", epoch)
    return stop, best_state, epochs_without_improvement
