"""Inference: fast worst-case noise prediction for new test vectors.

Once trained, the predictor replaces the transient simulator in the
worst-case validation loop: given a new test vector it tiles the currents,
applies Algorithm 1, runs one forward pass of the CNN and returns the
predicted noise map in volts, together with its wall-clock runtime so the
speedup over the simulator can be reported (Table 2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import (
    FeatureNormalizer,
    VectorFeatures,
    extract_vector_features,
)
from repro.nn import kernels, load_checkpoint, load_extras, no_grad, save_checkpoint
from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace
from repro.utils import Timer, check_non_negative, check_positive
from repro.workloads.dataset import NoiseDataset


@dataclass
class PredictionResult:
    """Prediction for one test vector."""

    noise_map: np.ndarray
    runtime_seconds: float
    name: str = ""

    @property
    def worst_noise(self) -> float:
        """Predicted global worst-case noise (V)."""
        return float(np.max(self.noise_map))

    def hotspot_map(self, threshold: float) -> np.ndarray:
        """Boolean hotspot map at an absolute threshold (V).

        A threshold of exactly 0 V is valid (every tile with any predicted
        droop counts as a hotspot); negative thresholds are rejected.
        """
        check_non_negative(threshold, "threshold")
        return self.noise_map > threshold


class NoisePredictor:
    """Wraps a trained model with its normaliser and design context.

    Parameters
    ----------
    model:
        Trained :class:`~repro.core.model.WorstCaseNoiseNet`.
    normalizer:
        The feature normaliser fitted during training.
    distance:
        The design's distance tensor ``(B, m, n)`` in um.
    compression_rate / rate_step:
        Algorithm-1 parameters applied to incoming traces.
    dtype:
        Serving precision (a :mod:`repro.nn.kernels` dtype).  ``"float64"``
        (default) is the bit-exact reference; ``"float32"`` casts the model
        in place and runs the forward pass end to end in single precision
        (~2x throughput).  Predicted noise maps are always returned as
        float64 volts.
    """

    def __init__(
        self,
        model: WorstCaseNoiseNet,
        normalizer: FeatureNormalizer,
        distance: np.ndarray,
        compression_rate: Optional[float] = 0.3,
        rate_step: float = 0.05,
        dtype: Union[str, np.dtype] = "float64",
    ):
        self.dtype = kernels.canonical_dtype(dtype)
        self.model = model.astype(self.dtype)
        self.normalizer = normalizer
        self.distance = np.asarray(distance, dtype=float)
        if self.distance.ndim != 3:
            raise ValueError(f"distance must have shape (B, m, n), got {self.distance.shape}")
        if self.distance.shape[0] != model.num_bumps:
            raise ValueError(
                f"distance tensor has {self.distance.shape[0]} bumps, model expects {model.num_bumps}"
            )
        self.compression_rate = compression_rate
        self.rate_step = rate_step
        self._normalized_distance = np.asarray(
            normalizer.normalize_distance(self.distance), dtype=self.dtype
        )
        self._fingerprint: Optional[tuple] = None
        self._reduced_distance: Optional[tuple] = None

    @property
    def serving_dtype(self) -> str:
        """Serving precision as a canonical string (``"float32"``/``"float64"``)."""
        return self.dtype.name

    def _cast_input(self, normalized):
        """Coerce a normalised input (array or ragged list) to the serving dtype.

        A no-op (no copy) at float64; the float32 path pays one cast per
        input and then stays single-precision through the whole network.
        """
        if isinstance(normalized, list):
            return [np.asarray(item, dtype=self.dtype) for item in normalized]
        return np.asarray(normalized, dtype=self.dtype)

    def _weights_token(self) -> tuple:
        """Cheap validity token for the memoised derived values.

        Every weight update in this code base (optimisers, ``load_state_dict``,
        manual assignment) rebinds ``parameter.data`` to a fresh array, so the
        tuple of array *objects* changes whenever the model changes; memos
        validate the arrays by identity instead of rehashing the weights on
        every request (strong references mean a recycled ``id`` can never make
        a stale memo look current).  Normaliser scales and Algorithm-1
        settings are compared by value, so rebinding those also invalidates.
        In-place surgery on a weight buffer (``param.data[:] = ...``) is the
        one update style the token cannot see; nothing in this code base does
        that.
        """
        arrays = tuple(parameter.data for parameter in self.model.parameters())
        settings = (
            self.normalizer.current_scale,
            self.normalizer.distance_scale,
            self.normalizer.noise_scale,
            self.compression_rate,
            self.rate_step,
            self.serving_dtype,
        )
        return (arrays, settings)

    @staticmethod
    def _token_current(memo: Optional[tuple], token: tuple) -> bool:
        """Whether a ``(token, value)`` memo matches the live token."""
        if memo is None:
            return False
        old_arrays, old_settings = memo[0]
        arrays, settings = token
        if old_settings != settings or len(old_arrays) != len(arrays):
            return False
        return all(old is new for old, new in zip(old_arrays, arrays))

    @property
    def fingerprint(self) -> str:
        """Content hash of weights, normaliser, distance and settings.

        Serving layers use this as the predictor *version*: any retrain,
        renormalisation, settings change *or serving-precision change* yields
        a different fingerprint, so cached predictions can never be served
        across model updates or across precisions (the same checkpoint served
        at float32 and float64 produces different, separately-cached results).
        """
        token = self._weights_token()
        if not self._token_current(self._fingerprint, token):
            digest = hashlib.sha256()
            for name, value in self.model.state_dict().items():
                digest.update(name.encode())
                digest.update(np.ascontiguousarray(value).tobytes())
            digest.update(json.dumps(self.normalizer.to_dict(), sort_keys=True).encode())
            digest.update(repr((self.compression_rate, self.rate_step)).encode())
            digest.update(self.serving_dtype.encode())
            digest.update(np.ascontiguousarray(self.distance).tobytes())
            self._fingerprint = (token, digest.hexdigest())
        return self._fingerprint[1]

    # ------------------------------------------------------------------ #
    # prediction entry points
    # ------------------------------------------------------------------ #

    def predict_features(self, features: VectorFeatures) -> PredictionResult:
        """Predict from pre-extracted features (tiled current maps)."""
        timer = Timer()
        with timer.measure():
            normalized_currents = self._cast_input(
                self.normalizer.normalize_currents(features.current_maps)
            )
            with no_grad():
                prediction = self.model(normalized_currents, self._normalized_distance)
            noise_map = self.normalizer.denormalize_noise(prediction.numpy())
        return PredictionResult(
            noise_map=noise_map, runtime_seconds=timer.last, name=features.name
        )

    def predict_trace(self, trace: CurrentTrace, design: Design) -> PredictionResult:
        """Predict from a raw test vector (tiling + compression + CNN)."""
        timer = Timer()
        with timer.measure():
            features = extract_vector_features(
                trace,
                design,
                compression_rate=self.compression_rate,
                rate_step=self.rate_step,
            )
            result = self.predict_features(features)
        return PredictionResult(
            noise_map=result.noise_map, runtime_seconds=timer.last, name=trace.name
        )

    def _cached_reduced_distance(self) -> np.ndarray:
        """Reduced distance map memoised against the current weights.

        The reduced map depends only on the distance-subnet weights and the
        fixed design distance tensor, so it is recomputed exactly when the
        weights change (see :meth:`_weights_token`).
        """
        token = self._weights_token()
        if not self._token_current(self._reduced_distance, token):
            with no_grad():
                reduced = self.model.reduce_distance(self._normalized_distance).numpy()
            self._reduced_distance = (token, reduced)
        return self._reduced_distance[1]

    def predict_batch(
        self, features: Sequence[VectorFeatures], max_batch: int = 64
    ) -> list[PredictionResult]:
        """Predict a batch of vectors with one forward pass per ``max_batch``.

        All stamps of up to ``max_batch`` vectors run through the CNN
        together (see :meth:`WorstCaseNoiseNet.forward_batch`), which
        amortises the per-call overhead and reduces the shared distance map
        only once per chunk.  Per-vector ``runtime_seconds`` is the chunk
        wall-clock divided by the chunk size (the amortised serving cost).
        """
        check_positive(max_batch, "max_batch")
        results: list[PredictionResult] = []
        for start in range(0, len(features), int(max_batch)):
            chunk = features[start : start + int(max_batch)]
            timer = Timer()
            with timer.measure():
                normalized = self._cast_input(
                    self.normalizer.normalize_current_batch(
                        [item.current_maps for item in chunk]
                    )
                )
                with no_grad():
                    prediction = self.model.forward_batch(
                        normalized,
                        self._normalized_distance,
                        reduced_distance=self._cached_reduced_distance(),
                    )
                maps = self.normalizer.denormalize_noise(prediction.numpy())
            per_vector = timer.last / len(chunk)
            for index, item in enumerate(chunk):
                results.append(
                    PredictionResult(
                        noise_map=maps[index],
                        runtime_seconds=per_vector,
                        name=item.name,
                    )
                )
        return results

    def predict_dataset(
        self,
        dataset: NoiseDataset,
        indices: Optional[Sequence[int]] = None,
        max_batch: int = 64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict every selected dataset sample (batched forward passes).

        Returns ``(maps, runtimes)`` with ``maps`` of shape
        ``(num_selected, m, n)`` in volts.  ``max_batch`` bounds how many
        vectors share one forward pass; set it to 1 to recover the original
        per-vector loop.
        """
        if indices is None:
            indices = range(len(dataset))
        selected = [dataset.samples[int(index)].features for index in indices]
        if not selected:
            return np.zeros((0,) + dataset.tile_shape), np.zeros(0)
        results = self.predict_batch(selected, max_batch=max_batch)
        maps = np.stack([result.noise_map for result in results])
        runtimes = np.array([result.runtime_seconds for result in results])
        return maps, runtimes

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path]) -> None:
        """Save weights, normaliser, settings and distance tensor to one ``.npz``.

        Weights are stored as float64 master copies regardless of the serving
        dtype (the upcast is lossless); the serving dtype itself is recorded
        in the metadata so :meth:`load` restores the same precision.
        """
        metadata = {
            "normalizer": self.normalizer.to_dict(),
            "compression_rate": self.compression_rate,
            "rate_step": self.rate_step,
            "serving_dtype": self.serving_dtype,
            "num_bumps": self.model.num_bumps,
            "model_config": {
                "distance_kernels": self.model.config.distance_kernels,
                "fusion_kernels": self.model.config.fusion_kernels,
                "prediction_kernels": self.model.config.prediction_kernels,
                "kernel_size": self.model.config.kernel_size,
                "distance_depth": self.model.config.distance_depth,
                "prediction_depth": self.model.config.prediction_depth,
                "seed": self.model.config.seed,
            },
            "distance_shape": list(self.distance.shape),
        }
        save_checkpoint(
            self.model, Path(path), metadata=metadata, extras={"distance": self.distance}
        )

    @classmethod
    def load(
        cls, path: Union[str, Path], dtype: Optional[Union[str, np.dtype]] = None
    ) -> "NoisePredictor":
        """Restore a predictor saved with :meth:`save`.

        Current checkpoints are self-contained; the legacy layout that kept
        the distance tensor in a ``<name>.distance.npz`` sidecar next to the
        weights is still read transparently.  ``dtype`` overrides the serving
        precision; otherwise the checkpoint's recorded ``serving_dtype`` is
        used (float64 for checkpoints written before dtype was recorded).
        """
        path = Path(path)
        with np.load(path, allow_pickle=False) as data:
            if "__metadata_json__" not in data.files:
                raise ValueError(f"checkpoint {path} is missing predictor metadata")
            metadata = json.loads(str(data["__metadata_json__"]))
        config = ModelConfig(**metadata["model_config"])
        model = WorstCaseNoiseNet(num_bumps=int(metadata["num_bumps"]), config=config)
        load_checkpoint(model, path)
        extras = load_extras(path)
        if "distance" in extras:
            distance = extras["distance"]
        else:
            sidecar = path.with_name(path.name + ".distance.npz")
            if not sidecar.exists():
                raise FileNotFoundError(
                    f"checkpoint {path} stores no distance tensor and the legacy "
                    f"sidecar {sidecar} does not exist"
                )
            with np.load(sidecar, allow_pickle=False) as data:
                distance = data["distance"]
        return cls(
            model=model,
            normalizer=FeatureNormalizer.from_dict(metadata["normalizer"]),
            distance=distance,
            compression_rate=metadata["compression_rate"],
            rate_step=metadata["rate_step"],
            dtype=dtype if dtype is not None else metadata.get("serving_dtype", "float64"),
        )
