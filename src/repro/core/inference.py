"""Inference: fast worst-case noise prediction for new test vectors.

Once trained, the predictor replaces the transient simulator in the
worst-case validation loop: given a new test vector it tiles the currents,
applies Algorithm 1, runs one forward pass of the CNN and returns the
predicted noise map in volts, together with its wall-clock runtime so the
speedup over the simulator can be reported (Table 2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import (
    FeatureNormalizer,
    VectorFeatures,
    extract_vector_features,
)
from repro.nn import load_checkpoint, no_grad, save_checkpoint
from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace
from repro.utils import Timer, check_positive
from repro.workloads.dataset import NoiseDataset


@dataclass
class PredictionResult:
    """Prediction for one test vector."""

    noise_map: np.ndarray
    runtime_seconds: float
    name: str = ""

    @property
    def worst_noise(self) -> float:
        """Predicted global worst-case noise (V)."""
        return float(np.max(self.noise_map))

    def hotspot_map(self, threshold: float) -> np.ndarray:
        """Boolean hotspot map at an absolute threshold (V)."""
        check_positive(threshold, "threshold")
        return self.noise_map > threshold


class NoisePredictor:
    """Wraps a trained model with its normaliser and design context.

    Parameters
    ----------
    model:
        Trained :class:`~repro.core.model.WorstCaseNoiseNet`.
    normalizer:
        The feature normaliser fitted during training.
    distance:
        The design's distance tensor ``(B, m, n)`` in um.
    compression_rate / rate_step:
        Algorithm-1 parameters applied to incoming traces.
    """

    def __init__(
        self,
        model: WorstCaseNoiseNet,
        normalizer: FeatureNormalizer,
        distance: np.ndarray,
        compression_rate: Optional[float] = 0.3,
        rate_step: float = 0.05,
    ):
        self.model = model
        self.normalizer = normalizer
        self.distance = np.asarray(distance, dtype=float)
        if self.distance.ndim != 3:
            raise ValueError(f"distance must have shape (B, m, n), got {self.distance.shape}")
        if self.distance.shape[0] != model.num_bumps:
            raise ValueError(
                f"distance tensor has {self.distance.shape[0]} bumps, model expects {model.num_bumps}"
            )
        self.compression_rate = compression_rate
        self.rate_step = rate_step
        self._normalized_distance = normalizer.normalize_distance(self.distance)

    # ------------------------------------------------------------------ #
    # prediction entry points
    # ------------------------------------------------------------------ #

    def predict_features(self, features: VectorFeatures) -> PredictionResult:
        """Predict from pre-extracted features (tiled current maps)."""
        timer = Timer()
        with timer.measure():
            normalized_currents = self.normalizer.normalize_currents(features.current_maps)
            with no_grad():
                prediction = self.model(normalized_currents, self._normalized_distance)
            noise_map = self.normalizer.denormalize_noise(prediction.numpy())
        return PredictionResult(
            noise_map=noise_map, runtime_seconds=timer.last, name=features.name
        )

    def predict_trace(self, trace: CurrentTrace, design: Design) -> PredictionResult:
        """Predict from a raw test vector (tiling + compression + CNN)."""
        timer = Timer()
        with timer.measure():
            features = extract_vector_features(
                trace,
                design,
                compression_rate=self.compression_rate,
                rate_step=self.rate_step,
            )
            result = self.predict_features(features)
        return PredictionResult(
            noise_map=result.noise_map, runtime_seconds=timer.last, name=trace.name
        )

    def predict_dataset(
        self, dataset: NoiseDataset, indices: Optional[Sequence[int]] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict every selected dataset sample.

        Returns ``(maps, runtimes)`` with ``maps`` of shape
        ``(num_selected, m, n)`` in volts.
        """
        if indices is None:
            indices = range(len(dataset))
        maps = []
        runtimes = []
        for index in indices:
            result = self.predict_features(dataset.samples[int(index)].features)
            maps.append(result.noise_map)
            runtimes.append(result.runtime_seconds)
        return np.stack(maps), np.array(runtimes)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path]) -> None:
        """Save model weights, normaliser and predictor settings to ``.npz``."""
        metadata = {
            "normalizer": self.normalizer.to_dict(),
            "compression_rate": self.compression_rate,
            "rate_step": self.rate_step,
            "num_bumps": self.model.num_bumps,
            "model_config": {
                "distance_kernels": self.model.config.distance_kernels,
                "fusion_kernels": self.model.config.fusion_kernels,
                "prediction_kernels": self.model.config.prediction_kernels,
                "kernel_size": self.model.config.kernel_size,
                "distance_depth": self.model.config.distance_depth,
                "prediction_depth": self.model.config.prediction_depth,
                "seed": self.model.config.seed,
            },
            "distance_shape": list(self.distance.shape),
        }
        save_checkpoint(self.model, path, metadata=metadata)
        # The distance tensor itself is stored next to the weights.
        np.savez_compressed(str(path) + ".distance.npz", distance=self.distance)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NoisePredictor":
        """Restore a predictor saved with :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            if "__metadata_json__" not in data.files:
                raise ValueError(f"checkpoint {path} is missing predictor metadata")
            metadata = json.loads(str(data["__metadata_json__"]))
        config = ModelConfig(**metadata["model_config"])
        model = WorstCaseNoiseNet(num_bumps=int(metadata["num_bumps"]), config=config)
        load_checkpoint(model, path)
        with np.load(str(path) + ".distance.npz") as data:
            distance = data["distance"]
        return cls(
            model=model,
            normalizer=FeatureNormalizer.from_dict(metadata["normalizer"]),
            distance=distance,
            compression_rate=metadata["compression_rate"],
            rate_step=metadata["rate_step"],
        )
