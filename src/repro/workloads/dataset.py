"""Ground-truth dataset construction and the training-set expansion split.

The training procedure of the paper (Fig. 2, Sec. 3.4.4) feeds randomly
produced test vectors into a commercial sign-off tool to obtain ground-truth
worst-case noise maps, and then selects ~60% of the samples for training with
a distance-based *training-set expansion strategy*; the remaining samples are
split 3:7 into validation and test sets.

:func:`build_dataset` reproduces the data-generation part with our simulator
(:mod:`repro.sim`), and :func:`expansion_split` reproduces the selection
strategy: a candidate joins the training set only if it is farther than a
threshold from every sample already selected, with the threshold tuned so the
training share hits the requested fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.features.extraction import (
    VectorFeatures,
    distance_feature,
    extract_vector_features,
    extract_vector_features_batch,
)
from repro.pdn.designs import Design
from repro.sim.dynamic_noise import DynamicNoiseAnalysis, DynamicNoiseResult
from repro.sim.transient import TransientOptions
from repro.sim.waveform import CurrentTrace
from repro.utils import check_probability, get_logger
from repro.utils.random import RandomState, ensure_rng

_LOG = get_logger("workloads.dataset")


@dataclass
class NoiseSample:
    """One (test vector, ground-truth noise map) pair.

    Attributes
    ----------
    features:
        Tiled (and optionally temporally compressed) current maps.
    target:
        Ground-truth worst-case noise map (V), shape ``(m, n)``.
    hotspot_map:
        Ground-truth hotspot mask at the design's threshold.
    sim_runtime:
        Wall-clock seconds the simulator spent on this vector (the
        "commercial tool" column of Table 2).
    name:
        Vector identifier.
    """

    features: VectorFeatures
    target: np.ndarray
    hotspot_map: np.ndarray
    sim_runtime: float
    name: str = ""

    @property
    def tile_shape(self) -> tuple[int, int]:
        """Tile-map shape ``(m, n)``."""
        return self.target.shape


@dataclass
class NoiseDataset:
    """A labelled dataset for one design.

    Attributes
    ----------
    design_name:
        Name of the design the vectors excite.
    tile_shape:
        ``(m, n)`` of all maps in the dataset.
    distance:
        Shared distance-to-bump tensor ``(B, m, n)`` in um.
    samples:
        The labelled samples.
    dt:
        Simulation time step used for the ground truth.
    vdd / hotspot_threshold:
        Electrical context needed for metrics.
    """

    design_name: str
    tile_shape: tuple[int, int]
    distance: np.ndarray
    samples: list[NoiseSample] = field(default_factory=list)
    dt: float = 1e-11
    vdd: float = 1.0
    hotspot_threshold: float = 0.1

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def num_bumps(self) -> int:
        """Number of power bumps (channels of the distance tensor)."""
        return int(self.distance.shape[0])

    @property
    def total_sim_runtime(self) -> float:
        """Total simulator wall-clock time spent building the ground truth."""
        return float(sum(sample.sim_runtime for sample in self.samples))

    def targets(self) -> np.ndarray:
        """All ground-truth maps stacked, shape ``(num_samples, m, n)``."""
        return np.stack([sample.target for sample in self.samples])

    def summary_features(self) -> np.ndarray:
        """Per-sample closed-form current statistics, shape ``(num_samples, 3, m, n)``."""
        return np.stack([sample.features.summary_maps() for sample in self.samples])

    def subset(self, indices: Sequence[int]) -> "NoiseDataset":
        """A new dataset view containing only the selected samples."""
        return NoiseDataset(
            design_name=self.design_name,
            tile_shape=self.tile_shape,
            distance=self.distance,
            samples=[self.samples[i] for i in indices],
            dt=self.dt,
            vdd=self.vdd,
            hotspot_threshold=self.hotspot_threshold,
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path], compress: bool = True) -> None:
        """Save the dataset to a ``.npz`` archive.

        Parameters
        ----------
        path:
            Destination file (conventionally ``*.npz``).
        compress:
            Use ``np.savez_compressed`` (default).  The dataset factory's
            shard writer passes ``False``: shards are written and re-read on
            the hot path, and the maps compress poorly enough that the zlib
            pass costs more than the bytes it saves.
        """
        current_maps = [sample.features.current_maps for sample in self.samples]
        lengths = np.array([maps.shape[0] for maps in current_maps], dtype=int)
        payload = {
            "design_name": np.array(self.design_name),
            "tile_shape": np.array(self.tile_shape, dtype=int),
            "distance": self.distance,
            "dt": np.array(self.dt),
            "vdd": np.array(self.vdd),
            "hotspot_threshold": np.array(self.hotspot_threshold),
            "lengths": lengths,
            "current_maps": np.concatenate(current_maps, axis=0)
            if current_maps
            else np.zeros((0,) + self.tile_shape),
            "targets": self.targets() if self.samples else np.zeros((0,) + self.tile_shape),
            "hotspots": np.stack([sample.hotspot_map for sample in self.samples])
            if self.samples
            else np.zeros((0,) + self.tile_shape, dtype=bool),
            "runtimes": np.array([sample.sim_runtime for sample in self.samples]),
            "names": np.array([sample.name for sample in self.samples]),
        }
        if compress:
            np.savez_compressed(path, **payload)
        else:
            np.savez(path, **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NoiseDataset":
        """Load a dataset previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            tile_shape = tuple(int(v) for v in data["tile_shape"])
            lengths = data["lengths"]
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            all_maps = data["current_maps"]
            samples = []
            for index, length in enumerate(lengths):
                maps = all_maps[offsets[index]:offsets[index + 1]]
                samples.append(
                    NoiseSample(
                        features=VectorFeatures(current_maps=maps, name=str(data["names"][index])),
                        target=data["targets"][index],
                        hotspot_map=data["hotspots"][index],
                        sim_runtime=float(data["runtimes"][index]),
                        name=str(data["names"][index]),
                    )
                )
            return cls(
                design_name=str(data["design_name"]),
                tile_shape=tile_shape,
                distance=data["distance"],
                samples=samples,
                dt=float(data["dt"]),
                vdd=float(data["vdd"]),
                hotspot_threshold=float(data["hotspot_threshold"]),
            )


def build_dataset(
    design: Design,
    traces: Sequence[CurrentTrace],
    compression_rate: Optional[float] = 0.3,
    rate_step: float = 0.05,
    transient_options: TransientOptions = TransientOptions(),
    analysis: Optional[DynamicNoiseAnalysis] = None,
    sim_batch_size: Optional[int] = None,
) -> NoiseDataset:
    """Simulate every trace and build the labelled dataset.

    Parameters
    ----------
    design:
        The design under study.
    traces:
        Test vectors (all with the same ``dt``).
    compression_rate:
        Algorithm-1 retention rate applied to the *features* (the simulation
        always uses the full trace, exactly as the paper's flow does).
    rate_step:
        Algorithm-1 sweep step.
    transient_options:
        Options of the ground-truth transient engine.
    analysis:
        An existing :class:`DynamicNoiseAnalysis` to reuse (must match the
        trace ``dt``); built on demand otherwise.
    sim_batch_size:
        When set (> 1), the ground-truth simulations run through the
        lockstep block solver (:meth:`DynamicNoiseAnalysis.run_many`) in
        batches of up to this many vectors — several times faster, with
        noise maps that agree with the per-vector loop to solver rounding
        (a few ULPs); per-sample ``sim_runtime`` becomes the batch average.
        ``None`` keeps the classic one-vector-at-a-time loop, whose
        per-sample runtimes are true per-vector measurements (the Table 2
        "commercial tool" column).

    Returns
    -------
    The labelled :class:`NoiseDataset`, one sample per trace in order.
    """
    if not traces:
        raise ValueError("at least one trace is required")
    dt = traces[0].dt
    for trace in traces:
        if not np.isclose(trace.dt, dt):
            raise ValueError("all traces must share the same dt")
    if analysis is None:
        analysis = DynamicNoiseAnalysis(design, dt, transient_options)

    dataset = NoiseDataset(
        design_name=design.name,
        tile_shape=design.tile_grid.shape,
        distance=distance_feature(design),
        dt=dt,
        vdd=design.spec.vdd,
        hotspot_threshold=design.spec.hotspot_threshold,
    )
    if sim_batch_size is not None and sim_batch_size > 1:
        results = analysis.run_many(traces, batch_size=sim_batch_size)
        features_list = extract_vector_features_batch(
            traces, design, compression_rate=compression_rate, rate_step=rate_step
        )
    else:
        results = [analysis.run(trace) for trace in traces]
        features_list = [
            extract_vector_features(
                trace, design, compression_rate=compression_rate, rate_step=rate_step
            )
            for trace in traces
        ]
    for index, (trace, result, features) in enumerate(zip(traces, results, features_list)):
        dataset.samples.append(
            NoiseSample(
                features=features,
                target=result.tile_noise,
                hotspot_map=result.hotspot_map,
                sim_runtime=result.runtime_seconds,
                name=trace.name or f"{design.name}-v{index:04d}",
            )
        )
    _LOG.info(
        "built dataset for %s: %d samples, %.1f s simulator time",
        design.name,
        len(dataset),
        dataset.total_sim_runtime,
    )
    return dataset


def merge_datasets(datasets: Sequence[NoiseDataset]) -> NoiseDataset:
    """Concatenate per-shard datasets of one design into a single dataset.

    Used by the dataset factory (:mod:`repro.datagen`) to reassemble a
    design's corpus from its on-disk shards.  All inputs must describe the
    same design: name, tile shape, distance tensor, dt, Vdd and hotspot
    threshold have to match exactly.

    Parameters
    ----------
    datasets:
        Shard datasets in the order their samples should appear.

    Returns
    -------
    A new :class:`NoiseDataset` holding every sample (the distance tensor is
    shared with the first input, samples are shared with their shards).
    """
    datasets = list(datasets)
    if not datasets:
        raise ValueError("at least one dataset is required")
    first = datasets[0]
    merged = NoiseDataset(
        design_name=first.design_name,
        tile_shape=first.tile_shape,
        distance=first.distance,
        dt=first.dt,
        vdd=first.vdd,
        hotspot_threshold=first.hotspot_threshold,
    )
    for dataset in datasets:
        if dataset.design_name != first.design_name:
            raise ValueError(
                f"cannot merge datasets of different designs: "
                f"{dataset.design_name!r} vs {first.design_name!r}"
            )
        if dataset.tile_shape != first.tile_shape:
            raise ValueError("cannot merge datasets with different tile shapes")
        if not np.array_equal(dataset.distance, first.distance):
            raise ValueError("cannot merge datasets with different distance tensors")
        if not np.isclose(dataset.dt, first.dt) or dataset.vdd != first.vdd:
            raise ValueError("cannot merge datasets with different dt/Vdd")
        if dataset.hotspot_threshold != first.hotspot_threshold:
            raise ValueError("cannot merge datasets with different hotspot thresholds")
        merged.samples.extend(dataset.samples)
    return merged


@dataclass(frozen=True)
class DatasetSplit:
    """Index sets of the train / validation / test partitions."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    @property
    def sizes(self) -> tuple[int, int, int]:
        """Sizes of the three partitions."""
        return (len(self.train), len(self.validation), len(self.test))

    def assert_disjoint(self, total: int) -> None:
        """Raise ``ValueError`` if the partitions overlap or miss samples."""
        union = np.concatenate([self.train, self.validation, self.test])
        if len(np.unique(union)) != len(union):
            raise ValueError("split partitions overlap")
        if sorted(union.tolist()) != list(range(total)):
            raise ValueError("split partitions do not cover the dataset")


def _sample_signatures(dataset: NoiseDataset) -> np.ndarray:
    """Flat feature signatures used to measure distance between samples."""
    summaries = dataset.summary_features()
    flat = summaries.reshape(len(dataset), -1)
    scale = np.max(np.abs(flat))
    return flat / scale if scale > 0 else flat


def _greedy_selection(signatures: np.ndarray, threshold: float, order: np.ndarray) -> list[int]:
    """Greedy expansion: keep a candidate if it is far from everything kept."""
    selected: list[int] = []
    for candidate in order:
        if not selected:
            selected.append(int(candidate))
            continue
        distances = np.linalg.norm(
            signatures[selected] - signatures[candidate][np.newaxis, :], axis=1
        )
        if np.min(distances) > threshold:
            selected.append(int(candidate))
    return selected


def expansion_split(
    dataset: NoiseDataset,
    train_fraction: float = 0.6,
    validation_ratio: float = 0.3,
    seed: RandomState = 0,
    threshold_iterations: int = 20,
) -> DatasetSplit:
    """Training-set expansion split (Sec. 3.4.4).

    A candidate sample is added to the training set only when its distance to
    every already-selected sample exceeds a threshold; the threshold is tuned
    by bisection so the training share is close to ``train_fraction`` (the
    paper targets ~60%).  The remaining samples are split into validation and
    test sets at ``validation_ratio : (1 - validation_ratio)`` (3:7 in the
    paper).
    """
    check_probability(train_fraction, "train_fraction")
    check_probability(validation_ratio, "validation_ratio")
    total = len(dataset)
    if total < 3:
        raise ValueError("need at least 3 samples to split")

    rng = ensure_rng(seed)
    signatures = _sample_signatures(dataset)
    order = rng.permutation(total)
    target_train = max(1, int(round(train_fraction * total)))

    # Bisection on the distance threshold: larger threshold -> fewer samples.
    low, high = 0.0, float(np.max(np.linalg.norm(signatures - signatures.mean(0), axis=1)) * 2 + 1e-9)
    best = _greedy_selection(signatures, 0.0, order)
    for _ in range(threshold_iterations):
        middle = 0.5 * (low + high)
        selected = _greedy_selection(signatures, middle, order)
        if abs(len(selected) - target_train) < abs(len(best) - target_train):
            best = selected
        if len(selected) > target_train:
            low = middle
        else:
            high = middle
    train_indices = np.array(sorted(best), dtype=int)

    remaining = np.array([i for i in range(total) if i not in set(best)], dtype=int)
    remaining = rng.permutation(remaining)
    num_validation = int(round(validation_ratio * len(remaining)))
    validation_indices = np.array(sorted(remaining[:num_validation]), dtype=int)
    test_indices = np.array(sorted(remaining[num_validation:]), dtype=int)

    split = DatasetSplit(train=train_indices, validation=validation_indices, test=test_indices)
    split.assert_disjoint(total)
    _LOG.info("expansion split: train=%d val=%d test=%d", *split.sizes)
    return split
