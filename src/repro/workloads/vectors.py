"""Random test-vector (switching-current trace) generation.

For sign-off, the paper randomly generates 500 groups of test vectors per
design and simulates each one with the commercial tool (Sec. 4.1).  A test
vector here is a :class:`~repro.sim.waveform.CurrentTrace`: per-load currents
over time.  The generator composes each vector from cluster-level activity
profiles so that traces look like real workloads rather than white noise:

* a baseline activity level (leakage plus background switching),
* a handful of activity *events* per cluster — bursts, steps, ramps and
  clock-gated square waves,
* optional resonance-tuned bursts whose width matches the die-package
  resonance period, the mechanism that actually produces worst-case dynamic
  noise,
* per-load, per-stamp toggling jitter on top of the cluster profile.

The same generator drives the training-set creation and the evaluation
vectors, mirroring the paper's "small set of randomly produced test vectors".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive, check_probability
from repro.utils.random import RandomState, ensure_rng, spawn_rngs
from repro.workloads.activity import DEFAULT_MAX_ACTIVITY, clamp_activity, resonance_steps

#: Event kinds the generator can compose into an activity profile.
EVENT_KINDS = ("burst", "step", "ramp", "clock_gate")


@dataclass(frozen=True)
class VectorConfig:
    """Parameters of the random test-vector generator.

    Attributes
    ----------
    num_steps:
        Number of time stamps per vector.
    dt:
        Time step in seconds (the paper uses 1 ps; the default here is 10 ps
        to keep the scaled designs' traces short while still resolving the
        die-package resonance of the synthetic designs).
    baseline_range:
        Range of the per-cluster baseline activity (fraction of nominal
        current).
    peak_range:
        Range of the per-event peak activity.
    events_per_cluster:
        Inclusive range of the number of activity events per cluster.
    resonance_probability:
        Probability that a burst event is tuned to the die-package resonance
        period (these are the vectors that produce the deepest droops).
    max_activity:
        Upper clamp on the cluster activity (a circuit cannot switch harder
        than its design maximum, no matter how many events overlap).  The
        default is the shared activity contract's
        :data:`~repro.workloads.activity.DEFAULT_MAX_ACTIVITY`, which the
        scenario builders clamp to as well.
    toggle_jitter:
        Relative per-load, per-stamp jitter applied on top of the cluster
        activity (models instance-level toggling randomness).
    idle_probability:
        Probability that a cluster stays idle (baseline only) for the whole
        vector — keeps the dataset from saturating every tile every time.
    """

    num_steps: int = 400
    dt: float = 1e-11
    baseline_range: tuple[float, float] = (0.05, 0.25)
    peak_range: tuple[float, float] = (0.6, 1.6)
    events_per_cluster: tuple[int, int] = (1, 4)
    max_activity: float = DEFAULT_MAX_ACTIVITY
    resonance_probability: float = 0.5
    toggle_jitter: float = 0.35
    idle_probability: float = 0.15

    def __post_init__(self) -> None:
        if self.num_steps < 2:
            raise ValueError(f"num_steps must be >= 2, got {self.num_steps}")
        check_positive(self.dt, "dt")
        check_probability(self.resonance_probability, "resonance_probability")
        check_probability(self.idle_probability, "idle_probability")
        if self.baseline_range[0] < 0 or self.baseline_range[1] < self.baseline_range[0]:
            raise ValueError(f"invalid baseline_range {self.baseline_range}")
        if self.peak_range[1] < self.peak_range[0] or self.peak_range[0] <= 0:
            raise ValueError(f"invalid peak_range {self.peak_range}")
        if self.events_per_cluster[0] < 0 or self.events_per_cluster[1] < self.events_per_cluster[0]:
            raise ValueError(f"invalid events_per_cluster {self.events_per_cluster}")
        if self.toggle_jitter < 0:
            raise ValueError(f"toggle_jitter must be >= 0, got {self.toggle_jitter}")
        if self.max_activity <= self.baseline_range[1]:
            raise ValueError(
                f"max_activity ({self.max_activity}) must exceed the baseline range"
            )


class TestVectorGenerator:
    """Generates random switching-current traces for one design.

    Parameters
    ----------
    design:
        The design whose loads (and clusters) the vectors excite.
    config:
        Generator parameters.
    """

    # Tell pytest this is library code, not a test class, despite the name.
    __test__ = False

    def __init__(self, design: Design, config: VectorConfig = VectorConfig()):
        self._design = design
        self._config = config
        # Width (in time stamps) of a half resonance period: a burst of this
        # width couples most strongly into the resonance.
        self._resonance_steps = resonance_steps(design, config.dt)

    @property
    def config(self) -> VectorConfig:
        """Generator configuration."""
        return self._config

    @property
    def resonance_steps(self) -> int:
        """Burst width (time stamps) matched to the die-package resonance."""
        return self._resonance_steps

    def generate(self, seed: RandomState = None, name: str = "") -> CurrentTrace:
        """Generate one random test vector."""
        rng = ensure_rng(seed)
        config = self._config
        design = self._design
        num_steps = config.num_steps
        num_loads = design.num_loads

        cluster_ids = design.loads.cluster_id
        num_clusters = design.loads.num_clusters
        time_index = np.arange(num_steps)

        # Activity profile per cluster, plus one profile (index -1 -> last row)
        # for the background loads.
        profiles = np.empty((num_clusters + 1, num_steps))
        for cluster in range(num_clusters + 1):
            profiles[cluster] = self._cluster_profile(rng, time_index)

        # Map loads to their profile row.
        profile_row = np.where(cluster_ids >= 0, cluster_ids, num_clusters)
        activity = profiles[profile_row, :].T  # (T, L)

        # Per-load toggling jitter.
        if config.toggle_jitter > 0:
            jitter = rng.uniform(
                1.0 - config.toggle_jitter, 1.0 + config.toggle_jitter, size=activity.shape
            )
            activity = activity * jitter

        currents = activity * design.loads.nominal_currents[np.newaxis, :]
        currents = np.clip(currents, 0.0, None)
        return CurrentTrace(currents, config.dt, name=name)

    def generate_suite(self, count: int, seed: RandomState = None) -> list[CurrentTrace]:
        """Generate ``count`` independent vectors (reproducible from one seed)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rngs = spawn_rngs(seed, count)
        return [
            self.generate(rng, name=f"{self._design.name}-v{i:04d}") for i, rng in enumerate(rngs)
        ]

    # ------------------------------------------------------------------ #
    # profile construction
    # ------------------------------------------------------------------ #

    def _cluster_profile(self, rng: np.random.Generator, time_index: np.ndarray) -> np.ndarray:
        """Activity profile (fraction of nominal current) for one cluster."""
        config = self._config
        num_steps = time_index.shape[0]
        baseline = rng.uniform(*config.baseline_range)
        profile = np.full(num_steps, baseline)
        if rng.random() < config.idle_probability:
            return profile

        num_events = int(rng.integers(config.events_per_cluster[0], config.events_per_cluster[1] + 1))
        for _ in range(num_events):
            kind = EVENT_KINDS[int(rng.integers(0, len(EVENT_KINDS)))]
            peak = rng.uniform(*config.peak_range)
            profile += self._event(rng, time_index, kind, peak)
        return clamp_activity(profile, config.max_activity)

    def _event(
        self,
        rng: np.random.Generator,
        time_index: np.ndarray,
        kind: str,
        peak: float,
    ) -> np.ndarray:
        """One activity event of the given kind and peak amplitude."""
        num_steps = time_index.shape[0]
        center = rng.uniform(0.1, 0.9) * num_steps
        if kind == "burst":
            if rng.random() < self._config.resonance_probability:
                width = self._resonance_steps
            else:
                width = rng.uniform(0.02, 0.15) * num_steps
            return peak * np.exp(-0.5 * ((time_index - center) / max(width, 1.0)) ** 2)
        if kind == "step":
            start = int(rng.uniform(0.1, 0.8) * num_steps)
            profile = np.zeros(num_steps)
            profile[start:] = peak
            return profile
        if kind == "ramp":
            start = int(rng.uniform(0.05, 0.6) * num_steps)
            length = max(2, int(rng.uniform(0.1, 0.4) * num_steps))
            end = min(num_steps, start + length)
            profile = np.zeros(num_steps)
            if end - start < 2:
                # Degenerate ramp (num_steps == 2 can truncate the ramp to a
                # single stamp): linspace(0, peak, 1) would contribute
                # nothing, so jump straight to the peak instead.
                profile[start:end] = peak
            else:
                profile[start:end] = np.linspace(0.0, peak, end - start)
            profile[end:] = peak
            return profile
        if kind == "clock_gate":
            period = max(2, int(rng.uniform(1.0, 4.0) * self._resonance_steps))
            duty = rng.uniform(0.3, 0.7)
            phase = rng.integers(0, period)
            on = ((time_index + phase) % period) < duty * period
            start = int(rng.uniform(0.0, 0.5) * num_steps)
            end = int(rng.uniform(0.6, 1.0) * num_steps)
            window = (time_index >= start) & (time_index < end)
            return peak * (on & window)
        raise ValueError(f"unknown event kind {kind!r}")


def generate_test_vectors(
    design: Design,
    count: int,
    config: VectorConfig = VectorConfig(),
    seed: RandomState = 0,
) -> list[CurrentTrace]:
    """Convenience wrapper: build a generator and produce ``count`` vectors."""
    return TestVectorGenerator(design, config).generate_suite(count, seed)
