"""Workload (test-vector) generation and labelled-dataset construction."""

from repro.workloads.vectors import (
    EVENT_KINDS,
    TestVectorGenerator,
    VectorConfig,
    generate_test_vectors,
)
from repro.workloads.scenarios import build_scenario, scenario_names
from repro.workloads.dataset import (
    DatasetSplit,
    NoiseDataset,
    NoiseSample,
    build_dataset,
    expansion_split,
    merge_datasets,
)

__all__ = [
    "EVENT_KINDS",
    "TestVectorGenerator",
    "VectorConfig",
    "generate_test_vectors",
    "build_scenario",
    "scenario_names",
    "DatasetSplit",
    "NoiseDataset",
    "NoiseSample",
    "build_dataset",
    "expansion_split",
    "merge_datasets",
]
