"""Workload (test-vector) generation and labelled-dataset construction.

Two generators share one activity contract (:mod:`repro.workloads.activity`):

* :mod:`repro.workloads.vectors` — random test vectors composed from
  per-cluster activity events, the paper's training/sign-off workload;
* :mod:`repro.workloads.scenarios` — the scenario *library*: a registry of
  parameterized, recognisable workload families (DVFS ramps, power viruses,
  thermal throttling, di/dt step trains, ...) selected by declarative
  :class:`~repro.workloads.specs.ScenarioSpec` objects and composable via
  :func:`~repro.workloads.specs.overlay` / :func:`~repro.workloads.specs.
  concat` / :func:`~repro.workloads.specs.mix`.

:mod:`repro.workloads.dataset` turns either kind of trace into labelled
training data (simulated ground truth plus features) and implements the
paper's training-set expansion split.  See ``docs/workloads.md`` for the
scenario-family catalogue and the composition algebra.
"""

from repro.workloads.activity import (
    DEFAULT_MAX_ACTIVITY,
    clamp_activity,
    cluster_activity_to_currents,
    num_activity_profiles,
    resonance_steps,
)
from repro.workloads.vectors import (
    EVENT_KINDS,
    TestVectorGenerator,
    VectorConfig,
    generate_test_vectors,
)
from repro.workloads.specs import (
    COMPOSITE_FAMILIES,
    ScenarioSpec,
    composite_weights,
    concat,
    mix,
    normalize_scenario,
    overlay,
    scenario_spec,
)
from repro.workloads.scenarios import (
    ScenarioFamily,
    build_scenario,
    build_scenario_activity,
    build_scenario_trace,
    family_defaults,
    register_scenario_family,
    scenario_families,
    scenario_names,
    validate_scenario,
)
from repro.workloads.dataset import (
    DatasetSplit,
    NoiseDataset,
    NoiseSample,
    build_dataset,
    expansion_split,
    merge_datasets,
)

__all__ = [
    "DEFAULT_MAX_ACTIVITY",
    "clamp_activity",
    "cluster_activity_to_currents",
    "num_activity_profiles",
    "resonance_steps",
    "EVENT_KINDS",
    "TestVectorGenerator",
    "VectorConfig",
    "generate_test_vectors",
    "COMPOSITE_FAMILIES",
    "ScenarioSpec",
    "ScenarioFamily",
    "scenario_spec",
    "normalize_scenario",
    "composite_weights",
    "overlay",
    "concat",
    "mix",
    "build_scenario",
    "build_scenario_activity",
    "build_scenario_trace",
    "family_defaults",
    "register_scenario_family",
    "scenario_families",
    "scenario_names",
    "validate_scenario",
    "DatasetSplit",
    "NoiseDataset",
    "NoiseSample",
    "build_dataset",
    "expansion_split",
    "merge_datasets",
]
