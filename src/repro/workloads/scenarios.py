"""Named workload scenarios.

The example applications and some benchmarks want recognisable, repeatable
workloads rather than fully random vectors.  Each scenario builds a
deterministic activity profile for the design's clusters and turns it into a
:class:`~repro.sim.waveform.CurrentTrace`:

* ``idle_to_turbo`` — all clusters ramp from near-idle to full activity,
  the classic DVFS ramp that excites both IR drop and resonance.
* ``power_virus`` — everything switches at maximum activity with a
  resonance-rate clock-gating pattern; an upper bound stress vector.
* ``clock_gating_storm`` — clusters toggle on and off at staggered phases,
  producing repeated di/dt events across the die.
* ``single_core_sprint`` — one cluster sprints while the rest idle, which is
  what makes localised hotspots.
* ``steady_state`` — constant medium activity; the near-DC reference where
  temporal compression should discard almost everything.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive
from repro.utils.random import RandomState, ensure_rng

ScenarioBuilder = Callable[[Design, int, float, np.random.Generator], np.ndarray]


def _cluster_activity_to_currents(design: Design, activity: np.ndarray) -> np.ndarray:
    """Expand per-cluster activity ``(T, num_clusters + 1)`` to per-load currents."""
    cluster_ids = design.loads.cluster_id
    num_clusters = design.loads.num_clusters
    profile_row = np.where(cluster_ids >= 0, cluster_ids, num_clusters)
    per_load_activity = activity[:, profile_row]
    return per_load_activity * design.loads.nominal_currents[np.newaxis, :]


def _resonance_steps(design: Design, dt: float) -> int:
    """Half resonance period expressed in time stamps."""
    resonance = design.spec.package.resonance_frequency(max(design.grid.total_decap, 1e-15))
    return max(2, int(round(0.5 / (resonance * dt))))


def _idle_to_turbo(design: Design, num_steps: int, dt: float, rng: np.random.Generator) -> np.ndarray:
    num_profiles = design.loads.num_clusters + 1
    time_index = np.arange(num_steps)
    ramp_start = int(0.2 * num_steps)
    ramp_end = int(0.5 * num_steps)
    activity = np.full((num_steps, num_profiles), 0.1)
    ramp = np.clip((time_index - ramp_start) / max(ramp_end - ramp_start, 1), 0.0, 1.0)
    activity += 1.1 * ramp[:, np.newaxis]
    return activity


def _power_virus(design: Design, num_steps: int, dt: float, rng: np.random.Generator) -> np.ndarray:
    num_profiles = design.loads.num_clusters + 1
    time_index = np.arange(num_steps)
    period = 2 * _resonance_steps(design, dt)
    gate = ((time_index % period) < period // 2).astype(float)
    activity = 0.3 + 1.5 * gate
    return np.tile(activity[:, np.newaxis], (1, num_profiles))


def _clock_gating_storm(
    design: Design, num_steps: int, dt: float, rng: np.random.Generator
) -> np.ndarray:
    num_profiles = design.loads.num_clusters + 1
    time_index = np.arange(num_steps)
    period = 2 * _resonance_steps(design, dt)
    activity = np.empty((num_steps, num_profiles))
    for profile in range(num_profiles):
        phase = int(rng.integers(0, period))
        gate = (((time_index + phase) % period) < period // 2).astype(float)
        activity[:, profile] = 0.2 + 1.2 * gate
    return activity


def _single_core_sprint(
    design: Design, num_steps: int, dt: float, rng: np.random.Generator
) -> np.ndarray:
    num_profiles = design.loads.num_clusters + 1
    time_index = np.arange(num_steps)
    activity = np.full((num_steps, num_profiles), 0.15)
    sprinting = int(rng.integers(0, max(design.loads.num_clusters, 1)))
    burst_center = 0.55 * num_steps
    burst_width = max(2.0, 1.5 * _resonance_steps(design, dt))
    activity[:, sprinting] += 1.6 * np.exp(-0.5 * ((time_index - burst_center) / burst_width) ** 2)
    return activity


def _steady_state(design: Design, num_steps: int, dt: float, rng: np.random.Generator) -> np.ndarray:
    num_profiles = design.loads.num_clusters + 1
    return np.full((num_steps, num_profiles), 0.6)


_SCENARIOS: Dict[str, ScenarioBuilder] = {
    "idle_to_turbo": _idle_to_turbo,
    "power_virus": _power_virus,
    "clock_gating_storm": _clock_gating_storm,
    "single_core_sprint": _single_core_sprint,
    "steady_state": _steady_state,
}


def scenario_names() -> tuple[str, ...]:
    """Names of the available scenarios."""
    return tuple(sorted(_SCENARIOS))


def build_scenario(
    name: str,
    design: Design,
    num_steps: int = 400,
    dt: float = 1e-11,
    seed: RandomState = 0,
) -> CurrentTrace:
    """Build a named scenario trace for a design.

    Parameters
    ----------
    name:
        One of :func:`scenario_names`.
    design:
        Target design.
    num_steps / dt:
        Trace length and time step.
    seed:
        Seed for the scenario's (small) random choices, e.g. which cluster
        sprints.
    """
    if name not in _SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; expected one of {scenario_names()}")
    if num_steps < 2:
        raise ValueError(f"num_steps must be >= 2, got {num_steps}")
    check_positive(dt, "dt")
    rng = ensure_rng(seed)
    activity = _SCENARIOS[name](design, num_steps, dt, rng)
    currents = _cluster_activity_to_currents(design, np.clip(activity, 0.0, None))
    return CurrentTrace(currents, dt, name=f"{design.name}-{name}")
