"""The scenario library: registered workload families and trace building.

The example applications, the corpus factory and both sweep layers want
recognisable, repeatable workloads rather than fully random vectors.  Each
scenario *family* registered here is a parameterized builder that produces a
deterministic cluster-activity profile ``(T, num_clusters + 1)``; a
:class:`~repro.workloads.specs.ScenarioSpec` selects one family member, and
:func:`build_scenario_trace` turns it into a
:class:`~repro.sim.waveform.CurrentTrace` under the shared activity contract
of :mod:`repro.workloads.activity` (non-negative, clamped to the design
maximum — exactly like random vectors).

Registered families (see ``docs/workloads.md`` for the full catalogue):

* ``idle_to_turbo`` — all clusters ramp from near-idle to full activity,
  the classic DVFS ramp that excites both IR drop and resonance.
* ``power_virus`` — everything switches hard with a resonance-rate
  clock-gating pattern; an upper bound stress vector.
* ``clock_gating_storm`` — clusters toggle at staggered random phases,
  producing repeated di/dt events across the die.
* ``single_core_sprint`` — one cluster sprints while the rest idle (the
  localised-hotspot generator); on a design without clusters everything
  stays idle, because there is no single core to sprint.
* ``steady_state`` — constant medium activity; the near-DC reference.
* ``staggered_dvfs`` — clusters ramp up one after another at a fixed
  stagger, the multi-core DVFS rollout.
* ``thermal_throttle`` — sawtooth activity: heat up towards peak, throttle,
  recover — repeated over the trace.
* ``memory_phase`` — compute-bound and memory-bound phases alternate, with
  neighbouring clusters in antiphase.
* ``resonance_chirp`` — a clock-gating square wave whose period sweeps
  through the die-package resonance (finds the worst coupling frequency).
* ``didt_step_train`` — a train of sharp load steps with idle gaps, the
  classic di/dt qualification pattern.
* ``cluster_migration`` — one task's worth of activity hops from cluster to
  cluster (OS-level task migration).
* ``duty_cycle_sweep`` — resonance-rate clock gating whose duty cycle
  sweeps across the trace.
* ``mixed_criticality`` — a steady base load with periodic critical bursts
  on a random subset of clusters.

The legacy ``build_scenario(name, ...)`` API remains as a thin shim over
the registry and is bit-identical to the original five scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive
from repro.utils.random import RandomState, ensure_rng, spawn_rngs
from repro.workloads.activity import (
    DEFAULT_MAX_ACTIVITY,
    clamp_activity,
    cluster_activity_to_currents,
    num_activity_profiles,
    resonance_steps,
)
from repro.workloads.specs import (
    COMPOSITE_FAMILIES,
    ScenarioLike,
    ScenarioSpec,
    composite_weights,
    normalize_scenario,
)

#: Signature of a registered family builder: ``(design, num_steps, dt, rng,
#: **params) -> activity (num_steps, num_clusters + 1)``.
ScenarioBuilder = Callable[..., np.ndarray]


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered scenario family: builder plus parameter defaults."""

    name: str
    builder: ScenarioBuilder
    defaults: tuple

    def resolve_params(self, spec: ScenarioSpec) -> dict:
        """Merge a spec's explicit params over the family defaults.

        Raises
        ------
        ValueError
            When the spec sets a parameter the family does not define.
        """
        params = dict(self.defaults)
        for key, value in spec.params:
            if key not in params:
                raise ValueError(
                    f"scenario family {self.name!r} has no parameter {key!r}; "
                    f"expected one of {sorted(params)}"
                )
            params[key] = value
        return params


_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_scenario_family(name: str, **defaults) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator registering a scenario family under ``name``.

    The keyword arguments are the family's parameters and their default
    values; a :class:`~repro.workloads.specs.ScenarioSpec` may override any
    subset of them (unknown names are rejected at build time).
    """
    if name in COMPOSITE_FAMILIES:
        raise ValueError(f"{name!r} is reserved for the composition algebra")

    def register(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _FAMILIES:
            raise ValueError(f"scenario family {name!r} is already registered")
        _FAMILIES[name] = ScenarioFamily(
            name=name, builder=builder, defaults=tuple(defaults.items())
        )
        return builder

    return register


def scenario_families() -> tuple[str, ...]:
    """Names of the registered (leaf) scenario families, sorted."""
    return tuple(sorted(_FAMILIES))


def scenario_names() -> tuple[str, ...]:
    """Names of the available scenarios (legacy alias of :func:`scenario_families`)."""
    return scenario_families()


def family_defaults(name: str) -> dict:
    """The parameter defaults of one registered family."""
    if name not in _FAMILIES:
        raise ValueError(
            f"unknown scenario family {name!r}; expected one of {scenario_families()}"
        )
    return dict(_FAMILIES[name].defaults)


def validate_scenario(scenario: ScenarioLike) -> ScenarioSpec:
    """Normalise a scenario reference and eagerly validate it.

    Walks the spec tree: every leaf family must be registered and every
    explicit leaf parameter must exist in its family.  Containers that
    embed specs (corpus specs, evaluation configs) call this at
    construction time, so a misspelled family fails where the spec is
    written rather than minutes later inside a worker process.  Families
    registered *after* the container is constructed are consequently not
    usable in it — register custom families at import time.

    Returns
    -------
    The normalised :class:`~repro.workloads.specs.ScenarioSpec`.

    Raises
    ------
    ValueError
        On an unknown family or parameter name anywhere in the tree.
    """
    spec = normalize_scenario(scenario)
    if spec.is_composite:
        composite_weights(spec)
        for child in spec.children:
            validate_scenario(child)
        return spec
    if spec.family not in _FAMILIES:
        raise ValueError(
            f"unknown scenario {spec.family!r}; expected one of {scenario_families()}"
        )
    _FAMILIES[spec.family].resolve_params(spec)
    return spec


# --------------------------------------------------------------------- #
# legacy families (defaults are bit-identical to the original closures)
# --------------------------------------------------------------------- #


@register_scenario_family("idle_to_turbo", base=0.1, swing=1.1, ramp_start=0.2, ramp_end=0.5)
def _idle_to_turbo(design, num_steps, dt, rng, base, swing, ramp_start, ramp_end):
    """DVFS ramp: every profile climbs from ``base`` to ``base + swing``."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    start = int(ramp_start * num_steps)
    end = int(ramp_end * num_steps)
    activity = np.full((num_steps, num_profiles), float(base))
    ramp = np.clip((time_index - start) / max(end - start, 1), 0.0, 1.0)
    activity += swing * ramp[:, np.newaxis]
    return activity


@register_scenario_family("power_virus", base=0.3, swing=1.5, period_scale=1.0, duty=0.5)
def _power_virus(design, num_steps, dt, rng, base, swing, period_scale, duty):
    """Everything gates at (scaled) resonance rate between ``base`` and peak."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    period = max(2, int(round(period_scale * 2 * resonance_steps(design, dt))))
    on_steps = int(round(duty * period))
    gate = ((time_index % period) < on_steps).astype(float)
    activity = base + swing * gate
    return np.tile(activity[:, np.newaxis], (1, num_profiles))


@register_scenario_family("clock_gating_storm", base=0.2, swing=1.2, period_scale=1.0, duty=0.5)
def _clock_gating_storm(design, num_steps, dt, rng, base, swing, period_scale, duty):
    """Every profile gates at the same rate but at a random phase."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    period = max(2, int(round(period_scale * 2 * resonance_steps(design, dt))))
    on_steps = int(round(duty * period))
    activity = np.empty((num_steps, num_profiles))
    for profile in range(num_profiles):
        phase = int(rng.integers(0, period))
        gate = (((time_index + phase) % period) < on_steps).astype(float)
        activity[:, profile] = base + swing * gate
    return activity


@register_scenario_family(
    "single_core_sprint", base=0.15, swing=1.6, center=0.55, width_scale=1.5
)
def _single_core_sprint(design, num_steps, dt, rng, base, swing, center, width_scale):
    """One randomly chosen cluster sprints while everything else idles.

    On a design without activity clusters there is no single core to
    sprint, so the trace stays at the idle baseline — the background loads
    must *not* all sprint together (that would be a power virus, not a
    sprint).
    """
    num_profiles = num_activity_profiles(design)
    num_clusters = design.loads.num_clusters
    time_index = np.arange(num_steps)
    activity = np.full((num_steps, num_profiles), float(base))
    if num_clusters == 0:
        return activity
    sprinting = int(rng.integers(0, num_clusters))
    burst_center = center * num_steps
    burst_width = max(2.0, width_scale * resonance_steps(design, dt))
    activity[:, sprinting] += swing * np.exp(
        -0.5 * ((time_index - burst_center) / burst_width) ** 2
    )
    return activity


@register_scenario_family("steady_state", level=0.6)
def _steady_state(design, num_steps, dt, rng, level):
    """Constant activity everywhere — the near-DC reference."""
    return np.full((num_steps, num_activity_profiles(design)), float(level))


# --------------------------------------------------------------------- #
# new parameterized families
# --------------------------------------------------------------------- #


@register_scenario_family(
    "staggered_dvfs", base=0.1, swing=1.2, start=0.1, stagger=0.08, ramp=0.2
)
def _staggered_dvfs(design, num_steps, dt, rng, base, swing, start, stagger, ramp):
    """Clusters ramp up one after another; background stays at ``base``."""
    num_profiles = num_activity_profiles(design)
    num_clusters = design.loads.num_clusters
    time_index = np.arange(num_steps)
    activity = np.full((num_steps, num_profiles), float(base))
    for cluster in range(num_clusters):
        ramp_start = (start + cluster * stagger) * num_steps
        ramp_steps = max(ramp * num_steps, 1.0)
        rise = np.clip((time_index - ramp_start) / ramp_steps, 0.0, 1.0)
        activity[:, cluster] += swing * rise
    return activity


@register_scenario_family(
    "thermal_throttle", base=0.3, peak=1.5, throttle=0.6, period=0.25
)
def _thermal_throttle(design, num_steps, dt, rng, base, peak, throttle, period):
    """Sawtooth: climb towards ``peak``, throttle back, climb again."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    period_steps = max(2, int(round(period * num_steps)))
    phase = (time_index % period_steps) / period_steps
    first = time_index < period_steps
    level = np.where(
        first, base + (peak - base) * phase, throttle + (peak - throttle) * phase
    )
    return np.tile(level[:, np.newaxis], (1, num_profiles))


@register_scenario_family(
    "memory_phase", compute=1.3, memory=0.25, phase=0.15, antiphase=True
)
def _memory_phase(design, num_steps, dt, rng, compute, memory, phase, antiphase):
    """Compute-bound and memory-bound phases alternate per profile."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    phase_steps = max(2, int(round(phase * num_steps)))
    block = (time_index // phase_steps) % 2
    activity = np.empty((num_steps, num_profiles))
    for profile in range(num_profiles):
        flipped = block ^ 1 if (antiphase and profile % 2 == 1) else block
        activity[:, profile] = np.where(flipped == 0, compute, memory)
    return activity


@register_scenario_family(
    "resonance_chirp", base=0.2, swing=1.4, start_scale=0.5, stop_scale=2.0
)
def _resonance_chirp(design, num_steps, dt, rng, base, swing, start_scale, stop_scale):
    """Square-wave gating whose period sweeps through the resonance period."""
    num_profiles = num_activity_profiles(design)
    full_period = 2 * resonance_steps(design, dt)
    periods = np.maximum(np.linspace(start_scale, stop_scale, num_steps) * full_period, 2.0)
    phase = np.cumsum(1.0 / periods)
    gate = ((phase % 1.0) < 0.5).astype(float)
    activity = base + swing * gate
    return np.tile(activity[:, np.newaxis], (1, num_profiles))


@register_scenario_family(
    "didt_step_train", base=0.2, swing=1.5, events=4, hold=0.06
)
def _didt_step_train(design, num_steps, dt, rng, base, swing, events, hold):
    """Evenly spaced sharp load steps with idle gaps (di/dt qualification)."""
    num_profiles = num_activity_profiles(design)
    events = max(1, int(events))
    hold_steps = max(1, int(round(hold * num_steps)))
    gate = np.zeros(num_steps)
    for event in range(events):
        start = int((event + 0.5) * num_steps / events) - hold_steps // 2
        start = max(0, start)
        gate[start:start + hold_steps] = 1.0
    activity = base + swing * gate
    return np.tile(activity[:, np.newaxis], (1, num_profiles))


@register_scenario_family("cluster_migration", base=0.15, swing=1.5, dwell=0.2)
def _cluster_migration(design, num_steps, dt, rng, base, swing, dwell):
    """One task's activity hops between clusters every ``dwell`` fraction."""
    num_profiles = num_activity_profiles(design)
    num_clusters = design.loads.num_clusters
    time_index = np.arange(num_steps)
    activity = np.full((num_steps, num_profiles), float(base))
    if num_clusters == 0:
        return activity
    dwell_steps = max(1, int(round(dwell * num_steps)))
    start_cluster = int(rng.integers(0, num_clusters))
    active = (start_cluster + time_index // dwell_steps) % num_clusters
    for cluster in range(num_clusters):
        activity[active == cluster, cluster] += swing
    return activity


@register_scenario_family(
    "duty_cycle_sweep", base=0.2, swing=1.3, period_scale=1.0, duty_start=0.1, duty_stop=0.9
)
def _duty_cycle_sweep(design, num_steps, dt, rng, base, swing, period_scale, duty_start, duty_stop):
    """Resonance-rate gating whose duty cycle sweeps across the trace."""
    num_profiles = num_activity_profiles(design)
    time_index = np.arange(num_steps)
    period = max(2, int(round(period_scale * 2 * resonance_steps(design, dt))))
    duty = np.linspace(duty_start, duty_stop, num_steps)
    gate = ((time_index % period) < duty * period).astype(float)
    activity = base + swing * gate
    return np.tile(activity[:, np.newaxis], (1, num_profiles))


@register_scenario_family(
    "mixed_criticality", base=0.45, swing=1.2, critical_fraction=0.5,
    period_scale=4.0, duty=0.25,
)
def _mixed_criticality(design, num_steps, dt, rng, base, swing, critical_fraction, period_scale, duty):
    """Steady base load plus periodic critical bursts on a cluster subset.

    The critical clusters are a random subset (``critical_fraction`` of the
    design's clusters, at least one); on a design without clusters the
    background profile carries the critical bursts.
    """
    num_profiles = num_activity_profiles(design)
    num_clusters = design.loads.num_clusters
    time_index = np.arange(num_steps)
    activity = np.full((num_steps, num_profiles), float(base))
    if num_clusters > 0:
        count = max(1, int(round(critical_fraction * num_clusters)))
        critical = rng.permutation(num_clusters)[:count]
    else:
        critical = np.array([0])
    period = max(2, int(round(period_scale * 2 * resonance_steps(design, dt))))
    on_steps = max(1, int(round(duty * period)))
    for profile in critical:
        phase = int(rng.integers(0, period))
        gate = (((time_index + phase) % period) < on_steps).astype(float)
        activity[:, int(profile)] += swing * gate
    return activity


# --------------------------------------------------------------------- #
# building specs into activities and traces
# --------------------------------------------------------------------- #


def _concat_bounds(num_steps: int, parts: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` segments of a trace."""
    if num_steps < parts:
        raise ValueError(
            f"cannot split {num_steps} steps into {parts} concatenated scenarios"
        )
    edges = [round(part * num_steps / parts) for part in range(parts + 1)]
    return [(edges[part], edges[part + 1]) for part in range(parts)]


def build_scenario_activity(
    scenario: ScenarioLike,
    design: Design,
    num_steps: int,
    dt: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Build a spec's raw (unclamped) activity matrix, recursively.

    Composite specs derive one child generator per child via
    :func:`~repro.utils.random.spawn_rngs`, so a composition is exactly as
    deterministic as its parts.

    Parameters
    ----------
    scenario:
        A family name or :class:`~repro.workloads.specs.ScenarioSpec`.
    design:
        Target design.
    num_steps / dt:
        Trace length and time step.
    rng:
        Generator for the scenario's (small) random choices.

    Returns
    -------
    Activity matrix of shape ``(num_steps, num_clusters + 1)``.
    """
    spec = normalize_scenario(scenario)
    if spec.is_composite:
        explicit_weights = composite_weights(spec)
        child_rngs = spawn_rngs(rng, len(spec.children))
        if spec.family == "concat":
            parts = []
            for child, (start, stop), child_rng in zip(
                spec.children, _concat_bounds(num_steps, len(spec.children)), child_rngs
            ):
                parts.append(
                    build_scenario_activity(child, design, stop - start, dt, child_rng)
                )
            return np.vstack(parts)
        stacked = np.stack(
            [
                build_scenario_activity(child, design, num_steps, dt, child_rng)
                for child, child_rng in zip(spec.children, child_rngs)
            ]
        )
        if spec.family == "overlay":
            return stacked.sum(axis=0)
        if explicit_weights is None:
            explicit_weights = (1.0,) * len(spec.children)
        weights = np.asarray(explicit_weights, dtype=float)
        weights = weights / weights.sum()
        return np.einsum("c,cij->ij", weights, stacked)
    if spec.family not in _FAMILIES:
        raise ValueError(
            f"unknown scenario {spec.family!r}; expected one of {scenario_families()}"
        )
    family = _FAMILIES[spec.family]
    return family.builder(design, num_steps, dt, rng, **family.resolve_params(spec))


def build_scenario_trace(
    scenario: ScenarioLike,
    design: Design,
    num_steps: int = 400,
    dt: float = 1e-11,
    seed: RandomState = 0,
    max_activity: float = DEFAULT_MAX_ACTIVITY,
    name: Optional[str] = None,
) -> CurrentTrace:
    """Build a scenario spec into a :class:`~repro.sim.waveform.CurrentTrace`.

    The activity is clamped to ``[0, max_activity]`` before it becomes
    currents — scenarios obey the same physical activity contract as random
    vectors (see :mod:`repro.workloads.activity`), no matter how many
    overlays stack up.

    Parameters
    ----------
    scenario:
        A family name (defaults) or a :class:`~repro.workloads.specs.
        ScenarioSpec` (family + parameters, possibly composite).
    design:
        Target design.
    num_steps / dt:
        Trace length and time step.
    seed:
        Seed for the scenario's (small) random choices, e.g. which cluster
        sprints.
    max_activity:
        Upper activity clamp (fraction of nominal current).
    name:
        Trace name; defaults to ``"<design>-<scenario label>"``.
    """
    spec = normalize_scenario(scenario)
    if num_steps < 2:
        raise ValueError(f"num_steps must be >= 2, got {num_steps}")
    check_positive(dt, "dt")
    rng = ensure_rng(seed)
    activity = build_scenario_activity(spec, design, num_steps, dt, rng)
    currents = cluster_activity_to_currents(
        design, clamp_activity(activity, max_activity)
    )
    return CurrentTrace(currents, dt, name=name or f"{design.name}-{spec.label}")


def build_scenario(
    name: str,
    design: Design,
    num_steps: int = 400,
    dt: float = 1e-11,
    seed: RandomState = 0,
) -> CurrentTrace:
    """Build a named scenario trace for a design (legacy registry shim).

    Equivalent to :func:`build_scenario_trace` with an all-defaults spec of
    the named family; output is bit-identical to the original hard-coded
    scenarios for the five legacy names.

    Parameters
    ----------
    name:
        One of :func:`scenario_names`.
    design:
        Target design.
    num_steps / dt:
        Trace length and time step.
    seed:
        Seed for the scenario's (small) random choices, e.g. which cluster
        sprints.
    """
    return build_scenario_trace(
        name, design, num_steps=num_steps, dt=dt, seed=seed,
        name=f"{design.name}-{name}",
    )
