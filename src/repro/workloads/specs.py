"""Declarative scenario specifications and the composition algebra.

A :class:`ScenarioSpec` names a scenario *family* (a parameterized builder
registered in :mod:`repro.workloads.scenarios`) plus the parameter values
that select one member of that family — mirroring the conventions of
:class:`~repro.datagen.spec.CorpusSpec`: frozen, picklable, canonically
hashable (:meth:`ScenarioSpec.config_hash`) and JSON round-trippable
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`), so specs
can be embedded in corpus specs, evaluation configs and sweep manifests and
covered by their hashes.

Three *composite* families form the composition algebra; arbitrarily many
workload variants derive from few primitives by nesting them:

* :func:`overlay` — activities of the children are summed (events stack);
* :func:`concat`  — the trace is split into consecutive segments, one per
  child (phases follow each other);
* :func:`mix`     — a weighted average of the children's activities.

Composites are ordinary specs (``family`` is ``"overlay"`` / ``"concat"`` /
``"mix"`` with child specs attached), so they serialize, hash and pickle
like any leaf spec and can be nested to any depth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

__all__ = [
    "COMPOSITE_FAMILIES",
    "ParamValue",
    "ScenarioLike",
    "ScenarioSpec",
    "scenario_spec",
    "normalize_scenario",
    "composite_weights",
    "overlay",
    "concat",
    "mix",
]

#: Families with child specs instead of a registered builder.
COMPOSITE_FAMILIES = ("overlay", "concat", "mix")

#: Types a scenario parameter value may take (scalars, or a tuple of floats
#: for vector-valued parameters such as mix weights).
ParamValue = Union[bool, int, float, str, tuple]

#: Anything accepted where a scenario is expected: a family name (meaning
#: "that family at its default parameters") or a full spec.
ScenarioLike = Union[str, "ScenarioSpec"]


def _canonical_value(key: str, value) -> ParamValue:
    """Validate and canonicalise one parameter value."""
    if isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        items = tuple(value)
        if not all(isinstance(item, (bool, int, float)) for item in items):
            raise TypeError(f"parameter {key!r}: tuple values must be numeric, got {value!r}")
        return items
    raise TypeError(
        f"parameter {key!r} must be a bool/int/float/str or a numeric tuple, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One parameterized workload scenario (family + parameters + children).

    Attributes
    ----------
    family:
        A scenario family registered in :mod:`repro.workloads.scenarios`,
        or one of :data:`COMPOSITE_FAMILIES`.
    params:
        Canonical ``(key, value)`` pairs, sorted by key.  Omitted parameters
        take the family's registered defaults; the constructor helper
        :func:`scenario_spec` accepts them as keyword arguments.
    children:
        Child specs (composite families only).
    """

    family: str
    params: tuple = ()
    children: tuple = ()

    def __post_init__(self) -> None:
        if not self.family or not isinstance(self.family, str):
            raise ValueError(f"family must be a non-empty string, got {self.family!r}")
        pairs = []
        for entry in self.params:
            key, value = entry
            if not isinstance(key, str) or not key:
                raise ValueError(f"parameter names must be non-empty strings, got {key!r}")
            pairs.append((key, _canonical_value(key, value)))
        keys = [key for key, _ in pairs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate parameter names in {keys}")
        object.__setattr__(self, "params", tuple(sorted(pairs)))
        children = tuple(
            child if isinstance(child, ScenarioSpec) else normalize_scenario(child)
            for child in self.children
        )
        object.__setattr__(self, "children", children)
        if self.family in COMPOSITE_FAMILIES:
            if not children:
                raise ValueError(f"composite family {self.family!r} needs at least one child")
        elif children:
            raise ValueError(
                f"family {self.family!r} is not composite and cannot have children"
            )

    @property
    def is_composite(self) -> bool:
        """Whether this spec composes child specs rather than a builder."""
        return self.family in COMPOSITE_FAMILIES

    def param_dict(self) -> dict:
        """The explicit parameters as a plain dict."""
        return dict(self.params)

    def param(self, name: str, default=None):
        """One explicit parameter value, or ``default`` when unset."""
        return self.param_dict().get(name, default)

    def with_params(self, **updates) -> "ScenarioSpec":
        """A copy with the given parameters added or replaced."""
        merged = self.param_dict()
        merged.update(updates)
        return ScenarioSpec(
            family=self.family, params=tuple(merged.items()), children=self.children
        )

    @property
    def label(self) -> str:
        """Short human-readable identifier, stable across processes.

        The bare family name for an all-defaults leaf spec (so legacy named
        scenarios keep their old labels in sweep manifests), otherwise the
        family plus the first 8 hex digits of :meth:`config_hash`.
        """
        if not self.params and not self.children:
            return self.family
        return f"{self.family}[{self.config_hash()[:8]}]"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (params as a plain mapping)."""
        payload: dict = {"family": self.family}
        if self.params:
            payload["params"] = {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.params
            }
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Union[Mapping, str]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a bare name)."""
        if isinstance(payload, str):
            return cls(family=payload)
        params = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in dict(payload.get("params", {})).items()
        )
        children = tuple(
            cls.from_dict(child) for child in payload.get("children", ())
        )
        return cls(family=payload["family"], params=params, children=children)

    def config_hash(self) -> str:
        """Canonical SHA-256 of the spec.

        Two specs hash equally iff their canonical JSON forms match —
        parameter order never matters, explicit parameters always do (a spec
        that spells out a default hashes differently from one that omits it,
        exactly like the corpus spec convention).
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_spec(family: str, **params) -> ScenarioSpec:
    """Build a leaf :class:`ScenarioSpec` from keyword parameters."""
    return ScenarioSpec(family=family, params=tuple(params.items()))


def normalize_scenario(scenario: ScenarioLike) -> ScenarioSpec:
    """Coerce a scenario reference (name or spec) into a :class:`ScenarioSpec`."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, str):
        return ScenarioSpec(family=scenario)
    raise TypeError(
        f"expected a scenario name or ScenarioSpec, got {type(scenario).__name__}"
    )


def composite_weights(spec: ScenarioSpec) -> Optional[tuple]:
    """Validate a composite spec's parameters; return the ``mix`` weights.

    The :func:`overlay`/:func:`concat`/:func:`mix` constructors build
    well-formed specs, but :meth:`ScenarioSpec.from_dict` (and direct
    construction) can produce composites with misspelled or invalid
    parameters; both the eager container validation and the build path run
    every composite through this check so such specs fail loudly instead
    of being silently ignored or dividing by zero.

    Returns
    -------
    The explicit ``mix`` weights as a tuple, or ``None`` (no weights set /
    not a ``mix``).

    Raises
    ------
    ValueError
        When the spec is not composite, sets a parameter its family does
        not define, or sets malformed weights (wrong count, negative, or a
        non-positive sum).
    """
    if not spec.is_composite:
        raise ValueError(f"{spec.family!r} is not a composite family")
    params = spec.param_dict()
    allowed = {"weights"} if spec.family == "mix" else set()
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ValueError(
            f"composite family {spec.family!r} has no parameter(s) {unknown}"
        )
    weights = params.get("weights")
    if weights is None:
        return None
    if not isinstance(weights, tuple):
        weights = (weights,)
    if not all(isinstance(w, (int, float)) for w in weights):
        raise ValueError(f"mix weights must be numeric, got {weights!r}")
    if len(weights) != len(spec.children):
        raise ValueError(
            f"mix needs one weight per child, got {len(weights)} "
            f"for {len(spec.children)} children"
        )
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError(
            f"weights must be non-negative with a positive sum, got {weights}"
        )
    return weights


def overlay(*scenarios: ScenarioLike) -> ScenarioSpec:
    """Compose scenarios by summing their activities (events stack).

    The overlaid activity is the element-wise sum of the children's
    activities; the shared ``[0, max_activity]`` clamp still applies when
    the composed spec is built into a trace.
    """
    return ScenarioSpec(
        family="overlay", children=tuple(normalize_scenario(s) for s in scenarios)
    )


def concat(*scenarios: ScenarioLike) -> ScenarioSpec:
    """Compose scenarios as consecutive phases of one trace.

    The trace's ``num_steps`` is split into one contiguous segment per child
    (balanced to within one stamp); each child is built at its segment
    length.  Building requires ``num_steps >= len(children)``.
    """
    return ScenarioSpec(
        family="concat", children=tuple(normalize_scenario(s) for s in scenarios)
    )


def mix(
    scenarios: Sequence[ScenarioLike], weights: Optional[Sequence[float]] = None
) -> ScenarioSpec:
    """Compose scenarios as a weighted average of their activities.

    Parameters
    ----------
    scenarios:
        The child scenarios.
    weights:
        One non-negative weight per child (normalised to sum to 1 at build
        time); uniform when omitted.
    """
    children = tuple(normalize_scenario(s) for s in scenarios)
    params: tuple = ()
    if weights is not None:
        params = (("weights", tuple(float(w) for w in weights)),)
    spec = ScenarioSpec(family="mix", params=params, children=children)
    composite_weights(spec)
    return spec
