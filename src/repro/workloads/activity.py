"""The cluster-activity contract shared by every workload generator.

Both the random test-vector generator (:mod:`repro.workloads.vectors`) and
the scenario library (:mod:`repro.workloads.scenarios`) describe a workload
the same way: a per-cluster *activity* matrix of shape
``(num_steps, num_clusters + 1)`` — one column per activity cluster plus a
final column for the background loads — expressed as a fraction of each
load's nominal current.  This module holds the pieces of that contract that
must agree between the two generators:

* :data:`DEFAULT_MAX_ACTIVITY` / :func:`clamp_activity` — the physical
  activity bounds.  A circuit cannot draw negative current, and it cannot
  switch harder than its design maximum no matter how many events or
  scenario overlays stack up, so *every* activity profile is clamped to
  ``[0, max_activity]`` before it becomes currents.
* :func:`resonance_steps` — the half die-package resonance period expressed
  in time stamps, the width at which bursts couple most strongly into the
  resonance.  Previously duplicated between the scenario builders and
  ``TestVectorGenerator``; this is now the single definition.
* :func:`cluster_activity_to_currents` — the expansion from cluster
  activity to per-load currents via the design's cluster map.
"""

from __future__ import annotations

import numpy as np

from repro.pdn.designs import Design
from repro.utils import check_positive

#: Default upper clamp on cluster activity (fraction of nominal current).
#: Shared by :class:`~repro.workloads.vectors.VectorConfig` and the scenario
#: builders so random vectors and scenarios obey the same physical bound.
DEFAULT_MAX_ACTIVITY = 2.0


def resonance_steps(design: Design, dt: float) -> int:
    """Half die-package resonance period in time stamps (always >= 2).

    A current burst of this width couples most strongly into the die-package
    resonance — the mechanism that produces the deepest dynamic droops.

    Parameters
    ----------
    design:
        The design whose package and total die decap set the resonance.
    dt:
        Time-step in seconds.
    """
    check_positive(dt, "dt")
    resonance = design.spec.package.resonance_frequency(max(design.grid.total_decap, 1e-15))
    return max(2, int(round(0.5 / (resonance * dt))))


def num_activity_profiles(design: Design) -> int:
    """Columns of a design's activity matrix: one per cluster plus background."""
    return design.loads.num_clusters + 1


def clamp_activity(activity: np.ndarray, max_activity: float = DEFAULT_MAX_ACTIVITY) -> np.ndarray:
    """Clamp an activity profile to the physical range ``[0, max_activity]``.

    Parameters
    ----------
    activity:
        Activity values (any shape), as fractions of nominal current.
    max_activity:
        The design maximum; defaults to :data:`DEFAULT_MAX_ACTIVITY`.

    Returns
    -------
    A new clipped array.
    """
    check_positive(max_activity, "max_activity")
    return np.clip(activity, 0.0, max_activity)


def cluster_activity_to_currents(design: Design, activity: np.ndarray) -> np.ndarray:
    """Expand cluster activity ``(T, num_clusters + 1)`` to per-load currents.

    Loads follow the column of their activity cluster; background loads
    (``cluster_id == -1``) follow the final column.

    Parameters
    ----------
    design:
        The design whose loads the activity drives.
    activity:
        Activity matrix of shape ``(T, num_clusters + 1)``.

    Returns
    -------
    Per-load currents in amperes, shape ``(T, num_loads)``.
    """
    activity = np.asarray(activity, dtype=float)
    expected = num_activity_profiles(design)
    if activity.ndim != 2 or activity.shape[1] != expected:
        raise ValueError(
            f"activity must have shape (T, {expected}) for {design.name}, "
            f"got {activity.shape}"
        )
    cluster_ids = design.loads.cluster_id
    num_clusters = design.loads.num_clusters
    profile_row = np.where(cluster_ids >= 0, cluster_ids, num_clusters)
    per_load_activity = activity[:, profile_row]
    return per_load_activity * design.loads.nominal_currents[np.newaxis, :]
