"""Worst-case dynamic PDN noise prediction — DAC 2022 reproduction.

The public API re-exports the pieces a typical user needs: reference designs,
the simulator ("commercial tool" stand-in), the workload generator, and the
prediction framework.  See ``examples/quickstart.py`` for a guided tour and
``DESIGN.md`` for the full system inventory.
"""

from repro.pdn import (
    Design,
    DesignSpec,
    make_design,
    reference_design,
    reference_design_names,
    small_test_design,
)
from repro.sim import CurrentTrace, DynamicNoiseAnalysis, DynamicNoiseResult
from repro.workloads import (
    NoiseDataset,
    TestVectorGenerator,
    VectorConfig,
    build_dataset,
    build_scenario,
    expansion_split,
    generate_test_vectors,
)
from repro.core import (
    AccuracyReport,
    ModelConfig,
    NoiseModelTrainer,
    NoisePredictor,
    PipelineConfig,
    TrainingConfig,
    WorstCaseNoiseFramework,
    WorstCaseNoiseNet,
)
from repro.serving import (
    PredictorRegistry,
    ScenarioJob,
    ScreeningService,
    screen_scenarios,
)
from repro.datagen import (
    CorpusDesignSpec,
    CorpusSpec,
    generate_corpus,
    load_corpus,
    load_design_dataset,
    paper_corpus_spec,
)
from repro.eval import (
    BaselineStore,
    CrossDesignEvaluator,
    EvalConfig,
    MultiDesignTrainer,
    ScenarioSweep,
)

__version__ = "0.1.0"

__all__ = [
    "Design",
    "DesignSpec",
    "make_design",
    "reference_design",
    "reference_design_names",
    "small_test_design",
    "CurrentTrace",
    "DynamicNoiseAnalysis",
    "DynamicNoiseResult",
    "NoiseDataset",
    "TestVectorGenerator",
    "VectorConfig",
    "build_dataset",
    "build_scenario",
    "expansion_split",
    "generate_test_vectors",
    "AccuracyReport",
    "ModelConfig",
    "NoiseModelTrainer",
    "NoisePredictor",
    "PipelineConfig",
    "TrainingConfig",
    "WorstCaseNoiseFramework",
    "WorstCaseNoiseNet",
    "PredictorRegistry",
    "ScenarioJob",
    "ScreeningService",
    "screen_scenarios",
    "CorpusDesignSpec",
    "CorpusSpec",
    "generate_corpus",
    "load_corpus",
    "load_design_dataset",
    "paper_corpus_spec",
    "BaselineStore",
    "CrossDesignEvaluator",
    "EvalConfig",
    "MultiDesignTrainer",
    "ScenarioSweep",
    "__version__",
]
