"""Scenario sweeps over the cross-design campaign's trained models.

Where :class:`~repro.eval.protocol.CrossDesignEvaluator` measures accuracy on
the held-out designs' *random* test vectors, :class:`ScenarioSweep` stresses
the same trained models with the named workload scenarios of
:mod:`repro.workloads.scenarios` — DVFS ramps, power viruses, clock-gating
storms — across trace-length and seed variants.  Every job simulates the
scenario's ground truth, predicts it through the campaign's served
checkpoint, and reports the noise-map error plus hotspot precision/recall,
so the sweep answers the question the random vectors cannot: does the model
hold up on *structured* workloads it was never trained for?

Jobs fan out across a process pool exactly like the datagen engine fans out
shards (checkpoints cross the process boundary, each worker builds its
designs and transient factorisations once), and the sweep manifest
(``sweep.json``) follows the same resumable-artefact conventions: config
hash, atomic row-by-row saves, complete rows skipped on re-run.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.metrics import hotspot_precision_recall
from repro.datagen.shards import atomic_write_text
from repro.eval.config import EvalConfig
from repro.io.results import ExperimentRecord, format_table
from repro.pdn.designs import Design, design_from_name
from repro.serving.registry import PredictorRegistry
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.transient import TransientOptions
from repro import obs
from repro.utils import get_logger
from repro.workloads.scenarios import build_scenario_trace
from repro.workloads.specs import ScenarioLike, normalize_scenario

__all__ = ["SweepJob", "ScenarioSweep"]

_LOG = get_logger("eval.sweep")

#: Sweep manifest file name inside a campaign workdir.
SWEEP_NAME = "sweep.json"

#: Sweep manifest schema version.
SWEEP_VERSION = 1


@dataclass(frozen=True)
class SweepJob:
    """One (held-out design, scenario, variant) evaluation task.

    Attributes
    ----------
    heldout:
        Held-out design label (must have a checkpoint in the campaign
        registry).
    scenario:
        A family name from :func:`repro.workloads.scenarios.scenario_names`
        or a :class:`~repro.workloads.specs.ScenarioSpec` parameter variant.
    num_steps:
        Trace length of this variant.
    seed:
        Seed for the scenario's random choices.
    """

    heldout: str
    scenario: ScenarioLike
    num_steps: int
    seed: int

    @property
    def scenario_label(self) -> str:
        """Short scenario identifier (family name, or family + spec hash)."""
        return normalize_scenario(self.scenario).label

    @property
    def key(self) -> str:
        """Stable manifest key of this job (name-only jobs keep legacy keys)."""
        return f"{self.heldout}:{self.scenario_label}:{self.num_steps}:s{self.seed}"


# Per-worker state, initialised once per process by _worker_init.
_WORKER_REGISTRY: Optional[PredictorRegistry] = None
_WORKER_REFERENCES: dict[str, str] = {}
_WORKER_DT: float = 1e-11
_WORKER_DESIGNS: dict[str, Design] = {}
_WORKER_ANALYSES: dict[str, DynamicNoiseAnalysis] = {}


def _worker_init(registry_root: str, references: dict[str, str], dt: float) -> None:
    """Process-pool initializer: registry + design references, fresh caches."""
    global _WORKER_REGISTRY, _WORKER_DT
    _WORKER_REGISTRY = PredictorRegistry(registry_root)
    _WORKER_REFERENCES.clear()
    _WORKER_REFERENCES.update(references)
    _WORKER_DT = dt
    _WORKER_DESIGNS.clear()
    _WORKER_ANALYSES.clear()


def _worker_design(label: str) -> Design:
    """Build (or fetch) this worker's instance of a held-out design."""
    design = _WORKER_DESIGNS.get(label)
    if design is None:
        design = design_from_name(_WORKER_REFERENCES[label])
        _WORKER_DESIGNS[label] = design
    return design


def _worker_analysis(label: str) -> DynamicNoiseAnalysis:
    """Build (or fetch) the cached ground-truth analysis for one design."""
    analysis = _WORKER_ANALYSES.get(label)
    if analysis is None:
        options = TransientOptions(store_waveform=False, solver_method="cholesky")
        analysis = DynamicNoiseAnalysis(_worker_design(label), _WORKER_DT, options)
        _WORKER_ANALYSES[label] = analysis
    return analysis


def _run_sweep_job(job: SweepJob) -> dict:
    """Run one sweep job inside a worker; returns plain row fields."""
    assert _WORKER_REGISTRY is not None
    design = _worker_design(job.heldout)
    predictor = _WORKER_REGISTRY.get(job.heldout)
    trace = build_scenario_trace(
        job.scenario, design, num_steps=job.num_steps, dt=_WORKER_DT, seed=job.seed
    )
    truth = _worker_analysis(job.heldout).run(trace)
    with obs.get_tracer().span(
        "eval.sweep.job", heldout=job.heldout, scenario=job.scenario_label
    ) as predict_span:
        prediction = predictor.predict_trace(trace, design)
    obs.metrics().histogram("eval.sweep.predict_seconds").observe(predict_span.duration_s)
    obs.flush_shard()
    threshold = design.spec.hotspot_threshold
    precision, recall = hotspot_precision_recall(
        prediction.noise_map, truth.tile_noise, threshold
    )
    return {
        "heldout": job.heldout,
        "scenario": job.scenario_label,
        "num_steps": job.num_steps,
        "seed": job.seed,
        "true_worst_noise_v": float(np.max(truth.tile_noise)),
        "predicted_worst_noise_v": prediction.worst_noise,
        "worst_noise_error_mv": abs(prediction.worst_noise - float(np.max(truth.tile_noise)))
        * 1e3,
        "map_mae_mv": float(np.mean(np.abs(prediction.noise_map - truth.tile_noise))) * 1e3,
        "hotspot_precision": precision,
        "hotspot_recall": recall,
        "sim_runtime_s": truth.runtime_seconds,
        "predict_runtime_s": predict_span.duration_s,
        "speedup": truth.runtime_seconds / predict_span.duration_s
        if predict_span.duration_s > 0
        else float("inf"),
        "worker_pid": os.getpid(),
    }


class ScenarioSweep:
    """Fans scenario-variant evaluations across a process pool, resumably.

    Parameters
    ----------
    config:
        The campaign configuration (supplies the scenario grid, the design
        references and the held-out labels).
    workdir:
        The campaign workdir of the :class:`CrossDesignEvaluator` that
        trained the checkpoints; the sweep reads ``<workdir>/checkpoints``
        and writes ``<workdir>/sweep.json``.
    """

    def __init__(self, config: EvalConfig, workdir: Union[str, Path]):
        self.config = config
        self.workdir = Path(workdir)
        self.registry_root = self.workdir / "checkpoints"

    @property
    def manifest_path(self) -> Path:
        """Location of the sweep's resumable manifest."""
        return self.workdir / SWEEP_NAME

    def jobs(self) -> list[SweepJob]:
        """The full job grid: held-out designs x scenarios x variants."""
        return [
            SweepJob(heldout=heldout, scenario=scenario, num_steps=steps, seed=seed)
            for heldout in self.config.heldout
            for scenario in self.config.scenarios
            for steps in self.config.scenario_steps
            for seed in self.config.scenario_seeds
        ]

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #

    def load_rows(self) -> dict[str, dict]:
        """Completed rows from the manifest (empty when none exists).

        Raises
        ------
        ValueError
            On a schema-version or config-hash mismatch — the manifest
            belongs to a different campaign.
        """
        if not self.manifest_path.exists():
            return {}
        payload = json.loads(self.manifest_path.read_text())
        if payload.get("version") != SWEEP_VERSION:
            raise ValueError(
                f"unsupported sweep manifest version {payload.get('version')!r} "
                f"in {self.manifest_path}"
            )
        expected = self.config.config_hash()
        if payload.get("config_hash") != expected:
            raise ValueError(
                f"sweep manifest at {self.manifest_path} belongs to a different "
                f"campaign (manifest hash {payload.get('config_hash', '')[:12]}…, "
                f"config hash {expected[:12]}…); use a fresh workdir"
            )
        return dict(payload.get("rows", {}))

    def _save_rows(self, rows: dict[str, dict]) -> None:
        """Persist the manifest atomically."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SWEEP_VERSION,
            "config_hash": self.config.config_hash(),
            "rows": rows,
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2, sort_keys=True))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self, num_workers: Optional[int] = None, resume: bool = True
    ) -> list[ExperimentRecord]:
        """Run (or finish) the sweep and return every row as a record.

        Pending jobs fan out across worker processes (``0`` runs inline;
        platforms that refuse to spawn degrade to inline execution); the
        manifest is re-saved after every finished job, so an interrupted
        sweep resumes from the last completed row.
        """
        jobs = self.jobs()
        rows = self.load_rows() if resume else {}
        pending = [job for job in jobs if job.key not in rows]
        if pending:
            references = {
                heldout: self.config.design_reference(heldout)
                for heldout in self.config.heldout
            }
            for job, row in zip(
                pending, self._run_jobs(pending, references, num_workers)
            ):
                rows[job.key] = row
                self._save_rows(rows)
        else:
            _LOG.info("sweep already complete (%d rows)", len(rows))
        self._save_rows(rows)
        records = [
            ExperimentRecord(
                experiment="scenario_sweep",
                label=job.key,
                values=rows[job.key],
            )
            for job in jobs
        ]
        _LOG.info(
            "scenario sweep: %d rows (%d new)\n%s",
            len(records),
            len(pending),
            format_table(records, title="scenario sweep"),
        )
        return records

    def _run_jobs(
        self,
        pending: list[SweepJob],
        references: dict[str, str],
        num_workers: Optional[int],
    ):
        """Yield one row per pending job, pooled when possible, else inline."""
        completed = 0
        if num_workers is None:
            num_workers = min(len(pending), os.cpu_count() or 1)
        if num_workers and num_workers > 0:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=num_workers,
                    initializer=_worker_init,
                    initargs=(str(self.registry_root), references, self.config.dt),
                )
            except (OSError, PermissionError, NotImplementedError) as error:
                _LOG.warning("cannot create process pool (%s); sweeping inline", error)
            else:
                with pool:
                    try:
                        for row in pool.map(_run_sweep_job, pending):
                            completed += 1
                            yield row
                        return
                    except (BrokenProcessPool, pickle.PicklingError) as error:
                        # Worker startup/transport failure, not a job failure
                        # — job exceptions propagate unchanged.  Rows already
                        # yielded stay recorded; the rest run inline.
                        _LOG.warning(
                            "process pool broke after %d/%d jobs (%s); "
                            "sweeping the rest inline",
                            completed,
                            len(pending),
                            error,
                        )
        _worker_init(str(self.registry_root), references, self.config.dt)
        for job in pending[completed:]:
            yield _run_sweep_job(job)
