"""Scenario sweeps over the cross-design campaign's trained models.

Where :class:`~repro.eval.protocol.CrossDesignEvaluator` measures accuracy on
the held-out designs' *random* test vectors, :class:`ScenarioSweep` stresses
the same trained models with the named workload scenarios of
:mod:`repro.workloads.scenarios` — DVFS ramps, power viruses, clock-gating
storms — across trace-length and seed variants.  Every job simulates the
scenario's ground truth, predicts it through the campaign's served
checkpoint, and reports the noise-map error plus hotspot precision/recall,
so the sweep answers the question the random vectors cannot: does the model
hold up on *structured* workloads it was never trained for?

Jobs fan out across a process pool exactly like the datagen engine fans out
shards (checkpoints cross the process boundary, each worker builds its
designs and transient factorisations once), and the sweep manifest
(``sweep.json``) follows the same resumable-artefact conventions: config
hash, atomic row-by-row saves, complete rows skipped on re-run.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.core.metrics import hotspot_precision_recall
from repro.eval.config import EvalConfig
from repro.io.atomic import atomic_write_text
from repro.io.results import ExperimentRecord, format_table
from repro.pdn.designs import Design, design_from_name
from repro.resilience.retry import RetryPolicy
from repro.serving.registry import PredictorRegistry
from repro.sim.dynamic_noise import DynamicNoiseAnalysis
from repro.sim.transient import TransientOptions
from repro import faults, obs
from repro.utils import get_logger
from repro.workloads.scenarios import build_scenario_trace
from repro.workloads.specs import ScenarioLike, normalize_scenario

__all__ = ["SweepJob", "ScenarioSweep"]

_LOG = get_logger("eval.sweep")

#: Sweep manifest file name inside a campaign workdir.
SWEEP_NAME = "sweep.json"

#: Sweep manifest schema version.
SWEEP_VERSION = 1


@dataclass(frozen=True)
class SweepJob:
    """One (held-out design, scenario, variant) evaluation task.

    Attributes
    ----------
    heldout:
        Held-out design label (must have a checkpoint in the campaign
        registry).
    scenario:
        A family name from :func:`repro.workloads.scenarios.scenario_names`
        or a :class:`~repro.workloads.specs.ScenarioSpec` parameter variant.
    num_steps:
        Trace length of this variant.
    seed:
        Seed for the scenario's random choices.
    """

    heldout: str
    scenario: ScenarioLike
    num_steps: int
    seed: int

    @property
    def scenario_label(self) -> str:
        """Short scenario identifier (family name, or family + spec hash)."""
        return normalize_scenario(self.scenario).label

    @property
    def key(self) -> str:
        """Stable manifest key of this job (name-only jobs keep legacy keys)."""
        return f"{self.heldout}:{self.scenario_label}:{self.num_steps}:s{self.seed}"


# Per-worker state, initialised once per process by _worker_init.
_WORKER_REGISTRY: Optional[PredictorRegistry] = None
_WORKER_REFERENCES: dict[str, str] = {}
_WORKER_DT: float = 1e-11
_WORKER_DESIGNS: dict[str, Design] = {}
_WORKER_ANALYSES: dict[str, DynamicNoiseAnalysis] = {}


def _worker_init(
    registry_root: str,
    references: dict[str, str],
    dt: float,
    faults_factory: Optional[Callable[[], "faults.FaultInjector"]] = None,
) -> None:
    """Process-pool initializer: registry + design references, fresh caches.

    ``faults_factory`` mirrors the datagen engine's: when given, its product
    is installed as the process-global fault injector so pooled sweep rows
    script the same failures an inline run would.
    """
    global _WORKER_REGISTRY, _WORKER_DT
    _WORKER_REGISTRY = PredictorRegistry(registry_root)
    _WORKER_REFERENCES.clear()
    _WORKER_REFERENCES.update(references)
    _WORKER_DT = dt
    _WORKER_DESIGNS.clear()
    _WORKER_ANALYSES.clear()
    if faults_factory is not None:
        faults.install(faults_factory())


def _worker_design(label: str) -> Design:
    """Build (or fetch) this worker's instance of a held-out design."""
    design = _WORKER_DESIGNS.get(label)
    if design is None:
        design = design_from_name(_WORKER_REFERENCES[label])
        _WORKER_DESIGNS[label] = design
    return design


def _worker_analysis(label: str) -> DynamicNoiseAnalysis:
    """Build (or fetch) the cached ground-truth analysis for one design."""
    analysis = _WORKER_ANALYSES.get(label)
    if analysis is None:
        options = TransientOptions(store_waveform=False, solver_method="cholesky")
        analysis = DynamicNoiseAnalysis(_worker_design(label), _WORKER_DT, options)
        _WORKER_ANALYSES[label] = analysis
    return analysis


def _run_sweep_job(job: SweepJob) -> dict:
    """Run one sweep job inside a worker; returns plain row fields."""
    assert _WORKER_REGISTRY is not None
    faults.active().before_row(job.key)
    design = _worker_design(job.heldout)
    predictor = _WORKER_REGISTRY.get(job.heldout)
    trace = build_scenario_trace(
        job.scenario, design, num_steps=job.num_steps, dt=_WORKER_DT, seed=job.seed
    )
    truth = _worker_analysis(job.heldout).run(trace)
    with obs.get_tracer().span(
        "eval.sweep.job", heldout=job.heldout, scenario=job.scenario_label
    ) as predict_span:
        prediction = predictor.predict_trace(trace, design)
    obs.metrics().histogram("eval.sweep.predict_seconds").observe(predict_span.duration_s)
    obs.flush_shard()
    threshold = design.spec.hotspot_threshold
    precision, recall = hotspot_precision_recall(
        prediction.noise_map, truth.tile_noise, threshold
    )
    return {
        "heldout": job.heldout,
        "scenario": job.scenario_label,
        "num_steps": job.num_steps,
        "seed": job.seed,
        "true_worst_noise_v": float(np.max(truth.tile_noise)),
        "predicted_worst_noise_v": prediction.worst_noise,
        "worst_noise_error_mv": abs(prediction.worst_noise - float(np.max(truth.tile_noise)))
        * 1e3,
        "map_mae_mv": float(np.mean(np.abs(prediction.noise_map - truth.tile_noise))) * 1e3,
        "hotspot_precision": precision,
        "hotspot_recall": recall,
        "sim_runtime_s": truth.runtime_seconds,
        "predict_runtime_s": predict_span.duration_s,
        "speedup": truth.runtime_seconds / predict_span.duration_s
        if predict_span.duration_s > 0
        else float("inf"),
        "worker_pid": os.getpid(),
    }


def _run_sweep_job_safe(job: SweepJob) -> dict:
    """Run one job, converting errors into picklable failure outcomes.

    Only :class:`Exception` is converted; an injected
    :class:`~repro.faults.WorkerKilled` still unwinds the worker, exactly
    like a real kill.
    """
    try:
        return _run_sweep_job(job)
    except Exception as error:
        return {"failed": True, "key": job.key, "error": repr(error)}


class ScenarioSweep:
    """Fans scenario-variant evaluations across a process pool, resumably.

    Parameters
    ----------
    config:
        The campaign configuration (supplies the scenario grid, the design
        references and the held-out labels).
    workdir:
        The campaign workdir of the :class:`CrossDesignEvaluator` that
        trained the checkpoints; the sweep reads ``<workdir>/checkpoints``
        and writes ``<workdir>/sweep.json``.
    retry:
        Per-row retry budget (see
        :class:`~repro.resilience.retry.RetryPolicy`).  Rows that exhaust
        it are *quarantined* into the manifest — recorded with their final
        error and re-attempted on the next resumed run — instead of killing
        the sweep.
    """

    def __init__(
        self,
        config: EvalConfig,
        workdir: Union[str, Path],
        retry: RetryPolicy = RetryPolicy(),
    ):
        self.config = config
        self.workdir = Path(workdir)
        self.registry_root = self.workdir / "checkpoints"
        self.retry = retry

    @property
    def manifest_path(self) -> Path:
        """Location of the sweep's resumable manifest."""
        return self.workdir / SWEEP_NAME

    def jobs(self) -> list[SweepJob]:
        """The full job grid: held-out designs x scenarios x variants."""
        return [
            SweepJob(heldout=heldout, scenario=scenario, num_steps=steps, seed=seed)
            for heldout in self.config.heldout
            for scenario in self.config.scenarios
            for steps in self.config.scenario_steps
            for seed in self.config.scenario_seeds
        ]

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #

    def load_rows(self) -> dict[str, dict]:
        """Completed rows from the manifest (empty when none exists).

        Raises
        ------
        ValueError
            On a schema-version or config-hash mismatch — the manifest
            belongs to a different campaign.
        """
        if not self.manifest_path.exists():
            return {}
        payload = json.loads(self.manifest_path.read_text())
        if payload.get("version") != SWEEP_VERSION:
            raise ValueError(
                f"unsupported sweep manifest version {payload.get('version')!r} "
                f"in {self.manifest_path}"
            )
        expected = self.config.config_hash()
        if payload.get("config_hash") != expected:
            raise ValueError(
                f"sweep manifest at {self.manifest_path} belongs to a different "
                f"campaign (manifest hash {payload.get('config_hash', '')[:12]}…, "
                f"config hash {expected[:12]}…); use a fresh workdir"
            )
        return dict(payload.get("rows", {}))

    def load_quarantined(self) -> dict[str, dict]:
        """Quarantined rows from the manifest: key -> {error, attempts}.

        Empty when the manifest is missing or predates the resilience layer.
        """
        if not self.manifest_path.exists():
            return {}
        payload = json.loads(self.manifest_path.read_text())
        return dict(payload.get("quarantined", {}))

    def _save_rows(
        self, rows: dict[str, dict], quarantined: Optional[dict[str, dict]] = None
    ) -> None:
        """Persist the manifest atomically (rows + quarantine + health)."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        quarantined = quarantined or {}
        payload = {
            "version": SWEEP_VERSION,
            "config_hash": self.config.config_hash(),
            "rows": rows,
            "quarantined": quarantined,
            "health": {
                "rows_completed": len(rows),
                "rows_quarantined": len(quarantined),
            },
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2, sort_keys=True))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        num_workers: Optional[int] = None,
        resume: bool = True,
        faults_factory: Optional[Callable[[], "faults.FaultInjector"]] = None,
    ) -> list[ExperimentRecord]:
        """Run (or finish) the sweep and return every completed row as a record.

        Pending jobs fan out across worker processes (``0`` runs inline;
        platforms that refuse to spawn degrade to inline execution); the
        manifest is re-saved after every finished job, so an interrupted
        sweep resumes from the last completed row.  Failed rows are retried
        under the sweep's :class:`~repro.resilience.retry.RetryPolicy`; rows
        that exhaust it are quarantined in the manifest (and re-attempted by
        the next resumed run) rather than aborting the sweep.
        """
        jobs = self.jobs()
        rows = self.load_rows() if resume else {}
        # Previously quarantined rows get a fresh chance each resumed run:
        # the quarantine is rebuilt from this run's failures only.
        quarantined: dict[str, dict] = {}
        pending = [job for job in jobs if job.key not in rows]
        new_target = len(pending)
        metrics = obs.metrics()
        if pending:
            references = {
                heldout: self.config.design_reference(heldout)
                for heldout in self.config.heldout
            }
            attempts: dict[str, int] = {}
            wave = 0
            while pending:
                retry_next: list[SweepJob] = []
                for job, outcome in zip(
                    pending,
                    self._run_jobs(pending, references, num_workers, faults_factory),
                ):
                    if outcome.get("failed"):
                        attempts[job.key] = attempts.get(job.key, 0) + 1
                        metrics.counter("faults.errors").inc()
                        if attempts[job.key] >= self.retry.max_attempts:
                            metrics.counter("faults.exhausted").inc()
                            metrics.counter("faults.quarantined_rows").inc()
                            quarantined[job.key] = {
                                "error": outcome["error"],
                                "attempts": attempts[job.key],
                            }
                            _LOG.warning(
                                "sweep row %s quarantined after %d attempts: %s",
                                job.key,
                                attempts[job.key],
                                outcome["error"],
                            )
                            self._save_rows(rows, quarantined)
                        else:
                            metrics.counter("faults.retries").inc()
                            retry_next.append(job)
                        continue
                    rows[job.key] = outcome
                    self._save_rows(rows, quarantined)
                pending = retry_next
                if pending:
                    wave += 1
                    delay = self.retry.delay(wave)
                    if delay > 0:
                        time.sleep(delay)
        else:
            _LOG.info("sweep already complete (%d rows)", len(rows))
        self._save_rows(rows, quarantined)
        records = [
            ExperimentRecord(
                experiment="scenario_sweep",
                label=job.key,
                values=rows[job.key],
            )
            for job in jobs
            if job.key in rows
        ]
        _LOG.info(
            "scenario sweep: %d rows (%d new, %d quarantined)\n%s",
            len(records),
            new_target - len(quarantined),
            len(quarantined),
            format_table(records, title="scenario sweep"),
        )
        return records

    def _run_jobs(
        self,
        pending: list[SweepJob],
        references: dict[str, str],
        num_workers: Optional[int],
        faults_factory: Optional[Callable[[], "faults.FaultInjector"]] = None,
    ):
        """Yield one outcome per pending job, pooled when possible, else inline.

        Job errors never propagate: workers run :func:`_run_sweep_job_safe`,
        so a failed row becomes a ``failed`` outcome the caller's retry loop
        handles.
        """
        completed = 0
        if num_workers is None:
            num_workers = min(len(pending), os.cpu_count() or 1)
        if num_workers and num_workers > 0:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=num_workers,
                    initializer=_worker_init,
                    initargs=(
                        str(self.registry_root),
                        references,
                        self.config.dt,
                        faults_factory,
                    ),
                )
            except (OSError, PermissionError, NotImplementedError) as error:
                _LOG.warning("cannot create process pool (%s); sweeping inline", error)
            else:
                with pool:
                    try:
                        for row in pool.map(_run_sweep_job_safe, pending):
                            completed += 1
                            yield row
                        return
                    except (BrokenProcessPool, pickle.PicklingError) as error:
                        # Worker startup/transport failure, not a job failure
                        # — job errors are already failure outcomes.  Rows
                        # already yielded stay recorded; the rest run inline.
                        _LOG.warning(
                            "process pool broke after %d/%d jobs (%s); "
                            "sweeping the rest inline",
                            completed,
                            len(pending),
                            error,
                        )
        _worker_init(str(self.registry_root), references, self.config.dt, faults_factory)
        for job in pending[completed:]:
            yield _run_sweep_job_safe(job)
