"""Golden accuracy baselines and the drift gate.

A *baseline* locks in the gated accuracy metrics of one evaluation campaign
(per held-out design: MAE columns, hotspot precision/recall, AUC — never
wall-clock quantities) together with per-metric tolerances.  CI re-runs the
campaign and fails when any metric drifts beyond its tolerance, which turns
the reproduction itself into a regression test: a perf refactor that silently
degrades accuracy cannot merge.

Baseline files live under ``eval/baselines/<name>.json`` and carry two
hashes: the campaign ``config_hash`` (a baseline only gates the campaign it
was measured on) and a ``content_hash`` over the canonical metrics payload
(so a hand-edited or corrupted baseline is rejected instead of silently
gating against garbage).  Refreshing a baseline is an explicit act:
``python scripts/run_eval.py --budget <name> --update-baseline``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.io.atomic import atomic_write_text
from repro.utils import get_logger

__all__ = [
    "DEFAULT_TOLERANCES",
    "Baseline",
    "BaselineStore",
    "DriftReport",
    "MetricDrift",
    "metrics_content_hash",
]

_LOG = get_logger("eval.baselines")

#: Baseline file schema version.
BASELINE_VERSION = 1

#: Default per-metric tolerances: ``value`` passes when
#: ``|value - baseline| <= atol + rtol * |baseline|``.  Error columns get a
#: relative band plus a small absolute floor (in their own unit — mV for AE
#: columns, percentage points for RE); classification metrics are fractions
#: in [0, 1] and use absolute bands.
DEFAULT_TOLERANCES: dict[str, dict[str, float]] = {
    "mean_ae_mv": {"rtol": 0.10, "atol": 0.05},
    "p99_ae_mv": {"rtol": 0.10, "atol": 0.10},
    "max_ae_mv": {"rtol": 0.15, "atol": 0.20},
    "mean_re_percent": {"rtol": 0.10, "atol": 0.25},
    "hotspot_precision": {"rtol": 0.0, "atol": 0.05},
    "hotspot_recall": {"rtol": 0.0, "atol": 0.05},
    "hotspot_missing_rate": {"rtol": 0.0, "atol": 0.05},
    "auc": {"rtol": 0.0, "atol": 0.02},
}


def metrics_content_hash(metrics: Mapping[str, Mapping[str, float]]) -> str:
    """Canonical SHA-256 of a per-design metrics mapping.

    The payload is serialised with sorted keys and full float repr, so the
    hash is stable across processes and platforms that produce the same
    numbers.
    """
    canonical = json.dumps(
        {label: dict(values) for label, values in metrics.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class MetricDrift:
    """One metric that moved beyond its tolerance."""

    heldout: str
    metric: str
    baseline: float
    observed: float
    allowed: float

    def __str__(self) -> str:
        return (
            f"{self.heldout}/{self.metric}: baseline {self.baseline:.6g}, "
            f"observed {self.observed:.6g} (|delta| {abs(self.observed - self.baseline):.6g} "
            f"> allowed {self.allowed:.6g})"
        )


@dataclass
class DriftReport:
    """Outcome of comparing a fresh campaign against a golden baseline."""

    baseline_name: str
    drifts: list[MetricDrift] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    compared: int = 0

    @property
    def passed(self) -> bool:
        """Whether every baselined metric stayed within tolerance."""
        return not self.drifts and not self.missing

    def summary(self) -> str:
        """Human-readable verdict for logs and CI output."""
        if self.passed:
            return (
                f"baseline {self.baseline_name!r}: {self.compared} metrics "
                "within tolerance"
            )
        lines = [
            f"baseline {self.baseline_name!r}: {len(self.drifts)} metric(s) drifted, "
            f"{len(self.missing)} design(s) missing"
        ]
        lines.extend(f"  DRIFT {drift}" for drift in self.drifts)
        lines.extend(f"  MISSING heldout design {label}" for label in self.missing)
        return "\n".join(lines)


@dataclass
class Baseline:
    """One golden baseline, as stored on disk.

    ``dtype_tolerances`` optionally maps a serving-dtype name (e.g.
    ``"float32"``) to per-metric bands that *override* ``tolerances`` when
    comparing a campaign served at that precision — low-precision inference
    is gated against the same golden float64 numbers, just with bands wide
    enough to absorb the expected rounding drift (and nothing more).
    """

    name: str
    config_hash: str
    metrics: dict[str, dict[str, float]]
    tolerances: dict[str, dict[str, float]]
    git_rev: str = "unknown"
    dtype_tolerances: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (including the content hash)."""
        payload = {
            "version": BASELINE_VERSION,
            "name": self.name,
            "config_hash": self.config_hash,
            "git_rev": self.git_rev,
            "content_hash": metrics_content_hash(self.metrics),
            "metrics": self.metrics,
            "tolerances": self.tolerances,
        }
        if self.dtype_tolerances:
            payload["dtype_tolerances"] = self.dtype_tolerances
        return payload


class BaselineStore:
    """Loads, saves and compares golden baselines in one directory.

    Parameters
    ----------
    directory:
        Baseline directory (conventionally ``eval/baselines`` at the repo
        root; created on demand when saving).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path(self, name: str) -> Path:
        """On-disk location of one baseline."""
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid baseline name {name!r}")
        return self.directory / f"{name}.json"

    def exists(self, name: str) -> bool:
        """Whether a baseline with this name is stored."""
        return self.path(name).exists()

    def save(
        self,
        name: str,
        metrics: Mapping[str, Mapping[str, float]],
        config_hash: str,
        tolerances: Optional[Mapping[str, Mapping[str, float]]] = None,
        git_rev: str = "unknown",
        dtype_tolerances: Optional[Mapping[str, Mapping[str, Mapping[str, float]]]] = None,
    ) -> Path:
        """Write (or refresh) a baseline atomically and return its path.

        Parameters
        ----------
        name:
            Baseline name (conventionally the budget name).
        metrics:
            Per-held-out-design gated metrics
            (:meth:`~repro.eval.protocol.CrossDesignReport.gated_metrics`).
        config_hash:
            The campaign's :meth:`~repro.eval.config.EvalConfig.config_hash`.
        tolerances:
            Per-metric ``{"rtol": ..., "atol": ...}`` bands; defaults to
            :data:`DEFAULT_TOLERANCES`.
        git_rev:
            Provenance stamp of the generating code.
        dtype_tolerances:
            Optional per-serving-dtype tolerance overrides, keyed by dtype
            name then metric (see :class:`Baseline`).  Refreshing a baseline
            without passing these preserves the stored overrides, so a
            float64 ``--update-baseline`` never silently drops the float32
            gate bands.
        """
        if dtype_tolerances is None and self.exists(name):
            dtype_tolerances = self.load(name).dtype_tolerances
        baseline = Baseline(
            name=name,
            config_hash=config_hash,
            metrics={label: dict(values) for label, values in metrics.items()},
            tolerances={
                metric: dict(band)
                for metric, band in (tolerances or DEFAULT_TOLERANCES).items()
            },
            git_rev=git_rev,
            dtype_tolerances={
                dtype: {metric: dict(band) for metric, band in bands.items()}
                for dtype, bands in (dtype_tolerances or {}).items()
            },
        )
        path = self.path(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(baseline.to_dict(), indent=2, sort_keys=True))
        _LOG.info("saved baseline %s (%d designs)", path, len(baseline.metrics))
        return path

    def load(self, name: str) -> Baseline:
        """Load and integrity-check one baseline.

        Raises
        ------
        FileNotFoundError
            When no baseline with this name exists.
        ValueError
            On an unknown schema version or a content-hash mismatch (the
            file was edited or corrupted after it was written).
        """
        path = self.path(name)
        if not path.exists():
            raise FileNotFoundError(
                f"no baseline {name!r} under {self.directory}; create one with "
                f"run_eval.py --update-baseline"
            )
        payload = json.loads(path.read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        metrics = {
            label: {metric: float(value) for metric, value in values.items()}
            for label, values in payload["metrics"].items()
        }
        stored_hash = payload.get("content_hash", "")
        actual_hash = metrics_content_hash(metrics)
        if stored_hash != actual_hash:
            raise ValueError(
                f"baseline {path} failed its integrity check "
                f"(stored hash {stored_hash[:12]}…, metrics hash {actual_hash[:12]}…); "
                "regenerate it with run_eval.py --update-baseline"
            )
        return Baseline(
            name=payload["name"],
            config_hash=payload["config_hash"],
            metrics=metrics,
            tolerances=payload.get("tolerances", {}),
            git_rev=payload.get("git_rev", "unknown"),
            dtype_tolerances=payload.get("dtype_tolerances", {}),
        )

    def compare(
        self,
        name: str,
        metrics: Mapping[str, Mapping[str, float]],
        config_hash: str,
        dtype: str = "float64",
    ) -> DriftReport:
        """Compare a fresh campaign's metrics against a stored baseline.

        Every baselined ``(design, metric)`` pair must be present in the new
        metrics and satisfy ``|observed - baseline| <= atol + rtol *
        |baseline|`` (metrics without a stored tolerance use
        :data:`DEFAULT_TOLERANCES`; unknown metrics fall back to exact
        equality with a tiny float slack).  Extra metrics in the fresh run
        never fail the gate — growth is not drift.

        ``dtype`` names the serving precision the campaign ran at; when the
        baseline stores ``dtype_tolerances`` for it, those bands override the
        default ones per metric (the golden *numbers* stay the float64 ones).

        Raises
        ------
        ValueError
            When ``config_hash`` differs from the baseline's — the numbers
            are not comparable; refresh the baseline deliberately.
        """
        baseline = self.load(name)
        if baseline.config_hash != config_hash:
            raise ValueError(
                f"baseline {name!r} was measured on a different campaign "
                f"configuration (baseline hash {baseline.config_hash[:12]}…, "
                f"run hash {config_hash[:12]}…); refresh it with "
                "run_eval.py --update-baseline"
            )
        dtype_bands = baseline.dtype_tolerances.get(dtype, {})
        report = DriftReport(baseline_name=name)
        for label, expected in baseline.metrics.items():
            observed_row = metrics.get(label)
            if observed_row is None:
                report.missing.append(label)
                continue
            for metric, expected_value in expected.items():
                band = dtype_bands.get(metric) or baseline.tolerances.get(
                    metric, DEFAULT_TOLERANCES.get(metric, {"rtol": 0.0, "atol": 1e-12})
                )
                allowed = float(band.get("atol", 0.0)) + float(
                    band.get("rtol", 0.0)
                ) * abs(expected_value)
                observed_value = float(observed_row.get(metric, float("nan")))
                report.compared += 1
                delta = abs(observed_value - expected_value)
                if not delta <= allowed:  # NaN-safe: NaN comparisons are False
                    report.drifts.append(
                        MetricDrift(
                            heldout=label,
                            metric=metric,
                            baseline=float(expected_value),
                            observed=observed_value,
                            allowed=allowed,
                        )
                    )
        return report
