"""Leave-one-design-out cross-design evaluation.

:class:`CrossDesignEvaluator` measures the paper's headline claim end to end:
for every held-out design, a model is trained on the *other* designs' corpora
(:mod:`repro.datagen` shards + the pooled
:class:`~repro.eval.training.MultiDesignTrainer`) and then evaluated on the
held-out design's vectors through the real serving stack — a
:class:`~repro.serving.PredictorRegistry` checkpoint screened by a
:class:`~repro.serving.ScreeningService` — so the reported latencies and
batch statistics are those of the production path, not a bare forward loop.

The result is a :class:`CrossDesignReport`: one paper-style row per held-out
design (MAE / relative-error / max-error columns, hotspot precision/recall
and missing rate, ROC AUC, serving latency/throughput, speedup over the
simulator).  Reports are **resumable artefacts** mirroring the datagen
manifest conventions: ``report.json`` in the campaign workdir records the
config hash and every finished row, is written atomically after each held-out
design, and a re-run skips rows that are already complete.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import faults, obs
from repro.core.inference import NoisePredictor
from repro.core.metrics import AccuracyReport, evaluate_predictions, hotspot_precision_recall
from repro.datagen.engine import GenerationReport, generate_corpus
from repro.datagen.shards import load_design_dataset
from repro.eval.config import EvalConfig
from repro.eval.training import MultiDesignTrainer
from repro.io.atomic import atomic_write_text
from repro.io.results import ExperimentRecord, format_table, latency_throughput_columns
from repro.nn import kernels
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.serving.registry import PredictorRegistry
from repro.serving.service import ScreeningService
from repro.utils import get_logger
from repro.workloads.dataset import NoiseDataset

__all__ = ["HeldoutEvaluation", "CrossDesignReport", "CrossDesignEvaluator"]

_LOG = get_logger("eval.protocol")

#: Report artefact file name inside a campaign workdir.
REPORT_NAME = "report.json"


def _combined_latency_histogram(metrics: MetricsRegistry) -> Optional[LatencyHistogram]:
    """All-paths serving latency histogram, or ``None`` when no samples exist.

    Merges the service's per-path ``serving.request_latency.*`` instruments
    (cache hit / coalesced / batched — identical bucket layouts by
    construction) into one histogram the runtime tables read percentiles
    from, replacing the raw-list re-sorting that used to live here.
    """
    combined = LatencyHistogram("serving.request_latency")
    for path in ("cache_hit", "coalesced", "batched"):
        instrument = metrics.get(f"serving.request_latency.{path}")
        if instrument is not None:
            combined.merge(instrument)
    return combined if combined.count else None

#: Report artefact schema version (bumped on incompatible changes).
REPORT_VERSION = 1


@dataclass
class HeldoutEvaluation:
    """One held-out design's evaluation row.

    Attributes
    ----------
    heldout:
        Label of the design the model never saw.
    trained_on:
        Labels the pooled model was trained on.
    num_train_samples:
        Pooled training-partition size.
    num_vectors:
        Held-out vectors evaluated (the design's whole corpus — every one
        of them is unseen).
    accuracy:
        Tile-level error statistics (:class:`AccuracyReport`).
    hotspot_precision / hotspot_recall:
        Hotspot classification quality at the design's threshold.
    latency:
        Serving latency/throughput columns
        (:func:`repro.io.latency_throughput_columns`).
    service:
        Screening-service counters (cache hits, batch sizes) of the run.
    training_epochs / best_validation_loss / training_seconds:
        Pooled-training summary.
    serving_seconds:
        Wall-clock span of screening every held-out vector.
    simulator_seconds:
        Ground-truth simulator time for the same vectors (from the corpus).
    """

    heldout: str
    trained_on: tuple[str, ...]
    num_train_samples: int
    num_vectors: int
    accuracy: AccuracyReport
    hotspot_precision: float
    hotspot_recall: float
    latency: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    training_epochs: int = 0
    best_validation_loss: float = float("nan")
    training_seconds: float = 0.0
    serving_seconds: float = 0.0
    simulator_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Simulator wall-clock divided by serving wall-clock."""
        if self.serving_seconds <= 0:
            return float("inf")
        return self.simulator_seconds / self.serving_seconds

    def gated_metrics(self) -> dict:
        """The accuracy metrics a golden baseline locks in.

        Deliberately excludes every wall-clock quantity — latencies and
        speedups vary with the machine, accuracy must not.
        """
        return {
            "mean_ae_mv": self.accuracy.mean_ae_mv,
            "p99_ae_mv": self.accuracy.p99_ae_mv,
            "max_ae_mv": self.accuracy.max_ae_mv,
            "mean_re_percent": self.accuracy.mean_re_percent,
            "hotspot_precision": self.hotspot_precision,
            "hotspot_recall": self.hotspot_recall,
            "hotspot_missing_rate": self.accuracy.hotspot_missing_rate,
            "auc": self.accuracy.auc,
        }

    def as_record(self) -> ExperimentRecord:
        """This row as an :class:`ExperimentRecord` for the io exporters."""
        values = {
            "trained_on": "+".join(self.trained_on),
            "train_samples": self.num_train_samples,
            "vectors": self.num_vectors,
            **{
                key: self.accuracy.as_dict()[key]
                for key in ("mean_AE_mV", "mean_RE_%", "max_AE_mV", "AUC")
            },
            "hotspot_precision": self.hotspot_precision,
            "hotspot_recall": self.hotspot_recall,
            **self.latency,
            "speedup": self.speedup,
            "epochs": self.training_epochs,
        }
        return ExperimentRecord(experiment="cross_design", label=self.heldout, values=values)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stored in the report artefact)."""
        payload = asdict(self)
        payload["trained_on"] = list(self.trained_on)
        payload["accuracy"] = asdict(self.accuracy)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "HeldoutEvaluation":
        """Rebuild a row from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["trained_on"] = tuple(payload["trained_on"])
        payload["accuracy"] = AccuracyReport(**payload["accuracy"])
        return cls(**payload)


@dataclass
class CrossDesignReport:
    """The resumable result artefact of one evaluation campaign.

    Attributes
    ----------
    config_hash:
        :meth:`EvalConfig.config_hash` of the campaign the rows belong to.
    rows:
        Finished held-out evaluations, keyed by held-out label.
    git_rev:
        Revision stamp of the generating code (provenance, best effort).
    quarantined:
        Held-out rows that exhausted their retry budget, keyed by label:
        ``{"error": repr, "attempts": n}``.  A resumed campaign re-attempts
        them (the entry is dropped on success).
    serving_dtype:
        Precision the campaign's screening ran at.  Stamped into the
        artefact so a resumed run at a different serving precision is
        rejected instead of silently mixing rows measured at different
        dtypes.
    label_solver:
        Transient strategy that produced the campaign's ground-truth labels
        (``"full"`` or ``"rom"``; see ``docs/solvers.md``).  Stamped so a
        resumed run whose config labels with a different solver is rejected
        instead of silently mixing rows against different ground truths.
    """

    config_hash: str
    rows: dict[str, HeldoutEvaluation] = field(default_factory=dict)
    git_rev: str = "unknown"
    quarantined: dict[str, dict] = field(default_factory=dict)
    serving_dtype: str = "float64"
    label_solver: str = "full"

    def records(self) -> list[ExperimentRecord]:
        """All rows as :class:`ExperimentRecord` objects, in insertion order."""
        return [row.as_record() for row in self.rows.values()]

    def table(self) -> str:
        """The paper-style text table of every finished row."""
        return format_table(self.records(), title="cross-design evaluation")

    def gated_metrics(self) -> dict:
        """Per-held-out-design gated metrics (what baselines compare)."""
        return {label: row.gated_metrics() for label, row in self.rows.items()}

    def health(self) -> dict:
        """Campaign health summary: completed vs. quarantined rows."""
        return {
            "rows_completed": len(self.rows),
            "rows_quarantined": len(self.quarantined),
            "quarantined": dict(self.quarantined),
        }

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole artefact."""
        return {
            "version": REPORT_VERSION,
            "config_hash": self.config_hash,
            "git_rev": self.git_rev,
            "serving_dtype": self.serving_dtype,
            "label_solver": self.label_solver,
            "rows": {label: row.to_dict() for label, row in self.rows.items()},
            "quarantined": dict(self.quarantined),
            "health": self.health(),
        }

    def save(self, path: Union[str, Path]) -> None:
        """Persist the artefact atomically as pretty-printed JSON."""
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CrossDesignReport":
        """Load an artefact written by :meth:`save`.

        Raises
        ------
        ValueError
            When the artefact schema version is unknown.
        """
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != REPORT_VERSION:
            raise ValueError(
                f"unsupported report version {payload.get('version')!r} in {path}"
            )
        report = cls(
            config_hash=payload["config_hash"],
            git_rev=payload.get("git_rev", "unknown"),
            # Artefacts written before the kernel-dispatch layer are float64.
            serving_dtype=payload.get("serving_dtype", "float64"),
            # Artefacts written before the solver seam are full-order.
            label_solver=payload.get("label_solver", "full"),
        )
        for label, row in payload.get("rows", {}).items():
            report.rows[label] = HeldoutEvaluation.from_dict(row)
        # Tolerant read: artefacts written before the resilience layer have
        # no quarantine section.
        report.quarantined = dict(payload.get("quarantined", {}))
        return report


class CrossDesignEvaluator:
    """Runs a leave-one-design-out campaign inside one workdir.

    The workdir layout mirrors a datagen corpus root::

        <workdir>/
          corpus/           # the shared training/eval corpus (datagen shards)
          checkpoints/      # one served predictor checkpoint per held-out design
          report.json       # resumable campaign artefact

    Parameters
    ----------
    config:
        The campaign configuration (designs, held-out labels, budgets).
    workdir:
        Campaign root directory (created on demand).  Delete it to restart
        a campaign from scratch; everything inside is derived state.
    retry:
        Per-row retry budget (see
        :class:`~repro.resilience.retry.RetryPolicy`).  A held-out row that
        exhausts it is quarantined into the report's health section — with
        its final error — instead of aborting the campaign; the next
        resumed run re-attempts it.
    serving_dtype:
        Precision the held-out screening runs at (``"float64"`` default, or
        ``"float32"`` for the low-precision inference path).  Training always
        runs float64; the trained model is cast only when it is wrapped into
        the served predictor, and the accuracy drift is gated via the
        baseline's per-dtype tolerance bands.
    """

    def __init__(
        self,
        config: EvalConfig,
        workdir: Union[str, Path],
        retry: RetryPolicy = RetryPolicy(),
        serving_dtype: str = "float64",
    ):
        self.config = config
        self.retry = retry
        self.serving_dtype = kernels.dtype_name(serving_dtype)
        self.workdir = Path(workdir)
        self.corpus_root = self.workdir / "corpus"
        self.registry = PredictorRegistry(
            self.workdir / "checkpoints",
            capacity=max(4, len(config.heldout)),
            dtype=self.serving_dtype,
        )
        self._datasets: Optional[dict[str, NoiseDataset]] = None

    @property
    def report_path(self) -> Path:
        """Location of the campaign's resumable report artefact."""
        return self.workdir / REPORT_NAME

    # ------------------------------------------------------------------ #
    # corpus
    # ------------------------------------------------------------------ #

    def ensure_corpus(self, num_workers: Optional[int] = None) -> GenerationReport:
        """Generate (or finish) the campaign corpus via :mod:`repro.datagen`.

        Idempotent and resumable — complete shards are skipped, so calling
        this at the start of every run costs almost nothing once the corpus
        exists.
        """
        return generate_corpus(
            self.config.corpus_spec(), self.corpus_root, num_workers=num_workers
        )

    def _load_datasets(self) -> dict[str, NoiseDataset]:
        """The campaign corpus, loaded from its shards once per evaluator.

        Every held-out row needs (almost) every design's dataset, so the
        merged corpora are memoised — a multi-design campaign deserialises
        each shard once, not once per held-out design.
        """
        if self._datasets is None:
            self._datasets = {
                label: load_design_dataset(self.corpus_root, label)
                for label in self.config.labels
            }
        return self._datasets

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate_heldout(self, heldout: str) -> HeldoutEvaluation:
        """Train on every other design and evaluate on ``heldout``.

        The trained model is registered (and checkpointed) in the campaign
        registry under the held-out label, then every held-out vector is
        screened through a :class:`ScreeningService` on top of that registry
        — the measured latencies are the serving stack's, micro-batching and
        all.  The held-out design contributes **nothing** to training: not
        its vectors, not its normaliser scales; only its distance tensor is
        given to the predictor, exactly as a new design's geometry would be.
        """
        faults.active().before_row(heldout)
        config = self.config
        trained_on = config.training_labels(heldout)
        datasets = self._load_datasets()
        heldout_dataset = datasets[heldout]
        tracer = obs.get_tracer()

        trainer = MultiDesignTrainer(
            {label: datasets[label] for label in trained_on},
            model_config=config.model,
            training_config=config.training,
            train_fraction=config.train_fraction,
            validation_ratio=config.validation_ratio,
        )
        with tracer.span("eval.training", heldout=heldout) as training_span:
            trained = trainer.train()

        predictor = NoisePredictor(
            model=trained.model,
            normalizer=trained.normalizer,
            distance=heldout_dataset.distance,
            compression_rate=config.compression_rate,
            rate_step=config.rate_step,
            dtype=self.serving_dtype,
        )
        self.registry.register(heldout, predictor)

        features = [sample.features for sample in heldout_dataset.samples]
        # A private live registry: the held-out row needs latency percentiles
        # even when observability is globally off, and must not mix its
        # histograms with other rows' samples.  When a run is active, the
        # row's metrics are folded into the global registry afterwards.
        service_metrics = MetricsRegistry()
        with ScreeningService(
            self.registry,
            max_batch=config.max_batch,
            latency_window=max(4096, len(features)),
            metrics=service_metrics,
        ) as service:
            with tracer.span("eval.serving", heldout=heldout) as serving_span:
                results = service.screen(features, heldout)
            latencies = service.latencies()
            stats = service.stats
            service_counters = {
                "cache_hits": stats.cache_hits,
                "coalesced": stats.coalesced,
                "model_batches": stats.model_batches,
                "mean_batch_size": stats.mean_batch_size,
                "max_batch_observed": stats.max_batch_observed,
            }
        latency_samples = _combined_latency_histogram(service_metrics) or latencies
        if obs.enabled():
            obs.metrics().merge_snapshot(service_metrics.snapshot())

        predicted = np.stack([result.noise_map for result in results])
        truth = np.stack([sample.target for sample in heldout_dataset.samples])
        accuracy = evaluate_predictions(
            predicted, truth, hotspot_threshold=heldout_dataset.hotspot_threshold
        )
        precision, recall = hotspot_precision_recall(
            predicted, truth, heldout_dataset.hotspot_threshold
        )
        row = HeldoutEvaluation(
            heldout=heldout,
            trained_on=trained_on,
            num_train_samples=trained.num_train_samples,
            num_vectors=len(features),
            accuracy=accuracy,
            hotspot_precision=precision,
            hotspot_recall=recall,
            latency=latency_throughput_columns(
                latency_samples, total_seconds=serving_span.duration_s, vectors=len(features)
            ),
            service=service_counters,
            training_epochs=trained.history.num_epochs,
            best_validation_loss=trained.history.best_validation_loss,
            training_seconds=training_span.duration_s,
            serving_seconds=serving_span.duration_s,
            simulator_seconds=heldout_dataset.total_sim_runtime,
        )
        _LOG.info(
            "heldout %s (trained on %s): %s",
            heldout,
            "+".join(trained_on),
            accuracy.table_row(),
        )
        return row

    def load_report(self) -> Optional[CrossDesignReport]:
        """Load the existing report artefact, or ``None`` when absent.

        Raises
        ------
        ValueError
            When the artefact belongs to a different campaign configuration
            (config-hash mismatch) — delete the workdir or use a fresh one.
        """
        if not self.report_path.exists():
            return None
        report = CrossDesignReport.load(self.report_path)
        expected = self.config.config_hash()
        if report.config_hash != expected:
            raise ValueError(
                f"report at {self.report_path} belongs to a different campaign "
                f"(artefact hash {report.config_hash[:12]}…, "
                f"config hash {expected[:12]}…); use a fresh workdir"
            )
        if report.serving_dtype != self.serving_dtype:
            raise ValueError(
                f"report at {self.report_path} was measured at serving dtype "
                f"{report.serving_dtype}, this campaign serves at "
                f"{self.serving_dtype}; use a fresh workdir"
            )
        if report.label_solver != self.config.solver_mode:
            raise ValueError(
                f"report at {self.report_path} was labelled by the "
                f"{report.label_solver!r} solver, this campaign labels with "
                f"{self.config.solver_mode!r}; use a fresh workdir"
            )
        return report

    def run(
        self, num_workers: Optional[int] = None, resume: bool = True
    ) -> CrossDesignReport:
        """Run (or finish) the whole campaign.

        Ensures the corpus, then evaluates every held-out design that the
        report artefact does not already contain, saving the artefact
        atomically after each row — killing the run loses at most the row in
        flight, and a re-run picks up where it stopped.  Rows are retried
        under the evaluator's :class:`~repro.resilience.retry.RetryPolicy`;
        a row that exhausts it is quarantined into the report (and
        re-attempted by the next resumed run) instead of aborting the rest
        of the campaign.

        Parameters
        ----------
        num_workers:
            Worker processes for corpus generation (``0`` = inline).
        resume:
            ``False`` discards any existing report rows and re-evaluates
            everything (the corpus is still reused).
        """
        self.ensure_corpus(num_workers=num_workers)
        report = self.load_report() if resume else None
        if report is None:
            from repro.datagen.shards import git_revision

            report = CrossDesignReport(
                config_hash=self.config.config_hash(),
                git_rev=git_revision(),
                serving_dtype=self.serving_dtype,
                label_solver=self.config.solver_mode,
            )
        started = time.perf_counter()
        for heldout in self.config.heldout:
            if heldout in report.rows:
                _LOG.info("heldout %s already evaluated; skipping", heldout)
                continue
            try:
                row = run_with_retry(
                    lambda label=heldout: self.evaluate_heldout(label),
                    self.retry,
                    describe=f"heldout {heldout}",
                )
            except Exception as error:
                # Exhausted retries: quarantine the row, keep the campaign
                # going.  WorkerKilled is a BaseException and still unwinds —
                # a preempted campaign resumes, it does not half-report.
                obs.metrics().counter("faults.quarantined_rows").inc()
                report.quarantined[heldout] = {
                    "error": repr(error),
                    "attempts": self.retry.max_attempts,
                }
                _LOG.warning(
                    "heldout %s quarantined after %d attempts: %r",
                    heldout,
                    self.retry.max_attempts,
                    error,
                )
                self.workdir.mkdir(parents=True, exist_ok=True)
                report.save(self.report_path)
                continue
            report.rows[heldout] = row
            report.quarantined.pop(heldout, None)
            self.workdir.mkdir(parents=True, exist_ok=True)
            report.save(self.report_path)
        self.workdir.mkdir(parents=True, exist_ok=True)
        report.save(self.report_path)
        _LOG.info(
            "campaign %s: %d/%d rows complete, %d quarantined (%.1f s this run)",
            self.config.name,
            len(report.rows),
            len(self.config.heldout),
            len(report.quarantined),
            time.perf_counter() - started,
        )
        return report
