"""Cross-design evaluation: the layer that *verifies* the reproduction.

The first three subsystems of this repository train (:mod:`repro.core`),
generate data (:mod:`repro.datagen`) and serve (:mod:`repro.serving`); this
package closes the loop by measuring the paper's headline claim — a CNN
trained on a pool of PDN designs predicts worst-case dynamic noise on
*unseen* designs — and locking the measured accuracy in as a regression
gate:

* :class:`CrossDesignEvaluator` runs leave-one-design-out campaigns: pooled
  training on every other design (:class:`MultiDesignTrainer`), evaluation
  of the held-out design through the real serving stack, one paper-style
  report row per held-out design, resumable ``report.json`` artefacts.
* :class:`ScenarioSweep` stresses the trained models with named workload
  scenarios across trace-length/seed variants over a process pool, with the
  same resumable-manifest conventions.
* :class:`BaselineStore` pins the gated accuracy metrics (content-hashed,
  with per-metric tolerances) under ``eval/baselines/``; CI re-runs the
  campaign via ``scripts/run_eval.py`` and fails on drift.

Budgets (``tiny`` / ``smoke`` / ``paper``) are registered in
:mod:`repro.eval.config`; see ``docs/evaluation.md`` for the protocols and
the baseline-refresh workflow.
"""

from repro.eval.baselines import (
    DEFAULT_TOLERANCES,
    Baseline,
    BaselineStore,
    DriftReport,
    MetricDrift,
    metrics_content_hash,
)
from repro.eval.config import EvalConfig, budget, budget_names
from repro.eval.protocol import CrossDesignEvaluator, CrossDesignReport, HeldoutEvaluation
from repro.eval.sweep import ScenarioSweep, SweepJob
from repro.eval.training import MultiDesignTrainer, PooledTrainingResult, fit_pooled_normalizer

__all__ = [
    "EvalConfig",
    "budget",
    "budget_names",
    "MultiDesignTrainer",
    "PooledTrainingResult",
    "fit_pooled_normalizer",
    "CrossDesignEvaluator",
    "CrossDesignReport",
    "HeldoutEvaluation",
    "ScenarioSweep",
    "SweepJob",
    "BaselineStore",
    "Baseline",
    "DriftReport",
    "MetricDrift",
    "metrics_content_hash",
    "DEFAULT_TOLERANCES",
]
