"""Evaluation configurations and the named evaluation budgets.

An :class:`EvalConfig` is the single source of truth for one cross-design
evaluation campaign: which designs participate, which of them are held out,
how much data the corpus contains, the model/training hyper-parameters of the
pooled trainer, and the scenario-sweep grid.  Like the datagen corpus spec it
is frozen, picklable and canonically hashable — every resumable artefact
(evaluation report, sweep manifest, golden baseline) records the hash, so a
resumed or compared run can prove it talks about the same campaign.

Three budgets are registered:

* ``tiny``  — seconds; used by the unit tests.
* ``smoke`` — a couple of minutes; the tier-2 CI gate (leave-one-design-out
  on two held-out designs at reduced scale).
* ``paper`` — the full-scale campaign mirroring the paper's D1–D4 sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.config import ModelConfig, TrainingConfig
from repro.datagen.spec import CorpusDesignSpec, CorpusSpec
from repro.sim.rom import ROMOptions
from repro.sim.transient import SOLVER_MODES
from repro.utils import check_positive, check_probability
from repro.workloads.scenarios import validate_scenario
from repro.workloads.specs import ScenarioSpec


@dataclass(frozen=True)
class EvalConfig:
    """One cross-design evaluation campaign.

    Attributes
    ----------
    name:
        Budget name (stamped into artefacts and baselines).
    designs:
        ``(label, design reference)`` pairs — the full design pool, in
        evaluation order.  References use the shared factory grammar of
        :func:`repro.pdn.designs.design_from_name` (e.g. ``"D2@0.12"``).
    heldout:
        Labels evaluated leave-one-design-out: for each, one model is
        trained on *all other* designs of the pool and evaluated on the
        held-out design's corpus, which the model never saw.
    num_vectors / num_steps / dt:
        Per-design corpus size: test-vector count, trace length, time step.
    shard_size:
        Vectors per corpus shard (the datagen resume/parallelism unit).
    compression_rate / rate_step:
        Algorithm-1 temporal-compression parameters of the features.
    sim_batch_size:
        Lockstep block size of the ground-truth transient solver.
    seed:
        Seed of the per-design test-vector suites (the corpus contents).
        The expansion splits and the trainer's shuffle stream derive from
        ``training.seed`` instead, mirroring the single-design pipeline.
    train_fraction / validation_ratio:
        Expansion-split shares applied per training design.
    model / training:
        Hyper-parameters of the pooled cross-design trainer.
    max_batch:
        Micro-batch bound of the :class:`~repro.serving.ScreeningService`
        the held-out vectors are screened through.
    scenarios:
        Workloads swept against every held-out design's trained model: each
        entry is a family name (defaults) or a full
        :class:`~repro.workloads.specs.ScenarioSpec` (parameter variants,
        compositions), so one sweep grid can fan over arbitrarily many
        members of a family.
    scenario_steps:
        Trace-length variants of the scenario sweep.
    scenario_seeds:
        Seed variants of the scenario sweep (exercise the scenarios'
        random choices).
    solver_mode / rom:
        Which transient strategy produces the campaign's ground-truth labels
        (see :class:`~repro.datagen.spec.CorpusSpec`).  Folded into the
        config hash — so golden baselines pin the label solver mode along
        with everything else — but omitted at the ``"full"`` default, so
        pre-seam campaign hashes (and their baselines) are unchanged.
    """

    name: str
    designs: tuple[tuple[str, str], ...]
    heldout: tuple[str, ...]
    num_vectors: int = 8
    num_steps: int = 60
    dt: float = 1e-11
    shard_size: int = 4
    compression_rate: Optional[float] = 0.3
    rate_step: float = 0.05
    sim_batch_size: int = 16
    seed: int = 0
    train_fraction: float = 0.7
    validation_ratio: float = 0.3
    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    max_batch: int = 16
    scenarios: tuple = ()
    scenario_steps: tuple[int, ...] = (60,)
    scenario_seeds: tuple[int, ...] = (0,)
    solver_mode: str = "full"
    rom: Optional[ROMOptions] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("evaluation config needs a name")
        if len(self.designs) < 2:
            raise ValueError("cross-design evaluation needs at least 2 designs")
        labels = [label for label, _ in self.designs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"design labels must be unique, got {labels}")
        if not self.heldout:
            raise ValueError("at least one design must be held out")
        unknown = [label for label in self.heldout if label not in labels]
        if unknown:
            raise ValueError(f"held-out labels {unknown} are not in the design pool")
        check_positive(self.num_vectors, "num_vectors")
        check_positive(self.shard_size, "shard_size")
        check_positive(self.sim_batch_size, "sim_batch_size")
        check_positive(self.max_batch, "max_batch")
        check_probability(self.train_fraction, "train_fraction")
        check_probability(self.validation_ratio, "validation_ratio")
        if self.num_steps < 2:
            raise ValueError(f"num_steps must be >= 2, got {self.num_steps}")
        for steps in self.scenario_steps:
            if steps < 2:
                raise ValueError(f"scenario_steps entries must be >= 2, got {steps}")
        for scenario in self.scenarios:
            if not isinstance(scenario, (str, ScenarioSpec)):
                raise ValueError(
                    f"scenarios entries must be names or ScenarioSpec, got {scenario!r}"
                )
            # Fail at config construction, not inside a sweep worker.  The
            # entries themselves stay as written (names stay plain strings,
            # keeping name-only config hashes stable).
            validate_scenario(scenario)
        if self.scenarios and not (self.scenario_steps and self.scenario_seeds):
            raise ValueError("a scenario sweep needs at least one steps and seed variant")
        if self.solver_mode not in SOLVER_MODES:
            raise ValueError(
                f"unknown solver mode {self.solver_mode!r}; "
                f"expected one of {SOLVER_MODES}"
            )
        if self.solver_mode == "rom" and self.rom is None:
            # Pin the exact ROM configuration into the campaign hash.
            object.__setattr__(self, "rom", ROMOptions())

    @property
    def labels(self) -> tuple[str, ...]:
        """All design labels of the pool, in evaluation order."""
        return tuple(label for label, _ in self.designs)

    def design_reference(self, label: str) -> str:
        """The factory reference of one design label."""
        for candidate, reference in self.designs:
            if candidate == label:
                return reference
        raise KeyError(f"no design labelled {label!r} in this evaluation")

    def training_labels(self, heldout: str) -> tuple[str, ...]:
        """The labels a model is trained on when ``heldout`` is held out."""
        if heldout not in self.labels:
            raise KeyError(f"no design labelled {heldout!r} in this evaluation")
        return tuple(label for label in self.labels if label != heldout)

    def corpus_spec(self) -> CorpusSpec:
        """The datagen corpus this evaluation trains and evaluates on.

        One corpus covers the whole campaign: every held-out model trains on
        a subset of its designs and is evaluated on another, so the corpus is
        generated (and resumed) once, up front.
        """
        return CorpusSpec(
            designs=tuple(
                CorpusDesignSpec(
                    label=label,
                    design=reference,
                    num_vectors=self.num_vectors,
                    num_steps=self.num_steps,
                    dt=self.dt,
                    seed=self.seed,
                    shard_size=self.shard_size,
                    compression_rate=self.compression_rate,
                    rate_step=self.rate_step,
                )
                for label, reference in self.designs
            ),
            sim_batch_size=self.sim_batch_size,
            solver_mode=self.solver_mode,
            rom=self.rom,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stored in artefacts).

        Named scenarios stay plain strings (so name-only configs keep the
        config hashes their golden baselines were pinned against);
        :class:`~repro.workloads.specs.ScenarioSpec` entries serialise via
        their canonical ``to_dict`` form.
        """
        payload = asdict(self)
        payload["scenarios"] = [
            scenario if isinstance(scenario, str) else scenario.to_dict()
            for scenario in self.scenarios
        ]
        if self.solver_mode == "full":
            del payload["solver_mode"]
            del payload["rom"]
        else:
            payload["rom"] = self.rom.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EvalConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["designs"] = tuple(
            (str(label), str(reference)) for label, reference in payload["designs"]
        )
        payload["scenarios"] = tuple(
            scenario if isinstance(scenario, str) else ScenarioSpec.from_dict(scenario)
            for scenario in payload["scenarios"]
        )
        for key in ("heldout", "scenario_steps", "scenario_seeds"):
            payload[key] = tuple(payload[key])
        payload["model"] = ModelConfig(**payload["model"])
        payload["training"] = TrainingConfig(**payload["training"])
        if "rom" in payload and payload["rom"] is not None:
            payload["rom"] = ROMOptions.from_dict(payload["rom"])
        return cls(**payload)

    def config_hash(self) -> str:
        """Canonical SHA-256 of the campaign configuration.

        Stamped into the report artefact, the sweep manifest and the golden
        baseline; two artefacts are comparable iff their hashes match.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _tiny_budget() -> EvalConfig:
    """Unit-test budget: three small designs, seconds of work."""
    return EvalConfig(
        name="tiny",
        designs=(("D1", "D1@0.1"), ("D2", "D2@0.1"), ("D3", "D3@0.1")),
        heldout=("D3",),
        num_vectors=6,
        num_steps=48,
        shard_size=3,
        sim_batch_size=8,
        model=ModelConfig(
            distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0
        ),
        training=TrainingConfig(epochs=2, batch_size=4, early_stopping_patience=None),
        scenarios=("steady_state",),
        scenario_steps=(48,),
        scenario_seeds=(0,),
    )


def _smoke_budget() -> EvalConfig:
    """Tier-2 CI budget: the D1–D4 pool at reduced scale, two held-out designs."""
    return EvalConfig(
        name="smoke",
        designs=(
            ("D1", "D1@0.12"),
            ("D2", "D2@0.12"),
            ("D3", "D3@0.12"),
            ("D4", "D4@0.12"),
        ),
        heldout=("D3", "D4"),
        num_vectors=10,
        num_steps=80,
        shard_size=5,
        sim_batch_size=16,
        model=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=6, seed=0
        ),
        training=TrainingConfig(epochs=12, batch_size=4, early_stopping_patience=6),
        scenarios=("steady_state", "power_virus", "single_core_sprint"),
        scenario_steps=(80, 120),
        scenario_seeds=(0,),
    )


def _paper_budget() -> EvalConfig:
    """Full-scale campaign mirroring the paper's Table 2 regime."""
    return EvalConfig(
        name="paper",
        designs=(
            ("D1", "D1@0.2"),
            ("D2", "D2@0.2"),
            ("D3", "D3@0.2"),
            ("D4", "D4@0.2"),
        ),
        heldout=("D1", "D2", "D3", "D4"),
        num_vectors=40,
        num_steps=200,
        shard_size=10,
        sim_batch_size=48,
        model=ModelConfig(seed=0),
        training=TrainingConfig(epochs=60, batch_size=4),
        scenarios=(
            "steady_state",
            "power_virus",
            "idle_to_turbo",
            "clock_gating_storm",
            "single_core_sprint",
        ),
        scenario_steps=(200, 400),
        scenario_seeds=(0, 1),
    )


_BUDGETS = {
    "tiny": _tiny_budget,
    "smoke": _smoke_budget,
    "paper": _paper_budget,
}


def budget_names() -> tuple[str, ...]:
    """Names of the registered evaluation budgets."""
    return tuple(sorted(_BUDGETS))


def budget(name: str) -> EvalConfig:
    """Look up a registered evaluation budget by name."""
    if name not in _BUDGETS:
        raise KeyError(f"unknown budget {name!r}; expected one of {budget_names()}")
    return _BUDGETS[name]()
