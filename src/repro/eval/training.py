"""Pooled multi-design training for the cross-design protocol.

The paper's headline claim is about *unseen* designs: a model trained on a
pool of PDN designs predicts worst-case noise on a design it never saw.  The
single-design :class:`~repro.core.training.NoiseModelTrainer` cannot express
that regime — it normalises one dataset against one distance tensor — so
:class:`MultiDesignTrainer` generalises its batched engine to a *pool* of
per-design corpora:

* the feature normaliser is fitted once on the pooled training partitions
  (current/noise percentiles over every design, distance scale from the
  largest die in the pool), so one scale set serves every design;
* every minibatch is homogeneous in design — the CNN is fully convolutional,
  so designs of different tile shapes share one model, but each forward pass
  uses its design's own distance tensor;
* the per-epoch schedule interleaves the designs' minibatches in seeded
  shuffled order, and the early-stopping bookkeeping is literally
  :func:`repro.core.training.note_epoch` — the same code path as the
  single-design engines.

Training is deterministic under a fixed seed, exactly like the single-design
engines (the determinism suite asserts it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Mapping, Optional, Union

import numpy as np

from repro import faults, obs
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import WorstCaseNoiseNet
from repro.core.training import LOSS_FUNCTIONS, TrainingHistory, _observe_epoch, note_epoch
from repro.features.extraction import FeatureNormalizer
from repro.nn import Adam, no_grad
from repro.nn.tensor import record_graph
from repro.utils import Timer, get_logger
from repro.utils.random import ensure_rng
from repro.workloads.dataset import DatasetSplit, NoiseDataset, expansion_split

__all__ = ["MultiDesignTrainer", "PooledTrainingResult", "fit_pooled_normalizer"]

_LOG = get_logger("eval.training")

#: One partition's normalised current maps: dense ``(N, T, m, n)`` when stamp
#: counts are uniform, else one ``(T_i, m, n)`` array per sample.
_PartitionInputs = Union[np.ndarray, List[np.ndarray]]


def fit_pooled_normalizer(
    datasets: Mapping[str, NoiseDataset],
    splits: Mapping[str, DatasetSplit],
    percentile: float = 99.0,
) -> FeatureNormalizer:
    """Fit one :class:`FeatureNormalizer` over a pool of design corpora.

    Scales are derived from the *training* partitions only (no leakage from
    validation/test vectors): the current and noise scales are pooled
    percentiles across every design, the distance scale is the largest
    distance value of any design in the pool — so the biggest die still
    normalises into the network's input range.

    Parameters
    ----------
    datasets:
        Per-design corpora (label -> dataset).
    splits:
        Per-design partitions; only ``train`` indices contribute.
    percentile:
        Percentile used for the current/noise scales.
    """
    currents: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    distance_scale = 0.0
    for label, dataset in datasets.items():
        distance_scale = max(distance_scale, float(np.max(dataset.distance)))
        for index in splits[label].train:
            sample = dataset.samples[int(index)]
            currents.append(sample.features.current_maps.ravel())
            targets.append(sample.target.ravel())
    pooled_currents = np.concatenate(currents) if currents else np.zeros(0)
    positive = pooled_currents[pooled_currents > 0]
    current_scale = float(np.percentile(positive, percentile)) if positive.size else 1.0
    pooled_noise = np.concatenate(targets) if targets else np.zeros(0)
    noise_scale = float(np.percentile(pooled_noise, percentile)) if pooled_noise.size else 1.0
    return FeatureNormalizer(
        current_scale=current_scale if current_scale > 0 else 1.0,
        distance_scale=distance_scale if distance_scale > 0 else 1.0,
        noise_scale=noise_scale if noise_scale > 0 else 1.0,
    )


@dataclass
class PooledTrainingResult:
    """Everything a cross-design evaluation needs after pooled training."""

    model: WorstCaseNoiseNet
    normalizer: FeatureNormalizer
    history: TrainingHistory
    splits: dict[str, DatasetSplit]

    @property
    def num_train_samples(self) -> int:
        """Total training-partition size across the design pool."""
        return sum(len(split.train) for split in self.splits.values())


class MultiDesignTrainer:
    """Trains one :class:`WorstCaseNoiseNet` on a pool of design corpora.

    Parameters
    ----------
    datasets:
        Per-design labelled corpora (label -> :class:`NoiseDataset`), all
        sharing one bump count (the distance tensor's channel dimension is
        baked into the model).  Tile shapes may differ — the network is
        fully convolutional, and minibatches never mix designs.
    splits:
        Optional per-design partitions; computed with the expansion
        strategy (per design, from ``training_config.seed``) when omitted.
    model_config / training_config:
        Hyper-parameters; the ``sequential`` engine flag is ignored (pooled
        training is always batched).
    train_fraction / validation_ratio:
        Expansion-split shares used when ``splits`` is omitted.
    """

    def __init__(
        self,
        datasets: Mapping[str, NoiseDataset],
        splits: Optional[Mapping[str, DatasetSplit]] = None,
        model_config: ModelConfig = ModelConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        train_fraction: float = 0.7,
        validation_ratio: float = 0.3,
    ):
        if not datasets:
            raise ValueError("pooled training needs at least one design corpus")
        self.datasets = dict(datasets)
        bump_counts = {label: ds.num_bumps for label, ds in self.datasets.items()}
        if len(set(bump_counts.values())) != 1:
            raise ValueError(
                "all designs of a pool must share one bump count "
                f"(the model's distance channels); got {bump_counts}"
            )
        for label, dataset in self.datasets.items():
            if len(dataset) < 3:
                raise ValueError(
                    f"design {label!r} has {len(dataset)} samples; "
                    "the expansion split needs at least 3"
                )
        self.model_config = model_config
        self.training_config = training_config
        if splits is None:
            splits = {
                label: expansion_split(
                    dataset,
                    train_fraction=train_fraction,
                    validation_ratio=validation_ratio,
                    seed=training_config.seed,
                )
                for label, dataset in self.datasets.items()
            }
        self.splits = dict(splits)
        self.normalizer = fit_pooled_normalizer(self.datasets, self.splits)
        self.model = WorstCaseNoiseNet(
            num_bumps=next(iter(bump_counts.values())), config=model_config
        )

    # ------------------------------------------------------------------ #
    # partition preparation
    # ------------------------------------------------------------------ #

    def _normalized_partition(
        self, label: str, indices: np.ndarray
    ) -> tuple[_PartitionInputs, np.ndarray]:
        """Normalise one design's partition once, up front."""
        dataset = self.datasets[label]
        samples = [dataset.samples[int(index)] for index in indices]
        if not samples:
            empty = np.zeros((0,) + dataset.tile_shape)
            return empty, empty
        currents = [
            self.normalizer.normalize_currents(sample.features.current_maps)
            for sample in samples
        ]
        targets = np.stack(
            [self.normalizer.normalize_noise(sample.target) for sample in samples]
        )
        if len({maps.shape[0] for maps in currents}) == 1:
            return np.stack(currents), targets
        return currents, targets

    @staticmethod
    def _rows(inputs: _PartitionInputs, rows: np.ndarray) -> _PartitionInputs:
        """Select minibatch rows from a dense or ragged partition."""
        if isinstance(inputs, np.ndarray):
            return inputs[rows]
        return [inputs[int(row)] for row in rows]

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def train(self) -> PooledTrainingResult:
        """Run the pooled training loop and return the best model.

        Mirrors the single-design batched engine: one autograd graph and one
        fused optimiser step per minibatch, seeded shuffle, validation under
        ``no_grad``, early stopping via the shared
        :func:`~repro.core.training.note_epoch` bookkeeping.
        """
        config = self.training_config
        rng = ensure_rng(config.seed)
        optimizer = Adam(
            self.model.parameters(),
            learning_rate=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        loss_function = LOSS_FUNCTIONS[config.loss]

        labels = list(self.datasets)
        distances = {
            label: self.normalizer.normalize_distance(self.datasets[label].distance)
            for label in labels
        }
        train_parts = {
            label: self._normalized_partition(label, self.splits[label].train)
            for label in labels
        }
        validation_parts = {
            label: self._normalized_partition(label, self.splits[label].validation)
            for label in labels
        }
        num_train = sum(len(targets) for _, targets in train_parts.values())
        if num_train == 0:
            raise ValueError("the pooled training partition is empty")

        history = TrainingHistory()
        best_state = self.model.state_dict()
        epochs_without_improvement = 0
        timer = Timer()
        metrics = obs.metrics()

        with timer.measure():
            for epoch in range(config.epochs):
                epoch_started = time.perf_counter()
                # Per-design shuffled minibatches, then a shuffled interleave
                # across designs; both draws come from the one seeded stream,
                # so the schedule is a pure function of the seed.
                schedule: list[tuple[str, np.ndarray]] = []
                for label in labels:
                    count = len(train_parts[label][1])
                    order = np.arange(count)
                    if config.shuffle:
                        rng.shuffle(order)
                    for start in range(0, count, config.batch_size):
                        schedule.append((label, order[start:start + config.batch_size]))
                if config.shuffle:
                    rng.shuffle(schedule)

                epoch_loss = 0.0
                for step, (label, rows) in enumerate(schedule):
                    inputs, targets = train_parts[label]
                    optimizer.zero_grad()
                    with record_graph():
                        prediction = self.model.forward_batch(
                            self._rows(inputs, rows), distances[label]
                        )
                        loss = loss_function(prediction, targets[rows])
                        loss.backward()
                    optimizer.step()
                    faults.active().on_train_step(epoch, step, self.model)
                    epoch_loss += loss.item() * len(rows)
                epoch_loss /= num_train
                _observe_epoch(
                    metrics, optimizer, num_train, time.perf_counter() - epoch_started
                )

                validation_loss = self._pooled_validation_loss(
                    validation_parts, distances, loss_function
                )
                stop, best_state, epochs_without_improvement = note_epoch(
                    self.model,
                    config,
                    history,
                    epoch,
                    epoch_loss,
                    validation_loss,
                    best_state,
                    epochs_without_improvement,
                )
                if stop:
                    break

        self.model.load_state_dict(best_state)
        history.wall_clock_seconds = timer.total
        _LOG.info(
            "pooled training over %s: %d epochs, best val %.5f",
            labels,
            history.num_epochs,
            history.best_validation_loss,
        )
        return PooledTrainingResult(
            model=self.model,
            normalizer=self.normalizer,
            history=history,
            splits=self.splits,
        )

    def _pooled_validation_loss(
        self,
        validation_parts: Mapping[str, tuple[_PartitionInputs, np.ndarray]],
        distances: Mapping[str, np.ndarray],
        loss_function,
    ) -> float:
        """Sample-weighted mean validation loss across the design pool."""
        total = 0.0
        count = 0
        batch_size = max(self.training_config.batch_size, 32)
        with no_grad():
            for label, (inputs, targets) in validation_parts.items():
                part_count = len(targets)
                if part_count == 0:
                    continue
                reduced = self.model.reduce_distance(distances[label])
                for start in range(0, part_count, batch_size):
                    stop = min(start + batch_size, part_count)
                    prediction = self.model.forward_batch(
                        self._rows(inputs, np.arange(start, stop)),
                        distances[label],
                        reduced_distance=reduced,
                    )
                    total += loss_function(prediction, targets[start:stop]).item() * (
                        stop - start
                    )
                count += part_count
        return total / count if count else float("nan")
