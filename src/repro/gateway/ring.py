"""Consistent hashing of design names onto worker shards.

The gateway routes every request for one design to the *same* shard so that
shard's :class:`~repro.serving.registry.PredictorRegistry` keeps the design's
checkpoint warm in its LRU.  A consistent-hash ring (virtual nodes hashed
onto a circle, keys assigned to the next node clockwise) gives that mapping
two properties a plain ``hash(design) % shards`` would not:

* **Stability under resizing** — adding or removing one shard remaps only
  ``~1/N`` of the designs, so a restarted deployment with a different shard
  count keeps most LRU partitions warm.
* **Smoothness** — virtual nodes (``replicas`` points per shard) spread the
  key space evenly even for small shard counts.

Hashing is SHA-256-based and therefore deterministic across processes and
Python runs (no ``PYTHONHASHSEED`` dependence) — the same design always
lands on the same shard of an identically configured ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Sequence

from repro.utils import check_positive


def _point(token: str) -> int:
    """Position of a token on the ring (stable 64-bit hash)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Deterministic key → node assignment with minimal-movement resizing.

    Parameters
    ----------
    nodes:
        Initial node identifiers (e.g. shard indices).  Order is irrelevant;
        the ring layout depends only on the node identifiers themselves.
    replicas:
        Virtual nodes per physical node.  More replicas smooth the key
        distribution at the cost of a larger (still tiny) ring table.
    """

    def __init__(self, nodes: Sequence[Hashable] = (), replicas: int = 64):
        check_positive(replicas, "replicas")
        self.replicas = int(replicas)
        self._points: list[int] = []
        self._owners: list[Hashable] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> tuple:
        """The ring's physical nodes, sorted by repr for determinism."""
        return tuple(sorted(self._nodes, key=repr))

    def add(self, node: Hashable) -> None:
        """Insert a node (no-op when already present)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node!r}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: Hashable) -> None:
        """Remove a node; its keys fall to their clockwise successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def assign(self, key: str) -> Hashable:
        """The node owning ``key`` (first virtual node clockwise of its hash)."""
        if not self._nodes:
            raise ValueError("cannot assign a key on an empty ring")
        point = _point(f"key:{key}")
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]
