"""Request/control messages and typed errors of the screening gateway.

Everything that flows through a shard inbox is defined here: admitted
:class:`GatewayRequest` objects, the :class:`SwapCommand` control message
that quiesces one shard for a hot checkpoint swap, and the stop sentinel.
The gateway's caller-facing error taxonomy also lives here so both the
in-process API and the wire protocol can map failures to typed responses.

Exactly-once answering is enforced structurally: every request owns one
:class:`concurrent.futures.Future`, and :meth:`GatewayRequest.resolve` /
:meth:`GatewayRequest.fail` go through its atomic set-once state machine.
Whichever path answers first — a worker, a retry after a crash, a load-shed
decision, or the shutdown sweep — wins; every later attempt (duplicated
delivery, crashed-then-requeued request that had in fact completed) is a
recorded no-op.  The ``answers`` counter increments only on the winning
transition, which is what the fault-injection suite asserts equals one.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.inference import PredictionResult
from repro.pdn.designs import Design
from repro.serving.cache import ScreeningPayload
from repro.workloads.specs import ScenarioLike


class GatewayError(RuntimeError):
    """Base class of every error the gateway raises or sets on futures."""


class GatewayOverloaded(GatewayError):
    """Admission rejected: the queue is full and the policy is ``reject``.

    Carries ``retry_after_s``, the gateway's estimate of when capacity will
    free up (current backlog divided by recent service rate), so callers —
    and the wire protocol — can implement honest retry backoff.
    """

    def __init__(self, retry_after_s: float, message: Optional[str] = None):
        super().__init__(
            message
            or f"gateway admission queue is full; retry after {retry_after_s:.3f}s"
        )
        #: Suggested client back-off in seconds.
        self.retry_after_s = float(retry_after_s)


class GatewayClosed(GatewayError):
    """The gateway shut down before (or while) the request could be answered."""


class LoadShedError(GatewayError):
    """The request was shed under overload (``shed-oldest`` policy)."""


class WorkerCrashed(GatewayError):
    """The owning worker crashed and retries were exhausted.

    ``__cause__`` carries the underlying worker error.
    """


#: Inbox sentinel telling a shard worker to exit after draining its batch.
STOP = object()


@dataclass
class SwapCommand:
    """Hot checkpoint swap for one design, applied at a shard's quiesce point.

    The command travels through the owning shard's FIFO inbox, so batches
    already in flight (and requests queued ahead of it) finish against the
    old checkpoint while everything behind it sees the new fingerprint —
    only this shard pauses, and only between batches.  ``predictor`` is the
    new predictor to register (persisted when ``persist`` is set); ``None``
    evicts the resident entry instead so the next request reloads whatever
    checkpoint is on disk.  ``done`` resolves to the serving fingerprint
    once applied, or to the error when the swap failed.
    """

    design_name: str
    predictor: Optional[object] = None
    persist: bool = True
    done: "Future[str]" = field(default_factory=Future)


@dataclass
class GatewayRequest:
    """One admitted unit of screening work.

    ``payload`` is either a concrete vector payload (a
    :class:`~repro.sim.waveform.CurrentTrace` or pre-extracted
    :class:`~repro.features.extraction.VectorFeatures`) or a scenario
    reference (family name or :class:`~repro.workloads.specs.ScenarioSpec`)
    that the owning worker materialises with ``num_steps``/``dt``/``seed``.
    ``design`` may be the full :class:`Design` or just its name — workers
    rebuild designs from names through the gateway's design factory.
    """

    payload: Union[ScreeningPayload, ScenarioLike]
    design: Union[Design, str]
    num_steps: int = 200
    dt: float = 1e-11
    seed: int = 0
    future: "Future[PredictionResult]" = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Delivery attempts consumed (incremented when a crash requeues it).
    attempts: int = 0
    #: Number of times a resolution attempt actually won (asserted == 1).
    answers: int = 0
    #: Set (advisorily) once a worker pulled the request from its inbox; the
    #: ``shed-oldest`` policy prefers victims that have not been dispatched
    #: so shedding does not waste a forward pass already under way.
    dispatched: bool = False

    @property
    def design_name(self) -> str:
        """The design's routing key."""
        return self.design if isinstance(self.design, str) else self.design.name

    @property
    def done(self) -> bool:
        """Whether the request has been answered (result, error, or cancel)."""
        return self.future.done()

    def resolve(self, result: PredictionResult) -> bool:
        """Answer with a result; returns ``True`` iff this call won the race."""
        try:
            self.future.set_result(result)
        except InvalidStateError:
            return False
        self.answers += 1
        return True

    def fail(self, error: BaseException) -> bool:
        """Answer with an error; returns ``True`` iff this call won the race."""
        try:
            self.future.set_exception(error)
        except InvalidStateError:
            return False
        self.answers += 1
        return True
