"""Async screening gateway: the serving stack as a supervised service.

Where :mod:`repro.serving` provides the in-process building blocks (batched
predictors, registries, the micro-batching service), ``repro.gateway`` turns
them into a *deployable front door* for model-based worst-case noise
sign-off at production scale:

* :class:`~repro.gateway.gateway.ScreeningGateway` — bounded admission with
  configurable overload behaviour, consistent-hash sharded workers (one
  warm :class:`~repro.serving.registry.PredictorRegistry` partition each),
  supervisor-driven crash restarts with backoff, hot checkpoint swaps that
  quiesce one shard between batches, and a graceful drain that resolves
  every accepted future;
* :class:`~repro.gateway.server.GatewayServer` — a stdlib asyncio TCP
  front-end speaking newline-delimited JSON;
* :class:`~repro.gateway.faults.FaultInjector` — the deterministic
  fault-injection seam the concurrency test suite (``tests/gateway/``)
  scripts worker kills, duplicated/delayed deliveries, and checkpoint-load
  failures through.

See ``docs/serving.md`` for the architecture and semantics,
``scripts/run_gateway.py`` for the CLI entry point, and
``benchmarks/bench_gateway.py`` for the throughput gate against the bare
:class:`~repro.serving.service.ScreeningService` loop.
"""

from repro.gateway.faults import FaultInjector, NULL_FAULTS, WorkerKilled
from repro.gateway.gateway import SHED_POLICIES, ScreeningGateway
from repro.gateway.messages import (
    GatewayClosed,
    GatewayError,
    GatewayOverloaded,
    GatewayRequest,
    LoadShedError,
    SwapCommand,
    WorkerCrashed,
)
from repro.gateway.ring import ConsistentHashRing
from repro.gateway.server import GatewayServer
from repro.gateway.worker import ShardWorker

__all__ = [
    "ScreeningGateway",
    "GatewayServer",
    "ConsistentHashRing",
    "ShardWorker",
    "GatewayRequest",
    "SwapCommand",
    "FaultInjector",
    "NULL_FAULTS",
    "WorkerKilled",
    "GatewayError",
    "GatewayOverloaded",
    "GatewayClosed",
    "LoadShedError",
    "WorkerCrashed",
    "SHED_POLICIES",
]
