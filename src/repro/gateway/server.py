"""Stdlib asyncio TCP front door speaking newline-delimited JSON.

:class:`GatewayServer` exposes a :class:`~repro.gateway.gateway.ScreeningGateway`
over a socket so screening clients do not need the Python stack in-process.
The protocol is deliberately boring — one JSON object per line in, one JSON
object per line out, connections stay open for pipelining:

Request objects::

    {"design": "D1@0.2", "scenario": "resonance_chirp",
     "num_steps": 200, "dt": 1e-11, "seed": 7}        # screen a scenario
    {"design": "D1@0.2", "scenario": {"family": "didt_step_train",
     "params": {...}}}                                  # parameterised spec
    {"op": "health"}                                    # health snapshot
    {"op": "swap", "design": "D1@0.2"}                  # reload from disk

Responses always carry ``ok``.  Successful screens report the worst/mean
noise and the gateway-measured latency; overload maps to
``{"ok": false, "error": "overloaded", "retry_after_s": ...}`` so clients
can implement honest backoff.  Scenario payloads only — test vectors are
megabytes of samples and belong in shared corpus storage, not on this
control-plane socket.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

import numpy as np

from repro.gateway.gateway import ScreeningGateway
from repro.gateway.messages import GatewayClosed, GatewayOverloaded
from repro.utils import get_logger
from repro.workloads.specs import ScenarioSpec

_LOG = get_logger("gateway.server")


class GatewayServer:
    """Serve a gateway over TCP (newline-delimited JSON).

    Parameters
    ----------
    gateway:
        The :class:`ScreeningGateway` answering the requests.
    host / port:
        Bind address.  Port ``0`` (the default) lets the OS pick a free
        port; read the bound address off :attr:`address` after
        :meth:`start`.
    """

    def __init__(self, gateway: ScreeningGateway, host: str = "127.0.0.1", port: int = 0):
        self.gateway = gateway
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        host, port = self.address
        _LOG.info("gateway server listening on %s:%d", host, port)
        return host, port

    async def stop(self) -> None:
        """Stop accepting connections and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """One client connection: JSON object per line, pipelined."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, line: bytes) -> dict:
        """Parse one request line and produce its response object."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            return {"ok": False, "error": f"malformed request: {error}"}
        op = payload.get("op", "screen")
        try:
            if op == "health":
                return {"ok": True, "health": self.gateway.health()}
            if op == "swap":
                fingerprint = await self.gateway.swap(str(payload["design"]))
                return {"ok": True, "design": payload["design"], "fingerprint": fingerprint}
            if op == "screen":
                return await self._screen(payload)
            return {"ok": False, "error": f"unknown op {op!r}"}
        except GatewayOverloaded as error:
            return {
                "ok": False,
                "error": "overloaded",
                "retry_after_s": error.retry_after_s,
            }
        except GatewayClosed:
            return {"ok": False, "error": "closed"}
        except Exception as error:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    async def _screen(self, payload: dict) -> dict:
        """Handle one screening request."""
        design = str(payload["design"])
        scenario = payload["scenario"]
        if isinstance(scenario, dict):
            scenario = ScenarioSpec.from_dict(scenario)
        result = await self.gateway.submit(
            scenario,
            design,
            num_steps=int(payload.get("num_steps", 200)),
            dt=float(payload.get("dt", 1e-11)),
            seed=int(payload.get("seed", 0)),
        )
        return {
            "ok": True,
            "design": design,
            "name": result.name,
            "worst_noise_v": float(result.worst_noise),
            "mean_noise_v": float(np.mean(result.noise_map)),
            "latency_ms": float(result.runtime_seconds) * 1e3,
        }
