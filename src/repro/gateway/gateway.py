"""The asyncio screening gateway: admission, sharding, supervision.

:class:`ScreeningGateway` is the persistent front door of the serving stack.
Where :class:`~repro.serving.service.ScreeningService` is a library object a
caller constructs and drives in-process, the gateway is built to run as a
long-lived service under sustained mixed-design traffic:

* **Admission control** — a bounded queue with an explicit overload policy:
  ``reject`` answers excess submissions with
  :class:`~repro.gateway.messages.GatewayOverloaded` (carrying an honest
  ``retry_after_s`` estimate), ``shed-oldest`` drops the oldest waiting
  request instead so fresh traffic keeps flowing.
* **Sharded workers** — a consistent-hash ring maps each design to one of
  ``num_shards`` worker threads, each owning a private
  :class:`~repro.serving.registry.PredictorRegistry` partition whose LRU
  stays warm because no other shard ever touches its designs.
* **Supervision** — a supervisor thread restarts crashed workers with
  exponential backoff, requeues the crash's unanswered in-hand requests
  (bounded by ``max_retries``), and reports per-shard health states.
* **Hot swaps** — :meth:`ScreeningGateway.swap_checkpoint` quiesces only the
  owning shard, between batches, so in-flight requests finish on the old
  checkpoint and nothing is dropped.
* **Graceful drain** — :meth:`ScreeningGateway.close` stops admission, lets
  workers finish the backlog, and guarantees every accepted future resolves
  (with a result or a typed error; never a hang).

Every layer publishes through :mod:`repro.obs`: ``gateway.*`` counters
(requests, rejected, shed, retries, restarts, swaps, failures,
duplicates_dropped), queue-depth and per-shard depth gauges, and
``gateway.request_latency.{ok,failed}`` histograms.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future, wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import obs
from repro.core.inference import NoisePredictor, PredictionResult
from repro.gateway.faults import NULL_FAULTS, FaultInjector
from repro.gateway.messages import (
    STOP,
    GatewayClosed,
    GatewayOverloaded,
    GatewayRequest,
    LoadShedError,
    SwapCommand,
    WorkerCrashed,
)
from repro.gateway.ring import ConsistentHashRing
from repro.gateway.worker import DesignFactory, ShardWorker
from repro.obs.metrics import MetricsRegistry
from repro.pdn.designs import Design
from repro.serving.registry import PredictorRegistry
from repro.serving.sweep import default_design_factory
from repro.utils import check_positive, get_logger

_LOG = get_logger("gateway")

#: Admission overload policies.
SHED_POLICIES = ("reject", "shed-oldest")


class _GatewayInstruments:
    """Pre-resolved metric handles shared by the gateway and its workers."""

    def __init__(self, metrics: MetricsRegistry, num_shards: int):
        self.requests = metrics.counter("gateway.requests")
        self.rejected = metrics.counter("gateway.rejected")
        self.shed = metrics.counter("gateway.shed")
        self.retries = metrics.counter("gateway.retries")
        self.restarts = metrics.counter("gateway.restarts")
        self.swaps = metrics.counter("gateway.swaps")
        self.failures = metrics.counter("gateway.failures")
        self.duplicates_dropped = metrics.counter("gateway.duplicates_dropped")
        self.queue_depth = metrics.gauge("gateway.queue_depth")
        self.batch_size = metrics.gauge("gateway.batch_size")
        self.shard_depth = {
            shard: metrics.gauge(f"gateway.shard_depth.{shard}")
            for shard in range(num_shards)
        }
        self.latency_ok = metrics.histogram("gateway.request_latency.ok")
        self.latency_failed = metrics.histogram("gateway.request_latency.failed")


@dataclass
class _Shard:
    """Supervisor-side state of one shard."""

    shard_id: int
    inbox: "queue.Queue" = field(default_factory=queue.Queue)
    registry: Optional[PredictorRegistry] = None
    worker: Optional[ShardWorker] = None
    state: str = "healthy"
    restarts: int = 0
    consecutive_crashes: int = 0
    generation: int = 0
    backoff_history: list = field(default_factory=list)


class ScreeningGateway:
    """Supervised, sharded, admission-controlled screening front door.

    Parameters
    ----------
    registry_root:
        Directory of per-design predictor checkpoints shared by every shard
        (each shard only ever loads the designs the ring assigns to it).
    num_shards:
        Worker count.  Each worker serves one consistent-hash partition of
        the design space with its own registry LRU.
    queue_limit:
        Maximum admitted-but-unanswered requests across the gateway; beyond
        it the ``shed_policy`` applies.
    shed_policy:
        ``"reject"`` (refuse the new request with
        :class:`GatewayOverloaded`) or ``"shed-oldest"`` (fail the oldest
        waiting request with :class:`LoadShedError` and admit the new one).
    max_batch / max_wait:
        Per-worker micro-batching bounds (see
        :class:`~repro.serving.service.ScreeningService`).
    registry_capacity:
        LRU capacity of each shard's registry partition.
    design_factory:
        Rebuilds :class:`Design` objects from names for scenario payloads
        (defaults to :func:`repro.serving.sweep.default_design_factory`).
    faults:
        Fault-injection seam (tests only; defaults to inert hooks).
    metrics:
        Metrics registry to publish into; defaults to the process-global
        :func:`repro.obs.metrics` registry.
    max_retries:
        How many times a request stranded by worker crashes is requeued
        before failing with :class:`WorkerCrashed`.
    backoff_base / backoff_cap:
        Supervisor restart backoff: ``min(cap, base * 2**(crashes-1))``
        seconds, reset after the shard's next successful batch.
    """

    def __init__(
        self,
        registry_root: Union[str, Path],
        num_shards: int = 2,
        queue_limit: int = 256,
        shed_policy: str = "reject",
        max_batch: int = 16,
        max_wait: float = 2e-3,
        registry_capacity: int = 4,
        design_factory: DesignFactory = default_design_factory,
        faults: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        check_positive(num_shards, "num_shards")
        check_positive(queue_limit, "queue_limit")
        check_positive(max_batch, "max_batch")
        check_positive(max_wait, "max_wait", strict=False)
        check_positive(backoff_base, "backoff_base", strict=False)
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}"
            )
        self.registry_root = Path(registry_root)
        self.num_shards = int(num_shards)
        self.queue_limit = int(queue_limit)
        self.shed_policy = shed_policy
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.metrics = metrics if metrics is not None else obs.metrics()
        self._obs = _GatewayInstruments(self.metrics, self.num_shards)
        self._faults = faults if faults is not None else NULL_FAULTS
        self._design_factory = design_factory
        self._ring = ConsistentHashRing(range(self.num_shards))
        self._lock = threading.Lock()
        self._closed = False
        self._outstanding = 0
        self._inflight: list[GatewayRequest] = []
        self._latency_ewma: Optional[float] = None
        self._shards: dict[int, _Shard] = {}
        for shard_id in range(self.num_shards):
            shard = _Shard(shard_id=shard_id)
            shard.registry = PredictorRegistry(
                self.registry_root, capacity=registry_capacity
            )
            self._shards[shard_id] = shard
        self._events: "queue.Queue" = queue.Queue()
        self._stop_event = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="gateway-supervisor", daemon=True
        )
        for shard in self._shards.values():
            self._spawn_worker(shard)
        self._supervisor.start()

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #

    def submit_async(
        self,
        payload,
        design: Union[Design, str],
        num_steps: int = 200,
        dt: float = 1e-11,
        seed: int = 0,
    ) -> "Future[PredictionResult]":
        """Admit one request; the returned future resolves to its prediction.

        ``payload`` is a vector payload (trace or features) or a scenario
        reference (family name / :class:`ScenarioSpec`, materialised in the
        worker with ``num_steps``/``dt``/``seed``).  Raises
        :class:`GatewayClosed` after shutdown began and
        :class:`GatewayOverloaded` when the admission queue is full under
        the ``reject`` policy.  Thread-safe and non-blocking — safe to call
        from an event loop.
        """
        request = GatewayRequest(
            payload=payload, design=design, num_steps=num_steps, dt=dt, seed=seed
        )
        shed: Optional[GatewayRequest] = None
        with self._lock:
            if self._closed:
                raise GatewayClosed("gateway is closed")
            self._obs.requests.inc()
            if self._outstanding >= self.queue_limit:
                if self.shed_policy == "reject":
                    self._obs.rejected.inc()
                    raise GatewayOverloaded(self._retry_after_locked())
                shed = self._pick_shed_victim_locked()
            self._outstanding += 1
            self._inflight.append(request)
            self._obs.queue_depth.set(self._outstanding)
        request.future.add_done_callback(lambda _: self._request_done(request))
        if shed is not None and shed.fail(
            LoadShedError("shed under overload (shed-oldest policy)")
        ):
            self._obs.shed.inc()
        shard = self._shards[self._ring.assign(request.design_name)]
        shard.inbox.put(request)
        self._obs.shard_depth[shard.shard_id].set(shard.inbox.qsize())
        return request.future

    async def submit(
        self,
        payload,
        design: Union[Design, str],
        num_steps: int = 200,
        dt: float = 1e-11,
        seed: int = 0,
    ) -> PredictionResult:
        """Async counterpart of :meth:`submit_async` (awaits the result)."""
        future = self.submit_async(payload, design, num_steps=num_steps, dt=dt, seed=seed)
        return await asyncio.wrap_future(future)

    def screen(
        self, items: Sequence[tuple], num_steps: int = 200, dt: float = 1e-11, seed: int = 0
    ) -> list[PredictionResult]:
        """Screen ``(payload, design)`` pairs, blocking; results in order.

        Submits everything first so the shards' micro-batchers can fill
        even from a single caller thread, mirroring
        :meth:`ScreeningService.screen`.
        """
        futures = [
            self.submit_async(payload, design, num_steps=num_steps, dt=dt, seed=seed)
            for payload, design in items
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # hot checkpoint swap
    # ------------------------------------------------------------------ #

    def swap_checkpoint(
        self,
        design_name: str,
        predictor: Optional[NoisePredictor] = None,
        persist: bool = True,
    ) -> "Future[str]":
        """Swap one design's checkpoint without dropping in-flight requests.

        The swap is delivered through the owning shard's FIFO inbox and
        applied between micro-batches, quiescing only that shard: requests
        already dispatched (or queued ahead of the swap) finish against the
        old checkpoint; requests behind it are served by the new one.  With
        ``predictor=None`` the resident entry is evicted so the next request
        reloads the on-disk checkpoint (rolled out by an external trainer).
        Returns a future resolving to the new serving fingerprint.
        """
        with self._lock:
            if self._closed:
                raise GatewayClosed("gateway is closed")
        command = SwapCommand(design_name=design_name, predictor=predictor, persist=persist)
        shard = self._shards[self._ring.assign(design_name)]
        shard.inbox.put(command)
        return command.done

    async def swap(
        self,
        design_name: str,
        predictor: Optional[NoisePredictor] = None,
        persist: bool = True,
    ) -> str:
        """Async counterpart of :meth:`swap_checkpoint` (awaits the fingerprint)."""
        return await asyncio.wrap_future(
            self.swap_checkpoint(design_name, predictor, persist=persist)
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def shard_for(self, design_name: str) -> int:
        """The shard id the ring assigns to a design (stable across runs)."""
        return self._ring.assign(design_name)

    def health(self) -> dict:
        """Structured health snapshot of the gateway and every shard.

        Top level: ``accepting`` (admission open), ``outstanding`` (admitted
        and unanswered), ``queue_limit``.  Per shard: ``state`` (``healthy``
        / ``restarting`` / ``stopped``), ``restarts``, ``queue_depth``, and
        the ``resident`` design names of its registry partition (LRU order).
        """
        with self._lock:
            shards = {
                shard.shard_id: {
                    "state": shard.state,
                    "restarts": shard.restarts,
                    "queue_depth": shard.inbox.qsize(),
                    "resident": list(shard.registry.loaded()),
                }
                for shard in self._shards.values()
            }
            return {
                "accepting": not self._closed,
                "outstanding": self._outstanding,
                "queue_limit": self.queue_limit,
                "shards": shards,
            }

    def backoff_history(self, shard_id: int) -> list[float]:
        """Backoff delays (seconds) the supervisor applied for one shard."""
        with self._lock:
            return list(self._shards[shard_id].backoff_history)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: stop admission, then resolve every accepted future.

        With ``drain=True`` the workers finish the backlog first (the
        supervisor keeps restarting crashed workers while the drain runs, so
        retryable requests still complete); ``drain=False`` fails everything
        still waiting with :class:`GatewayClosed` immediately.  Any future
        that is somehow still unresolved once the workers have exited — e.g.
        the drain ``timeout`` elapsed — is failed with
        :class:`GatewayClosed`: a gateway shutdown never leaves a caller
        hanging.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [request for request in self._inflight if not request.done]
        if drain:
            futures_wait([request.future for request in pending], timeout=timeout)
        else:
            for request in pending:
                request.fail(GatewayClosed("gateway closed before the request ran"))
        # Stop the supervisor first so workers are not resurrected mid-join,
        # then stop the workers; the final sweep catches anything stranded
        # by a crash in this window.
        self._stop_event.set()
        self._events.put(STOP)
        self._supervisor.join()
        for shard in self._shards.values():
            shard.inbox.put(STOP)
        for shard in self._shards.values():
            if shard.worker is not None:
                shard.worker.join(timeout=timeout)
            with self._lock:
                shard.state = "stopped"
        leftover_error = GatewayClosed("gateway closed before the request ran")
        for shard in self._shards.values():
            while True:
                try:
                    item = shard.inbox.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, GatewayRequest):
                    item.fail(leftover_error)
                elif isinstance(item, SwapCommand):
                    try:
                        item.done.set_exception(leftover_error)
                    except Exception:  # pragma: no cover - already resolved
                        pass
        for request in pending:
            request.fail(leftover_error)
        _LOG.info("gateway closed (drain=%s)", drain)

    async def aclose(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Async counterpart of :meth:`close` (runs it off the event loop)."""
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.close(drain=drain, timeout=timeout)
        )

    def __enter__(self) -> "ScreeningGateway":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _spawn_worker(self, shard: _Shard) -> None:
        """Start a fresh worker incarnation on the shard's inbox/registry."""
        shard.worker = ShardWorker(
            shard_id=shard.shard_id,
            inbox=shard.inbox,
            registry=shard.registry,
            design_factory=self._design_factory,
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            faults=self._faults,
            instruments=self._obs,
            on_crash=self._on_worker_crash,
            on_healthy=self._on_worker_healthy,
            generation=shard.generation,
        )
        shard.generation += 1
        shard.worker.start()

    def _on_worker_crash(
        self, worker: ShardWorker, error: BaseException, survivors: list
    ) -> None:
        # Runs on the dying worker thread: hand off to the supervisor.
        self._events.put(("crash", worker.shard_id, error, survivors))

    def _on_worker_healthy(self, shard_id: int) -> None:
        # Runs on the worker thread after each successful batch.
        shard = self._shards[shard_id]
        if shard.consecutive_crashes:
            with self._lock:
                shard.consecutive_crashes = 0

    def _supervise(self) -> None:
        """Supervisor loop: requeue crash survivors, restart with backoff."""
        while True:
            event = self._events.get()
            if event is STOP:
                return
            _, shard_id, error, survivors = event
            shard = self._shards[shard_id]
            with self._lock:
                shard.state = "restarting"
                shard.restarts += 1
                shard.consecutive_crashes += 1
                crashes = shard.consecutive_crashes
            self._obs.restarts.inc()
            for request in survivors:
                request.attempts += 1
                if request.attempts > self.max_retries:
                    crashed = WorkerCrashed(
                        f"shard {shard_id} crashed {request.attempts} times "
                        f"while holding this request"
                    )
                    crashed.__cause__ = error
                    if request.fail(crashed):
                        self._obs.failures.inc()
                else:
                    self._obs.retries.inc()
                    shard.inbox.put(request)
            delay = min(self.backoff_cap, self.backoff_base * (2 ** (crashes - 1)))
            with self._lock:
                shard.backoff_history.append(delay)
            _LOG.warning(
                "restarting shard %d in %.3fs after crash #%d: %s",
                shard_id,
                delay,
                crashes,
                error,
            )
            if self._stop_event.wait(delay):
                # Shutdown began during the backoff: the close() sweep fails
                # whatever the dead worker left behind; do not respawn.
                with self._lock:
                    shard.state = "stopped"
                continue
            self._spawn_worker(shard)
            with self._lock:
                shard.state = "healthy"

    def _pick_shed_victim_locked(self) -> Optional[GatewayRequest]:
        """Oldest unanswered, not-yet-dispatched request (lock held).

        Requests a worker already pulled are skipped — shedding them would
        waste a forward pass that is already under way.  When everything
        waiting is dispatched (at most ``num_shards * max_batch`` requests)
        the new request is admitted with a transient overshoot instead.
        """
        for request in self._inflight:
            if not request.done and not request.dispatched:
                return request
        return None

    def _retry_after_locked(self) -> float:
        """Backlog-drain estimate for overload responses (lock held)."""
        per_request = self._latency_ewma if self._latency_ewma else 0.05
        return max(0.01, self._outstanding * per_request / self.num_shards)

    def _request_done(self, request: GatewayRequest) -> None:
        """Done-callback bookkeeping: counts, gauges, latency EWMA."""
        elapsed = time.perf_counter() - request.submitted_at
        failed = (not request.future.cancelled()) and (
            request.future.exception() is not None
        )
        if failed:
            self._obs.latency_failed.observe(elapsed)
        with self._lock:
            self._outstanding -= 1
            self._obs.queue_depth.set(self._outstanding)
            alpha = 0.2
            if not failed:
                if self._latency_ewma is None:
                    self._latency_ewma = elapsed
                else:
                    self._latency_ewma += alpha * (elapsed - self._latency_ewma)
            # Compact the admission-order list lazily from the front; done
            # requests in the middle are skipped by the shed scan anyway.
            while self._inflight and self._inflight[0].done:
                self._inflight.pop(0)
