"""Shard worker: the actor that turns queued requests into predictions.

One :class:`ShardWorker` thread owns one shard of the design space.  It
drains its inbox into micro-batches (``max_batch``/``max_wait``, same
discipline as :class:`~repro.serving.service.ScreeningService`), groups each
batch by design, materialises scenario payloads into traces, and pushes each
group through the shard's :class:`~repro.serving.registry.PredictorRegistry`
in one batched forward pass.  Because the gateway's consistent-hash ring
routes a design to exactly one shard, the registry partition behind this
worker only ever sees its own designs and keeps their checkpoints warm.

Failure containment is layered:

* a failing **checkpoint load** or **forward pass** fails that design
  group's requests (typed error on their futures) and the worker lives on;
* an escaping :class:`BaseException` — including the fault seam's
  :class:`~repro.gateway.faults.WorkerKilled` — is a **crash**: the worker
  hands its unanswered in-hand requests to the supervisor's crash callback
  and exits, leaving the inbox (owned by the gateway) intact for its
  replacement.

The worker never resolves a future twice: every answer goes through
:meth:`GatewayRequest.resolve`/``fail``, so duplicated deliveries and
crash-requeue races collapse to one visible answer per request.
"""

from __future__ import annotations

import threading
import time
from queue import Empty, Queue
from typing import Callable, Optional

from repro.features.extraction import VectorFeatures, extract_vector_features
from repro.gateway.faults import FaultInjector
from repro.gateway.messages import STOP, GatewayRequest, SwapCommand
from repro.pdn.designs import Design
from repro.serving.registry import PredictorRegistry
from repro.sim.waveform import CurrentTrace
from repro.utils import get_logger
from repro.workloads.scenarios import build_scenario_trace

_LOG = get_logger("gateway.worker")

DesignFactory = Callable[[str], Design]
CrashCallback = Callable[["ShardWorker", BaseException, list], None]
HealthyCallback = Callable[[int], None]


class ShardWorker(threading.Thread):
    """One supervised worker thread bound to a shard inbox and registry.

    Parameters
    ----------
    shard_id:
        Ring node this worker serves.
    inbox:
        The shard's FIFO queue of :class:`GatewayRequest`/:class:`SwapCommand`
        messages.  Owned by the gateway — it survives worker crashes, so
        queued requests are never lost with the thread.
    registry:
        The shard's predictor partition.  Also gateway-owned: a restarted
        worker inherits the warm LRU of its crashed predecessor.
    design_factory:
        Rebuilds a :class:`Design` from its name for scenario payloads and
        raw traces submitted by name (cached per worker incarnation).
    max_batch / max_wait:
        Micro-batching bounds, as in the screening service.
    faults:
        Fault-injection seam; hooks run at dequeue, batch, load and swap.
    instruments:
        The gateway's shared metric handles (``_GatewayInstruments``).
    on_crash / on_healthy:
        Supervisor callbacks: crash hands over unanswered in-hand requests;
        healthy fires after each successful batch and resets crash backoff.
    generation:
        Incarnation counter for this shard (0 = first start), used in the
        thread name so crash logs identify the exact incarnation.
    """

    def __init__(
        self,
        shard_id: int,
        inbox: "Queue",
        registry: PredictorRegistry,
        design_factory: DesignFactory,
        max_batch: int,
        max_wait: float,
        faults: FaultInjector,
        instruments,
        on_crash: CrashCallback,
        on_healthy: HealthyCallback,
        generation: int = 0,
    ):
        super().__init__(
            name=f"gateway-shard-{shard_id}-gen{generation}", daemon=True
        )
        self.shard_id = int(shard_id)
        self.generation = int(generation)
        self.inbox = inbox
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._design_factory = design_factory
        self._designs: dict[str, Design] = {}
        self._faults = faults
        self._obs = instruments
        self._on_crash = on_crash
        self._on_healthy = on_healthy

    # ------------------------------------------------------------------ #
    # thread body
    # ------------------------------------------------------------------ #

    def run(self) -> None:
        """Drain the inbox until the stop sentinel; crash to the supervisor."""
        batch: list[GatewayRequest] = []
        commands: list[SwapCommand] = []
        try:
            while True:
                first = self.inbox.get()
                if first is STOP:
                    return
                if isinstance(first, SwapCommand):
                    self._apply_swap(first)
                    continue
                batch, commands, stopping = self._fill_batch(first)
                self._process_batch(batch)
                batch = []
                while commands:
                    self._apply_swap(commands.pop(0))
                if stopping:
                    return
        except BaseException as error:  # noqa: BLE001 - supervised crash path
            survivors = [request for request in batch if not request.done]
            for command in commands:
                # A swap deferred behind the crashed batch must not be lost
                # with the thread; the replacement worker applies it.
                self.inbox.put(command)
            _LOG.warning(
                "shard %d worker (gen %d) crashed with %d request(s) in hand: %s",
                self.shard_id,
                self.generation,
                len(survivors),
                error,
            )
            self._on_crash(self, error, survivors)

    # ------------------------------------------------------------------ #
    # batching
    # ------------------------------------------------------------------ #

    def _fill_batch(self, first: GatewayRequest):
        """Micro-batch starting from ``first``; returns (batch, swaps, stop).

        Swap commands encountered while filling are deferred until after the
        in-hand batch — that *is* the quiesce point: requests dequeued before
        the command keep their old checkpoint, everything behind it sees the
        new one.  A stop sentinel ends filling and is honoured after the
        batch completes (graceful drain processes, never abandons).
        """
        first.dispatched = True
        batch = list(self._faults.on_dequeue(self.shard_id, first))
        commands: list[SwapCommand] = []
        deadline = time.perf_counter() + self.max_wait
        stopping = False
        while len(batch) < self.max_batch:
            timeout = deadline - time.perf_counter()
            try:
                if timeout > 0:
                    item = self.inbox.get(timeout=timeout)
                else:
                    item = self.inbox.get_nowait()
            except Empty:
                break
            if item is STOP:
                stopping = True
                break
            if isinstance(item, SwapCommand):
                commands.append(item)
                break
            item.dispatched = True
            batch.extend(self._faults.on_dequeue(self.shard_id, item))
        return batch, commands, stopping

    def _process_batch(self, batch: list[GatewayRequest]) -> None:
        """Predict one micro-batch, one fused forward pass per design group."""
        live = [request for request in batch if not request.done]
        if not live:
            return
        self._faults.before_batch(self.shard_id, live)
        groups: dict[str, list[GatewayRequest]] = {}
        for request in live:
            groups.setdefault(request.design_name, []).append(request)
        self._obs.batch_size.set(len(live))
        for design_name, requests in groups.items():
            self._process_group(design_name, requests)
        self._obs.shard_depth[self.shard_id].set(self.inbox.qsize())
        self._on_healthy(self.shard_id)

    def _process_group(self, design_name: str, requests: list[GatewayRequest]) -> None:
        """One design's slice of a batch; failures stay inside the group."""
        try:
            self._faults.on_checkpoint_load(self.shard_id, design_name)
            predictor = self.registry.get(design_name)
            features = [self._materialise(request, predictor) for request in requests]
            results = predictor.predict_batch(features, max_batch=self.max_batch)
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            self._obs.failures.inc(len(requests))
            for request in requests:
                request.fail(error)
            _LOG.warning(
                "shard %d batch for design %s failed: %s",
                self.shard_id,
                design_name,
                error,
            )
            return
        finished = time.perf_counter()
        for request, result in zip(requests, results):
            if request.resolve(result):
                self._obs.latency_ok.observe(finished - request.submitted_at)
            else:
                # Duplicate delivery or crash-requeue race: the request was
                # already answered elsewhere; this prediction is dropped.
                self._obs.duplicates_dropped.inc()

    def _materialise(self, request: GatewayRequest, predictor) -> VectorFeatures:
        """Turn any accepted payload into extracted features."""
        payload = request.payload
        if isinstance(payload, VectorFeatures):
            return payload
        if isinstance(payload, CurrentTrace):
            trace = payload
        else:  # scenario family name or ScenarioSpec
            trace = build_scenario_trace(
                payload,
                self._design(request),
                num_steps=request.num_steps,
                dt=request.dt,
                seed=request.seed,
            )
        return extract_vector_features(
            trace,
            self._design(request),
            compression_rate=predictor.compression_rate,
            rate_step=predictor.rate_step,
        )

    def _design(self, request: GatewayRequest) -> Design:
        """The request's design object (factory-built and cached by name)."""
        if isinstance(request.design, Design):
            return request.design
        design = self._designs.get(request.design)
        if design is None:
            design = self._design_factory(request.design)
            self._designs[request.design] = design
        return design

    # ------------------------------------------------------------------ #
    # control messages
    # ------------------------------------------------------------------ #

    def _apply_swap(self, command: SwapCommand) -> None:
        """Apply a hot checkpoint swap at this quiesce point."""
        try:
            self._faults.before_swap(self.shard_id, command.design_name)
            if command.predictor is not None:
                self.registry.register(
                    command.design_name, command.predictor, persist=command.persist
                )
            else:
                self.registry.evict(command.design_name)
            fingerprint = self.registry.get(command.design_name).fingerprint
        except BaseException as error:  # noqa: BLE001 - forwarded to swapper
            try:
                command.done.set_exception(error)
            except Exception:  # pragma: no cover - done future already resolved
                pass
            if not isinstance(error, Exception):
                raise
            return
        self._obs.swaps.inc()
        try:
            command.done.set_result(fingerprint)
        except Exception:  # pragma: no cover - done future already resolved
            pass
        _LOG.info(
            "shard %d swapped checkpoint for %s (fingerprint %s)",
            self.shard_id,
            command.design_name,
            fingerprint[:12],
        )
