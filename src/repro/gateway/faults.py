"""Compatibility shim: the fault-injection seam now lives in :mod:`repro.faults`.

The deterministic :class:`~repro.faults.FaultInjector` started life here as
a gateway-only seam (PR 7); it has since been promoted to the shared
:mod:`repro.faults` package so datagen, training, simulation and eval hook
the same injector.  This module re-exports the gateway-facing names so
existing imports keep working — new code should import from
:mod:`repro.faults` directly.
"""

from __future__ import annotations

from repro.faults import NULL_FAULTS, FaultInjector, WorkerKilled

__all__ = ["FaultInjector", "NULL_FAULTS", "WorkerKilled"]
