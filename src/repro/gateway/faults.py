"""Deterministic fault-injection seam for the gateway.

Production code calls the hooks of a :class:`FaultInjector` at every point
where a real deployment can fail: queue delivery, batch execution,
checkpoint loading, and checkpoint swaps.  The default injector is inert —
every hook is a no-op returning the undisturbed value — so the seam costs
one method call per event.  The concurrency test suite under
``tests/gateway/`` subclasses it to kill workers mid-batch, duplicate or
delay deliveries, and fail checkpoint loads *deterministically* (no sleeps,
no racing signal handlers), then asserts the gateway's invariants: no
request lost, none double-answered, restarts back off, drain resolves every
future.

Hook contract:

* :meth:`FaultInjector.on_dequeue` runs on the worker thread for each
  request pulled from the shard inbox and returns the deliveries to
  process — return the request twice to simulate a duplicated delivery,
  return ``()`` and re-inject later (via the shard inbox) to delay it.
* :meth:`FaultInjector.before_batch` runs once per micro-batch before any
  prediction; raising :class:`WorkerKilled` here simulates a worker crash
  with the batch in hand.
* :meth:`FaultInjector.on_checkpoint_load` runs before a design's predictor
  is fetched; raising simulates checkpoint corruption/IO failure and fails
  only that design group, not the worker.
* :meth:`FaultInjector.before_swap` runs as a shard applies a hot checkpoint
  swap; raising fails the swap future without touching in-flight requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gateway.messages import GatewayRequest


class WorkerKilled(BaseException):
    """Injected worker death.

    Deliberately a :class:`BaseException`: the worker's per-group error
    handling catches :class:`Exception` to keep one bad design from taking
    the shard down, and a *kill* must not be swallowed by that handling —
    it has to unwind the worker thread wherever it is raised, exactly like
    a real crash would.
    """


class FaultInjector:
    """No-op fault hooks; subclass and override to script failures."""

    def on_dequeue(
        self, shard_id: int, request: "GatewayRequest"
    ) -> Sequence["GatewayRequest"]:
        """Deliveries to process for one dequeued request (default: itself)."""
        return (request,)

    def before_batch(self, shard_id: int, requests: Sequence["GatewayRequest"]) -> None:
        """Called with each micro-batch before prediction; raise to crash."""

    def on_checkpoint_load(self, shard_id: int, design_name: str) -> None:
        """Called before a predictor fetch; raise to fail the load."""

    def before_swap(self, shard_id: int, design_name: str) -> None:
        """Called as a shard applies a checkpoint swap; raise to fail it."""


#: Shared inert injector used when no faults are configured.
NULL_FAULTS = FaultInjector()
