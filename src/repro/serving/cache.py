"""Result caching for the screening service.

Sign-off screening traffic is highly repetitive: the same release candidates
are re-validated after every design spin, and scenario suites overlap heavily
between runs.  The cache exploits that by keying each prediction on a
*content hash* of the test vector plus the serving predictor's version
fingerprint — a cache entry can therefore never outlive the model that
produced it, and two byte-identical vectors always share one forward pass.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar, Union

import numpy as np

from repro.core.inference import NoisePredictor
from repro.features.extraction import VectorFeatures
from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive

ValueT = TypeVar("ValueT")

#: Anything the screening service accepts as one unit of work.
ScreeningPayload = Union[CurrentTrace, VectorFeatures]


def trace_content_hash(payload: ScreeningPayload) -> str:
    """Deterministic content hash of a test vector (or extracted features).

    Hashes the raw sample values and the quantities that change the model
    input (``dt`` for traces, the stamp count for features) — *not* the name,
    so renamed copies of the same vector still hit the cache.
    """
    digest = hashlib.sha256()
    if isinstance(payload, CurrentTrace):
        digest.update(b"trace")
        digest.update(repr(payload.currents.shape).encode())
        digest.update(np.ascontiguousarray(payload.currents).tobytes())
        digest.update(repr(float(payload.dt)).encode())
    elif isinstance(payload, VectorFeatures):
        maps = np.asarray(payload.current_maps)
        digest.update(b"features")
        digest.update(repr(maps.shape).encode())
        digest.update(np.ascontiguousarray(maps).tobytes())
    else:
        raise TypeError(
            f"expected CurrentTrace or VectorFeatures, got {type(payload).__name__}"
        )
    return digest.hexdigest()


def result_cache_key(payload: ScreeningPayload, predictor: NoisePredictor) -> str:
    """Cache key combining vector content with the predictor version.

    The fingerprint folds in the predictor's serving dtype, so the same
    checkpoint served at float32 and float64 yields distinct keys — a cached
    low-precision result can never be returned to a full-precision client
    (or vice versa).
    """
    return f"{predictor.fingerprint}:{trace_content_hash(payload)}"


@dataclass
class CacheStats:
    """Hit/miss counters of an :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


class LRUCache(Generic[ValueT]):
    """A small least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int = 1024):
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, ValueT]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[ValueT]:
        """Look up ``key``, refreshing its recency; ``None`` on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: ValueT) -> None:
        """Insert (or refresh) an entry, evicting the oldest beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()
