"""Per-design predictor registry.

One serving process handles *all* reference designs: each design has its own
trained :class:`~repro.core.inference.NoisePredictor` checkpoint on disk, and
the registry loads them on demand, keeps the hottest ones resident, and
evicts least-recently-used predictors once ``capacity`` is exceeded.  Loaded
models are frozen (:meth:`~repro.nn.modules.Module.freeze`) — a served model
never records the autograd graph.

The registry is thread-safe: resident-state mutations happen under an
internal lock, while checkpoint loads run *outside* it so a cold load for
one design never blocks lookups for designs that are already resident.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.inference import NoisePredictor
from repro.nn import kernels
from repro.utils import check_positive, get_logger

_LOG = get_logger("serving.registry")


@dataclass
class RegistryStats:
    """Counters describing registry activity."""

    hits: int = 0
    loads: int = 0
    evictions: int = 0


class PredictorRegistry:
    """Loads and evicts per-design predictor checkpoints.

    Parameters
    ----------
    root:
        Directory holding one ``<design_name>.npz`` checkpoint per design
        (created if missing).
    capacity:
        Maximum number of predictors kept in memory simultaneously.
    dtype:
        Optional serving-precision override (``"float32"``/``"float64"``)
        applied to every checkpoint this registry loads — any checkpoint
        directory can be served at float32 without rewriting checkpoints.
        ``None`` (default) keeps each checkpoint's recorded dtype.
    """

    def __init__(
        self, root: Union[str, Path], capacity: int = 4, dtype: Optional[str] = None
    ):
        check_positive(capacity, "capacity")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self.dtype = kernels.dtype_name(dtype) if dtype is not None else None
        self._loaded: "OrderedDict[str, NoisePredictor]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = RegistryStats()

    # ------------------------------------------------------------------ #
    # locations
    # ------------------------------------------------------------------ #

    def checkpoint_path(self, design_name: str) -> Path:
        """On-disk checkpoint location for one design."""
        if not design_name or "/" in design_name or design_name.startswith("."):
            raise ValueError(f"invalid design name {design_name!r}")
        return self.root / f"{design_name}.npz"

    def available(self) -> tuple[str, ...]:
        """Design names with a checkpoint on disk (sorted).

        Legacy ``<name>.npz.distance.npz`` sidecars living next to old
        checkpoints are not designs and are filtered out.
        """
        return tuple(
            sorted(
                path.stem
                for path in self.root.glob("*.npz")
                if not path.stem.endswith(".distance")
            )
        )

    def loaded(self) -> tuple[str, ...]:
        """Design names currently resident in memory (LRU order, oldest first)."""
        with self._lock:
            return tuple(self._loaded)

    def __contains__(self, design_name: str) -> bool:
        with self._lock:
            if design_name in self._loaded:
                return True
        return self.checkpoint_path(design_name).exists()

    # ------------------------------------------------------------------ #
    # registration / lookup
    # ------------------------------------------------------------------ #

    def register(
        self, design_name: str, predictor: NoisePredictor, persist: bool = True
    ) -> Path:
        """Add a predictor for a design (and by default write its checkpoint).

        Returns the checkpoint path.  Re-registering a design replaces the
        resident predictor, so rolled-out retrains take effect immediately.
        With ``persist=False`` the predictor only lives in memory and is lost
        if LRU capacity evicts it before it is saved.

        The caller's predictor object is served as-is (prediction runs under
        ``no_grad`` regardless); only checkpoints loaded from disk are frozen,
        so registering a mid-training snapshot never breaks the training loop
        still running on the same model object.
        """
        path = self.checkpoint_path(design_name)
        if persist:
            predictor.save(path)
        with self._lock:
            self._loaded[design_name] = predictor
            self._loaded.move_to_end(design_name)
            self._evict_over_capacity()
        _LOG.info("registered predictor for %s (%s)", design_name, path.name)
        return path

    def get(self, design_name: str) -> NoisePredictor:
        """The predictor serving ``design_name``, loading its checkpoint on miss."""
        with self._lock:
            resident = self._loaded.get(design_name)
            if resident is not None:
                self._loaded.move_to_end(design_name)
                self.stats.hits += 1
                return resident
        path = self.checkpoint_path(design_name)
        if not path.exists():
            raise KeyError(
                f"no predictor registered for design {design_name!r}; "
                f"available: {list(self.available())}"
            )
        # Load outside the lock: a slow cold load must not block lookups of
        # already-resident designs.  If two threads race on the same design,
        # the first inserted predictor wins and the duplicate load is dropped.
        predictor = NoisePredictor.load(path, dtype=self.dtype)
        predictor.model.freeze()
        with self._lock:
            resident = self._loaded.get(design_name)
            if resident is not None:
                self.stats.hits += 1
                return resident
            self._loaded[design_name] = predictor
            self.stats.loads += 1
            self._evict_over_capacity()
        _LOG.info("loaded predictor for %s from %s", design_name, path.name)
        return predictor

    def evict(self, design_name: str) -> bool:
        """Drop a resident predictor (its checkpoint stays on disk)."""
        with self._lock:
            if design_name in self._loaded:
                del self._loaded[design_name]
                self.stats.evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every resident predictor."""
        with self._lock:
            self.stats.evictions += len(self._loaded)
            self._loaded.clear()

    def _evict_over_capacity(self) -> None:
        # Caller holds self._lock.
        while len(self._loaded) > self.capacity:
            evicted, _ = self._loaded.popitem(last=False)
            self.stats.evictions += 1
            if not self.checkpoint_path(evicted).exists():
                # Registered with persist=False and never saved: eviction
                # destroys the only copy, so later get() calls will fail.
                _LOG.warning(
                    "evicted predictor for %s has no checkpoint on disk; "
                    "it cannot be reloaded (register with persist=True to keep it)",
                    evicted,
                )
            else:
                _LOG.info("evicted predictor for %s (capacity %d)", evicted, self.capacity)
