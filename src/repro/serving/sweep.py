"""Multi-process scenario sweeps.

``screen_scenarios`` fans a list of named workload scenarios (see
:mod:`repro.workloads.scenarios`) out across a pool of worker processes.
Each worker owns a :class:`~repro.serving.registry.PredictorRegistry` rooted
at the shared checkpoint directory plus a small design cache, so designs and
predictors are built/loaded once per worker rather than once per job.  The
results come back as :class:`~repro.io.results.ExperimentRecord` rows ready
for the standard table/CSV/JSON exporters.

Checkpoints — not live predictor objects — are what crosses the process
boundary, which keeps the jobs picklable and guarantees every worker serves
exactly the bytes that were registered.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.io.results import ExperimentRecord
from repro.pdn.designs import Design, design_from_name
from repro.serving.registry import PredictorRegistry
from repro import obs
from repro.utils import get_logger
from repro.workloads.scenarios import build_scenario_trace
from repro.workloads.specs import ScenarioLike, normalize_scenario

_LOG = get_logger("serving.sweep")

DesignFactory = Callable[[str], Design]


@dataclass(frozen=True)
class ScenarioJob:
    """One (design, scenario) screening task.

    Attributes
    ----------
    design:
        Design name understood by the sweep's design factory (and matching a
        registered checkpoint).
    scenario:
        A family name from :func:`repro.workloads.scenarios.scenario_names`
        or a :class:`~repro.workloads.specs.ScenarioSpec` — parameter
        variants and compositions screen exactly like named scenarios.
    num_steps / dt:
        Trace length and time step handed to the scenario builder.
    seed:
        Seed for the scenario's random choices.
    """

    design: str
    scenario: ScenarioLike
    num_steps: int = 200
    dt: float = 1e-11
    seed: int = 0

    @property
    def scenario_label(self) -> str:
        """Short scenario identifier (family name, or family + spec hash)."""
        return normalize_scenario(self.scenario).label


def default_design_factory(name: str) -> Design:
    """Build a design from its sweep name.

    Delegates to :func:`repro.pdn.designs.design_from_name` (seed 0):
    ``"small"`` (optionally ``"small@<tiles>"``) maps to the unit-test
    design; ``"D1"`` .. ``"D4"`` (optionally ``"D1@<scale>"``) map to the
    reference analogues.
    """
    return design_from_name(name, seed=0)


# Per-worker state, initialised once per process by _worker_init.
_WORKER_REGISTRY: Optional[PredictorRegistry] = None
_WORKER_FACTORY: Optional[DesignFactory] = None
_WORKER_DESIGNS: dict[str, Design] = {}


def _worker_init(registry_root: str, factory: DesignFactory) -> None:
    global _WORKER_REGISTRY, _WORKER_FACTORY
    _WORKER_REGISTRY = PredictorRegistry(registry_root)
    _WORKER_FACTORY = factory
    _WORKER_DESIGNS.clear()


def _run_job(job: ScenarioJob) -> dict:
    """Screen one scenario inside a worker; returns plain record fields."""
    assert _WORKER_REGISTRY is not None and _WORKER_FACTORY is not None
    design = _WORKER_DESIGNS.get(job.design)
    if design is None:
        design = _WORKER_FACTORY(job.design)
        _WORKER_DESIGNS[job.design] = design
    predictor = _WORKER_REGISTRY.get(job.design)
    trace = build_scenario_trace(
        job.scenario, design, num_steps=job.num_steps, dt=job.dt, seed=job.seed
    )
    with obs.get_tracer().span(
        "serving.sweep.job", design=job.design, scenario=job.scenario_label
    ) as predict_span:
        result = predictor.predict_trace(trace, design)
    obs.metrics().histogram("serving.sweep.predict_seconds").observe(predict_span.duration_s)
    obs.flush_shard()
    hotspots = result.hotspot_map(design.spec.hotspot_threshold)
    return {
        "design": job.design,
        "scenario": job.scenario_label,
        "worst_noise_v": result.worst_noise,
        "mean_noise_v": float(np.mean(result.noise_map)),
        "hotspot_fraction": float(np.mean(hotspots)),
        "runtime_s": predict_span.duration_s,
        "worker_pid": os.getpid(),
    }


def screen_scenarios(
    jobs: Sequence[ScenarioJob],
    registry_root: Union[str, Path],
    design_factory: DesignFactory = default_design_factory,
    num_workers: Optional[int] = None,
    experiment: str = "serving_sweep",
) -> list[ExperimentRecord]:
    """Screen every job, fanned out across worker processes.

    Parameters
    ----------
    jobs:
        The (design, scenario) tasks; job order is preserved in the output.
    registry_root:
        Directory of per-design checkpoints (see
        :meth:`PredictorRegistry.register`); every design referenced by a job
        must have a checkpoint there.
    design_factory:
        Top-level callable rebuilding a design from its name inside each
        worker (must be importable, i.e. picklable by reference).
    num_workers:
        Process count; ``0`` runs everything inline in this process (useful
        for tests and debugging), ``None`` picks ``min(len(jobs), cpu_count)``.
        When the platform refuses to spawn processes the sweep degrades to
        inline execution rather than failing.
    experiment:
        Experiment tag stamped on every record.
    """
    if not jobs:
        return []
    registry_root = str(registry_root)
    if num_workers is None:
        num_workers = min(len(jobs), os.cpu_count() or 1)

    rows: list[dict]
    if num_workers and num_workers > 0:
        try:
            pool = ProcessPoolExecutor(
                max_workers=num_workers,
                initializer=_worker_init,
                initargs=(registry_root, design_factory),
            )
        except (OSError, PermissionError, NotImplementedError) as error:
            _LOG.warning("cannot create process pool (%s); running sweep inline", error)
            rows = _run_inline(jobs, registry_root, design_factory)
        else:
            with pool:
                try:
                    rows = list(pool.map(_run_job, jobs))
                except (BrokenProcessPool, pickle.PicklingError) as error:
                    # Worker startup/transport failure, not a job failure —
                    # job exceptions (bad checkpoint, unknown scenario, ...)
                    # propagate unchanged instead of re-running inline.
                    _LOG.warning(
                        "process pool broke (%s); running sweep inline", error
                    )
                    rows = _run_inline(jobs, registry_root, design_factory)
    else:
        rows = _run_inline(jobs, registry_root, design_factory)

    records = []
    for row in rows:
        label = f"{row['design']}:{row['scenario']}"
        records.append(ExperimentRecord(experiment=experiment, label=label, values=row))
    return records


def _run_inline(
    jobs: Sequence[ScenarioJob], registry_root: str, design_factory: DesignFactory
) -> list[dict]:
    """Run the sweep in-process (no pool)."""
    _worker_init(registry_root, design_factory)
    return [_run_job(job) for job in jobs]
