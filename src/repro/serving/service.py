"""The screening service: micro-batched, cached, multi-design inference.

:class:`ScreeningService` is the serving front-end of the repository.  Callers
submit test vectors (raw :class:`~repro.sim.waveform.CurrentTrace` objects or
pre-extracted :class:`~repro.features.extraction.VectorFeatures`) against a
design name; a background worker drains the request queue into micro-batches
(up to ``max_batch`` requests, waiting at most ``max_wait`` seconds for the
batch to fill), groups them by design, and runs each group through the
registry's predictor in a single batched forward pass.

Three layers keep redundant work off the model:

1. an LRU **result cache** keyed by vector content + predictor fingerprint,
2. **in-flight coalescing** — concurrent submissions of the same vector share
   one forward pass, and
3. **micro-batching** itself, which amortises per-call overhead and reduces
   the shared distance map once per group instead of once per vector.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from repro import obs
from repro.core.inference import NoisePredictor, PredictionResult
from repro.features.extraction import VectorFeatures, extract_vector_features
from repro.obs.metrics import MetricsRegistry
from repro.pdn.designs import Design
from repro.serving.cache import LRUCache, ScreeningPayload, trace_content_hash
from repro.serving.registry import PredictorRegistry
from repro.utils import check_positive, get_logger

_LOG = get_logger("serving.service")


class ServiceClosed(RuntimeError):
    """The service shut down before (or while) a request could be answered.

    Raised synchronously by :meth:`ScreeningService.submit_async` once the
    service is closed, and set on every future that was still queued when
    the worker exited — a caller blocked on ``future.result()`` therefore
    always gets an answer or this error, never a hang.  Subclasses
    :class:`RuntimeError` so pre-existing ``except RuntimeError`` callers
    keep working.
    """


@dataclass
class ScreeningStats:
    """Aggregate counters of a :class:`ScreeningService`."""

    requests: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    model_batches: int = 0
    batched_vectors: int = 0
    max_batch_observed: int = 0
    failures: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the result cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average number of vectors per model forward pass."""
        return self.batched_vectors / self.model_batches if self.model_batches else 0.0


@dataclass
class _Request:
    """One queued unit of work.

    ``submitted_at`` is the submission timestamp captured at the top of
    :meth:`ScreeningService.submit_async` — the single clock every latency
    sample is measured from, regardless of which path (cache hit, coalesce,
    batch) eventually answers the request.
    """

    payload: ScreeningPayload
    design: Union[Design, str]
    key: str
    content_hash: str
    future: "Future[PredictionResult]"
    submitted_at: float = field(default_factory=time.perf_counter)

    @property
    def design_name(self) -> str:
        return self.design if isinstance(self.design, str) else self.design.name


_SENTINEL = object()


def _safe_resolve(
    future: "Future[PredictionResult]",
    result: Optional[PredictionResult] = None,
    error: Optional[BaseException] = None,
) -> None:
    """Resolve a future, tolerating callers that cancelled it meanwhile."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


def _derived_future(
    primary: "Future[PredictionResult]", name: str
) -> "Future[PredictionResult]":
    """A follower future resolving to a private copy of ``primary``'s result."""
    derived: "Future[PredictionResult]" = Future()

    def _relay(source: "Future[PredictionResult]") -> None:
        if source.cancelled():
            derived.cancel()
            return
        exception = source.exception()
        if exception is not None:
            _safe_resolve(derived, error=exception)
            return
        result = source.result()
        _safe_resolve(
            derived, result=replace(result, noise_map=result.noise_map.copy(), name=name)
        )

    primary.add_done_callback(_relay)
    return derived


class ScreeningService:
    """Batched, cached worst-case noise screening across designs.

    Parameters
    ----------
    registry:
        Source of per-design predictors.
    max_batch:
        Maximum number of requests fused into one forward pass.
    max_wait:
        Seconds the micro-batcher waits for a batch to fill once the first
        request arrived.  Keep this at a couple of milliseconds: large enough
        to fuse concurrent submissions, small enough to be invisible next to
        a forward pass.
    cache_size:
        Capacity of the LRU result cache (entries).
    latency_window:
        Number of recent per-request latencies retained for reporting.
    metrics:
        Metrics registry the service reports into; defaults to the
        process-global :func:`repro.obs.metrics` registry (a no-op registry
        when observability is disabled).  Pass a private live
        :class:`~repro.obs.metrics.MetricsRegistry` to collect latency
        histograms regardless of the global toggle — the evaluation
        protocol does exactly that.
    """

    def __init__(
        self,
        registry: PredictorRegistry,
        max_batch: int = 16,
        max_wait: float = 2e-3,
        cache_size: int = 1024,
        latency_window: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ):
        check_positive(max_batch, "max_batch")
        check_positive(max_wait, "max_wait", strict=False)
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.cache: LRUCache[PredictionResult] = LRUCache(cache_size)
        self.stats = ScreeningStats()
        # Instrument handles are resolved once here so the hot paths pay one
        # bound-method call each; with a disabled registry they are shared
        # no-op objects (gated by benchmarks/bench_obs.py).
        self.metrics = metrics if metrics is not None else obs.metrics()
        self._m_requests = self.metrics.counter("serving.requests")
        self._m_cache_hits = self.metrics.counter("serving.cache_hits")
        self._m_coalesced = self.metrics.counter("serving.coalesced")
        self._m_failures = self.metrics.counter("serving.failures")
        self._m_model_batches = self.metrics.counter("serving.model_batches")
        self._m_batched_vectors = self.metrics.counter("serving.batched_vectors")
        self._m_queue_depth = self.metrics.gauge("serving.queue_depth")
        self._m_batch_size = self.metrics.gauge("serving.batch_size")
        self._m_latency = {
            path: self.metrics.histogram(f"serving.request_latency.{path}")
            for path in ("cache_hit", "coalesced", "batched")
        }
        self._queue: "queue.Queue" = queue.Queue()
        self._pending: dict[str, "Future[PredictionResult]"] = {}
        # Guards cache/pending/stats/latencies and the closed flag.  The
        # registry synchronises itself (and performs cold checkpoint loads
        # outside its own lock), so registry access never happens under this
        # lock and a cold load for one design cannot stall cache hits for
        # already-resident designs.
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self._closed = False
        self._abandon = False
        self._worker = threading.Thread(
            target=self._run_worker, name="screening-service", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #

    def submit(self, payload: ScreeningPayload, design: Union[Design, str]) -> PredictionResult:
        """Screen one vector synchronously (blocks until the result is ready)."""
        return self.submit_async(payload, design).result()

    def submit_async(
        self, payload: ScreeningPayload, design: Union[Design, str]
    ) -> "Future[PredictionResult]":
        """Enqueue one vector; the returned future resolves to its prediction.

        ``design`` may be the :class:`Design` object (required when
        ``payload`` is a raw trace, which still needs tiling) or just the
        design name (sufficient for pre-extracted features).
        """
        design_name = design if isinstance(design, str) else design.name
        if not isinstance(payload, VectorFeatures) and isinstance(design, str):
            raise TypeError(
                "raw traces need the Design object for tiling; pass pre-extracted "
                "VectorFeatures when only the design name is available"
            )
        predictor = self._get_predictor(design_name)
        content_hash = trace_content_hash(payload)
        key = f"{predictor.fingerprint}:{content_hash}"
        started = time.perf_counter()

        coalesce_onto: Optional["Future[PredictionResult]"] = None
        with self._lock:
            # Checked under the lock, and the request is enqueued under the
            # same lock: a concurrent close() either rejects this submission
            # or places its shutdown sentinel behind it, so every accepted
            # request is drained before the worker exits.
            if self._closed:
                raise ServiceClosed("service is closed")
            self.stats.requests += 1
            self._m_requests.inc()
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                self._m_cache_hits.inc()
                future: "Future[PredictionResult]" = Future()
                # Fresh map copy (callers may mutate their result) and the
                # *submitter's* vector name — the key ignores names, so the
                # cached entry may stem from a differently-named twin.
                future.set_result(
                    replace(
                        cached,
                        noise_map=cached.noise_map.copy(),
                        runtime_seconds=time.perf_counter() - started,
                        name=getattr(payload, "name", ""),
                    )
                )
                elapsed = time.perf_counter() - started
                self._latencies.append(elapsed)
                self._m_latency["cache_hit"].observe(elapsed)
                return future
            in_flight = self._pending.get(key)
            if in_flight is not None and not in_flight.done():
                # Coalesce onto the in-flight request; each coalesced caller
                # gets its own derived future with a private map copy and its
                # own vector name — sharing the primary result object would
                # let one caller's mutation corrupt the other's.  A pending
                # future that is already *done* here is stale: cancelled by
                # its caller, or resolved with an error by a batch-worker
                # failure that leaked the entry.  Coalescing onto it would
                # hand new submitters an old failure (or a dead future) with
                # no fresh attempt, so the fresh request below simply
                # replaces it in the pending map.
                self.stats.coalesced += 1
                self._m_coalesced.inc()
                coalesce_onto = in_flight
            else:
                future = Future()
                self._pending[key] = future
                self._queue.put(
                    _Request(
                        payload=payload,
                        design=design,
                        key=key,
                        content_hash=content_hash,
                        future=future,
                        submitted_at=started,
                    )
                )
                self._m_queue_depth.set(self._queue.qsize())
        if coalesce_onto is not None:
            # Built OUTSIDE the lock: if the primary is already done, these
            # done-callbacks run inline right here, and _record_latency takes
            # the (non-reentrant) service lock.  In the rare window where the
            # primary was cancelled after the check above, the cancellation
            # propagates to this caller as well.
            derived = _derived_future(coalesce_onto, getattr(payload, "name", ""))
            derived.add_done_callback(lambda _: self._record_latency(started, "coalesced"))
            return derived
        return future

    def screen(
        self, payloads: Sequence[ScreeningPayload], design: Union[Design, str]
    ) -> list[PredictionResult]:
        """Screen many vectors of one design; results come back in input order.

        Submitting everything before waiting lets the micro-batcher fill its
        batches even with a single caller thread.
        """
        futures = [self.submit_async(payload, design) for payload in payloads]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    def latencies(self) -> list[float]:
        """Recent per-request latencies in seconds (submission to result).

        All three answer paths (cache hit, coalesce, batch) measure from the
        same submission timestamp, so samples are comparable; the per-path
        split lives in the ``serving.request_latency.*`` histograms of
        :attr:`metrics`.
        """
        with self._lock:
            return list(self._latencies)

    def _record_latency(self, started: float, path: str) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            self._latencies.append(elapsed)
            self._m_latency[path].observe(elapsed)

    def close(self, drain: bool = True) -> None:
        """Stop the worker, resolving every accepted future before returning.

        With ``drain=True`` (the default) requests still queued at shutdown
        are processed normally before the worker exits.  With ``drain=False``
        they are rejected immediately with :class:`ServiceClosed` instead of
        paying for their forward passes.  Either way, no accepted future is
        ever abandoned: anything left unresolved once the worker has exited —
        including requests stranded by a crashed worker thread — is rejected
        with :class:`ServiceClosed` so blocked callers wake up.  Idempotent.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            if not drain:
                self._abandon = True
        if not already_closed:
            self._queue.put(_SENTINEL)
        self._worker.join()
        self._flush_unresolved(ServiceClosed("service closed before the request ran"))

    def __enter__(self) -> "ScreeningService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # worker internals
    # ------------------------------------------------------------------ #

    def _get_predictor(self, design_name: str) -> NoisePredictor:
        return self.registry.get(design_name)

    def _run_worker(self) -> None:
        # The worker must never die with unresolved futures behind it: a
        # pending-map entry whose future will never resolve makes every later
        # identical submission coalesce onto a dead future.  Batch failures —
        # including BaseExceptions a fault-injecting test or interpreter
        # shutdown may raise — therefore fail the batch's futures before the
        # (possibly fatal) error propagates, and the ``finally`` sweep below
        # marks the service closed and rejects whatever is still queued.
        try:
            while True:
                first = self._queue.get()
                if first is _SENTINEL:
                    break
                batch = [first]
                deadline = time.perf_counter() + self.max_wait
                while len(batch) < self.max_batch:
                    timeout = deadline - time.perf_counter()
                    try:
                        item = self._queue.get(timeout=max(timeout, 0.0)) if timeout > 0 else self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if item is _SENTINEL:
                        self._queue.put(_SENTINEL)
                        break
                    batch.append(item)
                if self._abandon:
                    self._fail_batch(batch, ServiceClosed("service closed before the request ran"))
                    continue
                try:
                    self._process_batch(batch)
                except BaseException as error:
                    self._fail_batch(batch, error)
                    raise
        finally:
            with self._lock:
                self._closed = True
            self._flush_unresolved(
                ServiceClosed("service worker exited before the request ran")
            )

    def _fail_batch(self, batch: list, error: BaseException) -> None:
        """Fail every request of a batch (crash path; keeps the maps clean)."""
        requests = [
            item for item in batch if item is not _SENTINEL and not item.future.done()
        ]
        with self._lock:
            self.stats.failures += len(requests)
            self._m_failures.inc(len(requests))
            for request in requests:
                self._pending.pop(request.key, None)
        for request in requests:
            _safe_resolve(request.future, error=error)

    def _flush_unresolved(self, error: BaseException) -> None:
        """Reject queued requests and stale pending futures after worker exit.

        Only runs once the worker thread is gone (join or crash), so nothing
        races the queue drain.  Futures already resolved are untouched.
        """
        leftovers: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SENTINEL:
                leftovers.append(item)
        with self._lock:
            stale = [future for future in self._pending.values() if not future.done()]
            self._pending.clear()
        for request in leftovers:
            _safe_resolve(request.future, error=error)
        for future in stale:
            _safe_resolve(future, error=error)

    def _process_batch(self, batch: list[_Request]) -> None:
        groups: dict[str, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.design_name, []).append(request)
        for design_name, requests in groups.items():
            try:
                self._process_group(design_name, requests)
            except Exception as error:  # noqa: BLE001 - forwarded to callers
                with self._lock:
                    self.stats.failures += len(requests)
                    self._m_failures.inc(len(requests))
                    for request in requests:
                        self._pending.pop(request.key, None)
                for request in requests:
                    _safe_resolve(request.future, error=error)
                _LOG.warning("batch for design %s failed: %s", design_name, error)

    def _process_group(self, design_name: str, requests: list[_Request]) -> None:
        predictor = self._get_predictor(design_name)
        features: list[VectorFeatures] = []
        for request in requests:
            if isinstance(request.payload, VectorFeatures):
                features.append(request.payload)
            else:
                features.append(
                    extract_vector_features(
                        request.payload,
                        request.design,
                        compression_rate=predictor.compression_rate,
                        rate_step=predictor.rate_step,
                    )
                )
        results = predictor.predict_batch(features, max_batch=self.max_batch)
        finished = time.perf_counter()
        with self._lock:
            self.stats.model_batches += 1
            self.stats.batched_vectors += len(requests)
            self.stats.max_batch_observed = max(self.stats.max_batch_observed, len(requests))
            self._m_model_batches.inc()
            self._m_batched_vectors.inc(len(requests))
            self._m_batch_size.set(len(requests))
            batched_latency = self._m_latency["batched"]
            for request, result in zip(requests, results):
                # Store a private copy so a caller mutating its returned map
                # cannot poison later cache hits.  The storage key uses the
                # fingerprint of the predictor that actually ran (the registry
                # entry may have been hot-swapped since submission) — a cache
                # entry must never outlive the model that produced it.
                store_key = f"{predictor.fingerprint}:{request.content_hash}"
                self.cache.put(store_key, replace(result, noise_map=result.noise_map.copy()))
                self._pending.pop(request.key, None)
                elapsed = finished - request.submitted_at
                self._latencies.append(elapsed)
                batched_latency.observe(elapsed)
        for request, result in zip(requests, results):
            # A caller may have cancelled its pending future (e.g. after a
            # result(timeout) expiry); that must not derail the rest of the
            # group, whose predictions are valid and already cached.
            _safe_resolve(request.future, result=result)
