"""Serving layer: batched, cached, multi-design noise screening at scale.

The trained CNN replaces the transient simulator precisely because it is
orders of magnitude faster — this subpackage is where that speed is turned
into *throughput*.  It provides:

* :class:`~repro.serving.registry.PredictorRegistry` — per-design predictor
  checkpoints with LRU residency, so one process serves every design;
* :class:`~repro.serving.service.ScreeningService` — a micro-batching
  front-end with an LRU result cache and in-flight coalescing;
* :func:`~repro.serving.sweep.screen_scenarios` — a worker-pool sweep that
  fans workload scenarios across processes and aggregates
  :class:`~repro.io.results.ExperimentRecord` rows.

See ``DESIGN.md`` for how the pieces fit together and
``benchmarks/bench_serving.py`` for measured throughput.
"""

from repro.serving.cache import (
    CacheStats,
    LRUCache,
    result_cache_key,
    trace_content_hash,
)
from repro.serving.registry import PredictorRegistry, RegistryStats
from repro.serving.service import ScreeningService, ScreeningStats, ServiceClosed
from repro.serving.sweep import (
    ScenarioJob,
    default_design_factory,
    screen_scenarios,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "result_cache_key",
    "trace_content_hash",
    "PredictorRegistry",
    "RegistryStats",
    "ScreeningService",
    "ScreeningStats",
    "ServiceClosed",
    "ScenarioJob",
    "default_design_factory",
    "screen_scenarios",
]
