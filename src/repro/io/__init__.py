"""Result records, export helpers, atomic writes, and text map renderings."""

from repro.io.atomic import atomic_replace, atomic_write_bytes, atomic_write_text
from repro.io.results import (
    ExperimentRecord,
    ascii_heatmap,
    ascii_histogram,
    format_table,
    latency_throughput_columns,
    read_json,
    write_csv,
    write_json,
)

__all__ = [
    "atomic_replace",
    "atomic_write_bytes",
    "atomic_write_text",
    "ExperimentRecord",
    "ascii_heatmap",
    "ascii_histogram",
    "format_table",
    "latency_throughput_columns",
    "read_json",
    "write_csv",
    "write_json",
]
