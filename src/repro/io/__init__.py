"""Result records, export helpers, and text renderings of maps/figures."""

from repro.io.results import (
    ExperimentRecord,
    ascii_heatmap,
    ascii_histogram,
    format_table,
    latency_throughput_columns,
    read_json,
    write_csv,
    write_json,
)

__all__ = [
    "ExperimentRecord",
    "ascii_heatmap",
    "ascii_histogram",
    "format_table",
    "latency_throughput_columns",
    "read_json",
    "write_csv",
    "write_json",
]
