"""Result records and export helpers for the benchmark harness.

Every benchmark regenerating a table or figure of the paper produces an
:class:`ExperimentRecord`; the helpers here render those records as aligned
text tables (what the benchmark prints), CSV, JSON, or an ASCII heat map for
the figure-style outputs, so results can be inspected without matplotlib.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.io.atomic import atomic_write_text


@dataclass
class ExperimentRecord:
    """One row of a reproduced table (or one series point of a figure).

    Attributes
    ----------
    experiment:
        Identifier such as ``"table2"`` or ``"fig6"``.
    label:
        Row label, e.g. the design name or a sweep value.
    values:
        Ordered mapping of column name to value.
    """

    experiment: str
    label: str
    values: dict = field(default_factory=dict)

    def as_flat_dict(self) -> dict:
        """Single-level dictionary including the identifying fields."""
        flat = {"experiment": self.experiment, "label": self.label}
        flat.update(self.values)
        return flat


def format_table(records: Sequence[ExperimentRecord], title: Optional[str] = None) -> str:
    """Render records as an aligned text table (all records share columns)."""
    if not records:
        return "(no records)"
    value_columns: list[str] = []
    for record in records:
        for key in record.values.keys():
            if key not in value_columns:
                value_columns.append(key)
    columns = ["label"] + value_columns
    rows = []
    for record in records:
        row = [record.label] + [_format_value(record.values.get(col)) for col in columns[1:]]
        rows.append(row)
    widths = [max(len(col), *(len(row[i]) for row in rows)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_value(value) -> str:
    """Human-friendly formatting of a table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def write_csv(records: Sequence[ExperimentRecord], path: Union[str, Path]) -> None:
    """Write records to a CSV file atomically (one column per value key).

    Records are allowed to carry different value keys (e.g. solver-specific
    diagnostics); the header is the union of all keys and missing cells are
    left empty.
    """
    if not records:
        raise ValueError("no records to write")
    fieldnames: list[str] = []
    for record in records:
        for key in record.as_flat_dict().keys():
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for record in records:
        writer.writerow(record.as_flat_dict())
    atomic_write_text(path, buffer.getvalue())


def write_json(records: Sequence[ExperimentRecord], path: Union[str, Path]) -> None:
    """Write records to a JSON file atomically."""
    payload = [record.as_flat_dict() for record in records]
    atomic_write_text(path, json.dumps(payload, indent=2, default=_json_default))


def _json_default(value):
    """JSON encoder fallback for numpy scalars/arrays."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value)!r}")


def read_json(path: Union[str, Path]) -> list[ExperimentRecord]:
    """Read records previously written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    records = []
    for entry in payload:
        experiment = entry.pop("experiment")
        label = entry.pop("label")
        records.append(ExperimentRecord(experiment=experiment, label=label, values=entry))
    return records


def latency_throughput_columns(
    latencies_seconds,
    total_seconds: Optional[float] = None,
    vectors: Optional[int] = None,
) -> dict:
    """Standard throughput/latency columns for runtime tables.

    Parameters
    ----------
    latencies_seconds:
        Per-item wall-clock latencies in seconds — either a raw sequence of
        floats, or a :class:`repro.obs.metrics.LatencyHistogram` whose
        bucket counts already aggregate the samples (the serving stack's
        ``serving.request_latency.*`` instruments).  Percentiles from a
        histogram are interpolated within its buckets rather than re-sorted
        from raw lists.
    total_seconds:
        Wall-clock span of the whole run; defaults to the sum of the
        latencies (correct for sequential execution, pass the real span for
        batched/concurrent runs).
    vectors:
        Number of items processed; defaults to the sample count.

    Returns
    -------
    Mapping with ``p50_latency_ms``, ``p95_latency_ms``, ``p99_latency_ms``
    and ``vectors_per_sec`` keys, ready to merge into an
    :class:`ExperimentRecord`'s values.
    """
    if hasattr(latencies_seconds, "percentile") and hasattr(latencies_seconds, "total"):
        histogram = latencies_seconds
        if not histogram.count:
            raise ValueError("at least one latency measurement is required")
        span = float(histogram.total) if total_seconds is None else float(total_seconds)
        count = int(histogram.count) if vectors is None else int(vectors)
        p50 = float(histogram.percentile(50.0))
        p95 = float(histogram.percentile(95.0))
        p99 = float(histogram.percentile(99.0))
    else:
        latencies = np.asarray(latencies_seconds, dtype=float).ravel()
        if latencies.size == 0:
            raise ValueError("at least one latency measurement is required")
        if np.any(latencies < 0):
            raise ValueError("latencies must be non-negative")
        span = float(np.sum(latencies)) if total_seconds is None else float(total_seconds)
        count = int(latencies.size) if vectors is None else int(vectors)
        p50 = float(np.percentile(latencies, 50))
        p95 = float(np.percentile(latencies, 95))
        p99 = float(np.percentile(latencies, 99))
    return {
        "p50_latency_ms": p50 * 1e3,
        "p95_latency_ms": p95 * 1e3,
        "p99_latency_ms": p99 * 1e3,
        "vectors_per_sec": float(count / span) if span > 0 else float("inf"),
    }


def ascii_heatmap(
    values: np.ndarray,
    title: str = "",
    width: int = 60,
    characters: str = " .:-=+*#%@",
) -> str:
    """Render a 2-D map as an ASCII heat map (figure stand-in without matplotlib).

    The map is downsampled to at most ``width`` columns; rows are downsampled
    proportionally so the aspect ratio is roughly preserved in a terminal.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D map, got shape {values.shape}")
    rows, cols = values.shape
    col_step = max(1, int(np.ceil(cols / width)))
    row_step = max(1, int(np.ceil(rows / (width / 2))))
    sampled = values[::row_step, ::col_step]
    low, high = float(sampled.min()), float(sampled.max())
    span = high - low if high > low else 1.0
    normalized = (sampled - low) / span
    indices = np.clip((normalized * (len(characters) - 1)).round().astype(int), 0, len(characters) - 1)
    lines = []
    if title:
        lines.append(f"{title}  [min={low:.4g}, max={high:.4g}]")
    for row in indices:
        lines.append("".join(characters[i] for i in row))
    return "\n".join(lines)


def ascii_histogram(
    values: np.ndarray,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a histogram as ASCII bars (used for Fig. 5(a))."""
    values = np.asarray(values, dtype=float).ravel()
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.size and counts.max() > 0 else 1
    lines = []
    if title:
        lines.append(title)
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{low:10.4g} - {high:10.4g} | {bar} {count}")
    return "\n".join(lines)
