"""Atomic write-then-rename: the one durability primitive every artefact uses.

Every resumable artefact in the repository — corpus manifests and shards,
evaluation reports, sweep manifests, golden baselines, observability run
reports, training checkpoints — must never be observable in a torn state:
a reader sees either the previous complete version or the new complete
version, and a writer killed at *any* instruction leaves at most a stray
``*.tmp-<pid>`` file behind.  Historically each layer carried its own copy
of the temp-file + ``os.replace`` dance; this module is the single shared
implementation, hardened with ``fsync`` so a renamed artefact also survives
power loss, not just process death.

The pattern::

    with atomic_replace(path, suffix=".npz") as temporary:
        heavy_writer(temporary)          # may crash; target is untouched

    atomic_write_text(path, "payload")   # the common text-file case

``atomic_replace`` yields a temporary path *in the target's directory* (so
the final ``os.replace`` is a same-filesystem atomic rename), fsyncs the
written file, renames it over the target, and fsyncs the directory entry.
On any exception the temporary is deleted and the target left untouched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_replace", "atomic_write_bytes", "atomic_write_text"]


def _fsync_path(path: Path) -> None:
    """Best-effort fsync of a file or directory by path.

    Filesystems that refuse directory fsync (or files that vanished in a
    race) must not fail the write — durability here is defence in depth on
    top of the atomic rename, not a correctness requirement.
    """
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


@contextmanager
def atomic_replace(path: Union[str, Path], suffix: str = "") -> Iterator[Path]:
    """Yield a temporary path that atomically replaces ``path`` on success.

    Parameters
    ----------
    path:
        The target file.  Its parent directory is created on demand.
    suffix:
        Extension the temporary file must keep (e.g. ``".npz"`` so writers
        that append their own extension — ``numpy.savez`` — write exactly
        the yielded path).

    Yields
    ------
    The temporary path, named ``<target>.tmp-<pid><suffix>`` in the target's
    directory.  The caller writes it; on normal exit it is fsynced and
    renamed over the target (whose directory entry is then fsynced too).
    On an exception the temporary is removed and the target is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(f"{path.name}.tmp-{os.getpid()}{suffix}")
    try:
        yield temporary
        _fsync_path(temporary)
        os.replace(temporary, path)
        _fsync_path(path.parent)
    except BaseException:
        temporary.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (see :func:`atomic_replace`)."""
    with atomic_replace(path) as temporary:
        temporary.write_bytes(data)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (see :func:`atomic_replace`).

    The write convention every resumable artefact in the repository follows
    (corpus manifests, evaluation reports, sweep manifests, baselines,
    observability run reports): a reader can never observe a torn file, and
    a killed writer leaves only a stray ``*.tmp-<pid>`` behind.
    """
    atomic_write_bytes(path, text.encode("utf-8"))
