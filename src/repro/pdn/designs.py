"""Design specifications and reference designs D1-D4.

The paper evaluates four proprietary commercial PDN designs whose
characteristics are listed in its Table 1 (0.58M-4.4M electrical nodes,
2.5k-810k current loads, 50x50 to 180x180 tile grids).  We cannot obtain
those designs, so this module provides a parametric generator that produces
synthetic analogues with the same *structure*: multi-layer on-die grid,
flip-chip bump array, clustered switching loads, and a package macro-model.

:func:`reference_design` exposes analogues named ``"D1"`` .. ``"D4"`` whose
tile grids match the paper and whose electrical parameters are chosen so the
worst-case dynamic noise lands in the paper's reported range (~0.09-0.13 V at
Vdd = 1 V).  A ``scale`` argument shrinks both the tile grid and the
electrical mesh for fast test/benchmark runs; the full-size configuration is
just ``scale=1.0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.pdn.geometry import DieArea, TileGrid, jittered_bump_array
from repro.pdn.grid import (
    GridLayer,
    PowerGrid,
    build_power_grid,
    load_tile_indices,
    node_tile_indices,
)
from repro.pdn.loads import LoadPlacement, generate_load_placement
from repro.pdn.package import PackageModel
from repro.pdn.stamps import MNASystem, build_mna
from repro.utils import check_positive, get_logger
from repro.utils.random import RandomState, ensure_rng

_LOG = get_logger("pdn.designs")


@dataclass(frozen=True)
class LayerSpec:
    """Mesh density and sheet resistance of one metal layer (bottom to top)."""

    nx: int
    ny: int
    sheet_resistance: float
    direction: str = "both"
    name: str = ""


@dataclass(frozen=True)
class DesignSpec:
    """Full parameter set describing one synthetic PDN design.

    The defaults produce a small but electrically sensible design; the
    reference designs override size-related fields.  All lengths in um,
    resistances in ohm, capacitances in F, currents in A.
    """

    name: str = "custom"
    die_width: float = 2000.0
    die_height: float = 2000.0
    tile_rows: int = 32
    tile_cols: int = 32
    layers: tuple[LayerSpec, ...] = (
        LayerSpec(nx=64, ny=64, sheet_resistance=0.005, name="M1"),
        LayerSpec(nx=32, ny=32, sheet_resistance=0.002, name="M5"),
        LayerSpec(nx=16, ny=16, sheet_resistance=0.001, name="M9"),
    )
    bump_rows: int = 8
    bump_cols: int = 8
    bump_jitter: float = 0.1
    num_loads: int = 600
    total_current: float = 12.0
    num_clusters: int = 4
    cluster_fraction: float = 0.5
    via_resistance: float = 0.5
    vias_per_connection: int = 4
    decap_per_area: float = 3e-15
    load_decap: float = 2e-14
    package: PackageModel = field(default_factory=PackageModel)
    vdd: float = 1.0
    hotspot_threshold_fraction: float = 0.10

    def __post_init__(self) -> None:
        check_positive(self.die_width, "die_width")
        check_positive(self.die_height, "die_height")
        check_positive(self.total_current, "total_current")
        check_positive(self.vdd, "vdd")
        if self.tile_rows < 1 or self.tile_cols < 1:
            raise ValueError("tile grid must be at least 1x1")
        if not self.layers:
            raise ValueError("at least one metal layer is required")

    @property
    def tile_shape(self) -> tuple[int, int]:
        """Tile-map shape ``(m, n)``."""
        return (self.tile_rows, self.tile_cols)

    @property
    def hotspot_threshold(self) -> float:
        """Absolute noise threshold (V) above which a tile counts as a hotspot."""
        return self.hotspot_threshold_fraction * self.vdd

    @property
    def num_bumps(self) -> int:
        """Total number of power bumps."""
        return self.bump_rows * self.bump_cols


@dataclass
class Design:
    """A fully assembled design ready for simulation and feature extraction.

    Attributes
    ----------
    spec:
        The generating specification.
    die / tile_grid:
        Geometry objects.
    grid:
        The electrical :class:`~repro.pdn.grid.PowerGrid`.
    mna:
        Stamped :class:`~repro.pdn.stamps.MNASystem`.
    loads:
        Load placement with nominal currents and cluster ids.
    load_tile_index / node_tile_index:
        Flat tile index of each load / each die node, used to build per-tile
        feature maps and per-tile worst-case noise.
    """

    spec: DesignSpec
    die: DieArea
    tile_grid: TileGrid
    grid: PowerGrid
    mna: MNASystem
    loads: LoadPlacement
    load_tile_index: np.ndarray
    node_tile_index: np.ndarray

    @property
    def name(self) -> str:
        """Design name from the spec."""
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        """Number of on-die electrical nodes."""
        return self.grid.num_nodes

    @property
    def num_loads(self) -> int:
        """Number of current loads."""
        return self.loads.num_loads

    @property
    def bump_locations(self) -> np.ndarray:
        """Bump coordinates, shape ``(B, 2)``."""
        return self.grid.bump_xy

    def summary(self) -> dict:
        """Size summary in the spirit of the paper's Table 1 (static part)."""
        info = self.grid.summary()
        info.update(
            {
                "name": self.name,
                "tile_grid": f"{self.tile_grid.m}x{self.tile_grid.n}",
                "num_loads": self.num_loads,
                "total_current_A": self.loads.total_nominal_current,
                "vdd": self.spec.vdd,
            }
        )
        return info


def make_design(spec: DesignSpec, seed: RandomState = None) -> Design:
    """Build a :class:`Design` from a :class:`DesignSpec`.

    The same ``seed`` always yields an identical design (bump jitter, load
    placement and nominal currents are all derived from it).
    """
    rng = ensure_rng(seed)
    die = DieArea(spec.die_width, spec.die_height)
    tile_grid = TileGrid(die, spec.tile_rows, spec.tile_cols)

    bump_xy = jittered_bump_array(
        die,
        spec.bump_rows,
        spec.bump_cols,
        jitter_fraction=spec.bump_jitter,
        seed=rng,
    )

    placement = generate_load_placement(
        die,
        num_loads=spec.num_loads,
        total_current=spec.total_current,
        num_clusters=spec.num_clusters,
        cluster_fraction=spec.cluster_fraction,
        seed=rng,
    )

    layers = tuple(
        GridLayer(
            name=layer.name or f"L{i}",
            nx=layer.nx,
            ny=layer.ny,
            sheet_resistance=layer.sheet_resistance,
            direction=layer.direction,
        )
        for i, layer in enumerate(spec.layers)
    )

    grid = build_power_grid(
        die,
        layers,
        bump_locations=bump_xy,
        load_locations=placement.locations,
        via_resistance=spec.via_resistance,
        vias_per_connection=spec.vias_per_connection,
        decap_per_area=spec.decap_per_area,
        load_decap=spec.load_decap,
    )
    mna = build_mna(grid, spec.package)

    design = Design(
        spec=spec,
        die=die,
        tile_grid=tile_grid,
        grid=grid,
        mna=mna,
        loads=placement,
        load_tile_index=load_tile_indices(grid, tile_grid),
        node_tile_index=node_tile_indices(grid, tile_grid),
    )
    _LOG.info("built design %s: %d nodes, %d loads", spec.name, design.num_nodes, design.num_loads)
    return design


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    """Scale an integer dimension, never dropping below ``minimum``."""
    return max(minimum, int(round(value * scale)))


def _reference_spec(name: str, scale: float) -> DesignSpec:
    """Specification of the D1-D4 analogues at a given geometric scale.

    ``scale`` multiplies the *linear* die dimension: tile counts, mesh
    densities and the bump array shrink linearly, while load count and total
    current shrink with the area (``scale**2``) so that current density — and
    therefore the worst-case noise level — is preserved across scales.
    """
    check_positive(scale, "scale")
    presets: dict[str, dict] = {
        # Tile grids match the paper's Table 2 (m x n); electrical meshes,
        # load counts and current densities are chosen so the mean/max
        # worst-case noise of each design lands in the band the paper's
        # Table 1 reports (roughly 90-130 mV mean at Vdd = 1 V) with D3 the
        # noisiest and D4 the mildest, mirroring the paper.
        "D1": dict(
            die=(2500.0, 2500.0), tiles=(50, 50), mesh=(100, 50, 25),
            bumps=(7, 7), loads=1200, current_density=4.4, clusters=5,
            cluster_fraction=0.55, decap=2.8e-15,
        ),
        "D2": dict(
            die=(3000.0, 3000.0), tiles=(130, 130), mesh=(130, 65, 33),
            bumps=(9, 9), loads=2400, current_density=4.1, clusters=6,
            cluster_fraction=0.40, decap=3.2e-15,
        ),
        "D3": dict(
            die=(3500.0, 2500.0), tiles=(70, 50), mesh=(140, 70, 35),
            bumps=(8, 6), loads=3600, current_density=4.9, clusters=7,
            cluster_fraction=0.60, decap=2.6e-15,
        ),
        "D4": dict(
            die=(4500.0, 4500.0), tiles=(180, 180), mesh=(180, 90, 45),
            bumps=(12, 12), loads=6000, current_density=4.2, clusters=9,
            cluster_fraction=0.35, decap=3.4e-15,
        ),
    }
    if name not in presets:
        raise ValueError(f"unknown reference design {name!r}; expected one of {sorted(presets)}")
    p = presets[name]
    die_w = p["die"][0] * scale
    die_h = p["die"][1] * scale
    tile_m, tile_n = p["tiles"]
    m1, m5, m9 = p["mesh"]
    bump_rows, bump_cols = p["bumps"]

    tile_m = _scaled(tile_m, scale, minimum=8)
    tile_n = _scaled(tile_n, scale, minimum=8)
    layers = (
        LayerSpec(nx=max(_scaled(m1, scale), tile_n), ny=max(_scaled(m1, scale), tile_m),
                  sheet_resistance=0.005, name="M1"),
        LayerSpec(nx=_scaled(m5, scale, 4), ny=_scaled(m5, scale, 4),
                  sheet_resistance=0.002, name="M5"),
        LayerSpec(nx=_scaled(m9, scale, 3), ny=_scaled(m9, scale, 3),
                  sheet_resistance=0.0008, name="M9"),
    )
    area_mm2 = die_w * die_h / 1e6
    package = PackageModel(
        bump_resistance=30e-3,
        bump_inductance=12e-12,
        bulk_decap=2e-9 * area_mm2 / 10.0,
        bulk_decap_esr=5e-3,
    )
    return DesignSpec(
        name=name,
        die_width=die_w,
        die_height=die_h,
        tile_rows=tile_m,
        tile_cols=tile_n,
        layers=layers,
        bump_rows=_scaled(bump_rows, scale, 2),
        bump_cols=_scaled(bump_cols, scale, 2),
        num_loads=max(50, int(p["loads"] * scale * scale)),
        total_current=p["current_density"] * area_mm2,
        num_clusters=p["clusters"],
        cluster_fraction=p["cluster_fraction"],
        decap_per_area=p["decap"],
        load_decap=2e-14,
        package=package,
    )


def reference_design(
    name: str,
    scale: float = 1.0,
    seed: RandomState = 0,
) -> Design:
    """Build one of the D1-D4 analogue designs.

    Parameters
    ----------
    name:
        ``"D1"``, ``"D2"``, ``"D3"`` or ``"D4"``.
    scale:
        Geometric scale factor; ``1.0`` reproduces the paper's tile grids
        (50x50 ... 180x180), smaller values shrink everything proportionally
        for quick runs.
    seed:
        Seed controlling bump jitter and load placement.
    """
    return make_design(_reference_spec(name, scale), seed=seed)


def reference_design_names() -> tuple[str, ...]:
    """Names of the available reference designs."""
    return ("D1", "D2", "D3", "D4")


def design_from_name(name: str, seed: RandomState = 0) -> Design:
    """Build a design from a compact factory reference string.

    The string format is shared by the serving sweep and the dataset
    factory, whose worker processes rebuild designs from these references
    rather than unpickling full :class:`Design` objects:

    * ``"small"`` or ``"small@<tiles>"`` — the unit-test design at the given
      square tile count (default 8);
    * ``"D1"`` .. ``"D4"``, optionally ``"D1@<scale>"`` — a reference
      analogue at the given geometric scale (default 0.2).

    Parameters
    ----------
    name:
        Factory reference, e.g. ``"D2@0.15"``.
    seed:
        Seed for the design's stochastic parts (bump jitter, loads).

    Returns
    -------
    The assembled :class:`Design`.
    """
    base, _, suffix = name.partition("@")
    if base == "small":
        tiles = int(suffix) if suffix else 8
        return small_test_design(tile_rows=tiles, tile_cols=tiles, seed=seed)
    scale = float(suffix) if suffix else 0.2
    return reference_design(base, scale=scale, seed=seed)


def small_test_design(
    tile_rows: int = 8,
    tile_cols: int = 8,
    num_loads: int = 60,
    seed: RandomState = 0,
    total_current: float = 2.4,
) -> Design:
    """A deliberately tiny design used throughout the unit tests.

    It keeps the full structure (three metal layers, package R-L, clustered
    loads) but with a mesh small enough that a transient simulation finishes
    in milliseconds.
    """
    spec = DesignSpec(
        name="unit-test",
        die_width=800.0,
        die_height=800.0,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
        layers=(
            LayerSpec(nx=max(16, tile_cols), ny=max(16, tile_rows), sheet_resistance=0.005, name="M1"),
            LayerSpec(nx=8, ny=8, sheet_resistance=0.002, name="M5"),
            LayerSpec(nx=4, ny=4, sheet_resistance=0.0008, name="M9"),
        ),
        bump_rows=3,
        bump_cols=3,
        num_loads=num_loads,
        total_current=total_current,
        num_clusters=2,
        cluster_fraction=0.5,
        decap_per_area=3e-15,
        package=PackageModel(bump_resistance=30e-3, bump_inductance=12e-12,
                             bulk_decap=5e-10, bulk_decap_esr=5e-3),
    )
    return make_design(spec, seed=seed)
