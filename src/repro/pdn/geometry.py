"""Die geometry, tile partitioning and bump placement.

The paper's spatial compression (Sec. 3.2) partitions the PDN layout into an
``m x n`` array of tiles and predicts the worst-case noise per tile
(Eq. 2).  The distance feature (Sec. 3.3) measures the Euclidean distance
from each tile centre to every power bump.  This module holds the purely
geometric pieces of that story: the die outline, the tile grid, and bump
placement patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils import check_positive
from repro.utils.random import RandomState, ensure_rng


@dataclass(frozen=True)
class DieArea:
    """Rectangular die outline in micrometres.

    Attributes
    ----------
    width:
        Die extent along x in um.
    height:
        Die extent along y in um.
    """

    width: float
    height: float

    def __post_init__(self) -> None:
        check_positive(self.width, "width")
        check_positive(self.height, "height")

    @property
    def area(self) -> float:
        """Die area in um^2."""
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """Return True if ``(x, y)`` lies inside (or on the edge of) the die."""
        return 0.0 <= x <= self.width and 0.0 <= y <= self.height

    def grid_points(self, nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(xs, ys)`` of an ``nx x ny`` uniform grid covering the die.

        Points are placed at cell centres so the outermost points sit half a
        pitch away from the die edge, matching how routed power stripes avoid
        the die boundary.
        """
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must have at least one point per axis, got {nx}x{ny}")
        xs = (np.arange(nx) + 0.5) * (self.width / nx)
        ys = (np.arange(ny) + 0.5) * (self.height / ny)
        return xs, ys


@dataclass(frozen=True)
class TileGrid:
    """An ``m x n`` partition of the die used for spatial compression.

    ``m`` counts tiles along y (rows) and ``n`` counts tiles along x
    (columns), so feature maps produced from this grid have shape ``(m, n)``,
    matching the ``m x n`` notation of the paper.
    """

    die: DieArea
    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError(f"tile grid must be at least 1x1, got {self.m}x{self.n}")

    @property
    def shape(self) -> tuple[int, int]:
        """Feature-map shape ``(m, n)``."""
        return (self.m, self.n)

    @property
    def num_tiles(self) -> int:
        """Total number of tiles ``m * n``."""
        return self.m * self.n

    @property
    def tile_width(self) -> float:
        """Tile extent along x in um."""
        return self.die.width / self.n

    @property
    def tile_height(self) -> float:
        """Tile extent along y in um."""
        return self.die.height / self.m

    def tile_of(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map coordinates to tile indices ``(row, col)``.

        Coordinates exactly on the die's far edge are clamped into the last
        tile so that every on-die point belongs to exactly one tile.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        col = np.clip((x / self.tile_width).astype(int), 0, self.n - 1)
        row = np.clip((y / self.tile_height).astype(int), 0, self.m - 1)
        return row, col

    def flat_index(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Flatten ``(row, col)`` tile indices into ``row * n + col``."""
        return np.asarray(row) * self.n + np.asarray(col)

    def tile_centers(self) -> np.ndarray:
        """Return tile-centre coordinates with shape ``(m, n, 2)`` (x, y)."""
        cx = (np.arange(self.n) + 0.5) * self.tile_width
        cy = (np.arange(self.m) + 0.5) * self.tile_height
        centers = np.empty((self.m, self.n, 2), dtype=float)
        centers[:, :, 0] = cx[np.newaxis, :]
        centers[:, :, 1] = cy[:, np.newaxis]
        return centers

    def iter_tiles(self) -> Iterator[tuple[int, int]]:
        """Yield ``(row, col)`` for every tile in row-major order."""
        for row in range(self.m):
            for col in range(self.n):
                yield row, col

    def aggregate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        values: np.ndarray,
        reduce: str = "sum",
    ) -> np.ndarray:
        """Aggregate point ``values`` located at ``(x, y)`` into an (m, n) map.

        Parameters
        ----------
        reduce:
            ``"sum"``, ``"max"`` or ``"count"``.
        """
        row, col = self.tile_of(x, y)
        flat = self.flat_index(row, col)
        out = np.zeros(self.num_tiles, dtype=float)
        values = np.asarray(values, dtype=float)
        if reduce == "sum":
            np.add.at(out, flat, values)
        elif reduce == "max":
            out[:] = -np.inf
            np.maximum.at(out, flat, values)
            out[out == -np.inf] = 0.0
        elif reduce == "count":
            np.add.at(out, flat, 1.0)
        else:
            raise ValueError(f"unknown reduce mode {reduce!r}")
        return out.reshape(self.m, self.n)


def uniform_bump_array(
    die: DieArea,
    rows: int,
    cols: int,
    margin_fraction: float = 0.05,
) -> np.ndarray:
    """Place bumps on a regular ``rows x cols`` array over the die.

    Flip-chip packages place C4 bumps on a near-uniform array across the die;
    this mirrors that arrangement.  Returns an array of shape ``(rows*cols, 2)``
    with (x, y) coordinates in um.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"bump array must be at least 1x1, got {rows}x{cols}")
    if not 0.0 <= margin_fraction < 0.5:
        raise ValueError(f"margin_fraction must be in [0, 0.5), got {margin_fraction}")
    x0 = die.width * margin_fraction
    y0 = die.height * margin_fraction
    xs = np.linspace(x0, die.width - x0, cols)
    ys = np.linspace(y0, die.height - y0, rows)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


def perimeter_bump_array(die: DieArea, count: int, inset_fraction: float = 0.05) -> np.ndarray:
    """Place ``count`` bumps around the die perimeter (wire-bond style).

    Useful for exercising designs where the interior is starved of supply and
    the distance-to-bump feature carries most of the signal.
    """
    if count < 4:
        raise ValueError(f"perimeter placement needs at least 4 bumps, got {count}")
    inset_x = die.width * inset_fraction
    inset_y = die.height * inset_fraction
    # Walk the perimeter rectangle at uniform arc length.
    w = die.width - 2 * inset_x
    h = die.height - 2 * inset_y
    perimeter = 2 * (w + h)
    distances = np.linspace(0.0, perimeter, count, endpoint=False)
    points = np.empty((count, 2), dtype=float)
    for i, d in enumerate(distances):
        if d < w:
            points[i] = (inset_x + d, inset_y)
        elif d < w + h:
            points[i] = (inset_x + w, inset_y + (d - w))
        elif d < 2 * w + h:
            points[i] = (inset_x + w - (d - w - h), inset_y + h)
        else:
            points[i] = (inset_x, inset_y + h - (d - 2 * w - h))
    return points


def jittered_bump_array(
    die: DieArea,
    rows: int,
    cols: int,
    jitter_fraction: float = 0.1,
    seed: RandomState = None,
    margin_fraction: float = 0.05,
) -> np.ndarray:
    """Uniform bump array with per-bump random jitter.

    Real designs shift bumps to avoid macros; jitter breaks the perfect
    symmetry so the distance feature maps are not trivially periodic.
    """
    rng = ensure_rng(seed)
    bumps = uniform_bump_array(die, rows, cols, margin_fraction)
    pitch_x = die.width / max(cols, 1)
    pitch_y = die.height / max(rows, 1)
    jitter = rng.uniform(-jitter_fraction, jitter_fraction, size=bumps.shape)
    bumps = bumps + jitter * np.array([pitch_x, pitch_y])
    bumps[:, 0] = np.clip(bumps[:, 0], 0.0, die.width)
    bumps[:, 1] = np.clip(bumps[:, 1], 0.0, die.height)
    return bumps


def distance_to_bumps(tile_grid: TileGrid, bumps: np.ndarray) -> np.ndarray:
    """Distance feature tensor ``D`` with shape ``(B, m, n)``.

    For every bump ``b`` and tile ``(i, j)``, ``D[b, i, j]`` is the Euclidean
    distance in um between the tile centre and the bump location — exactly the
    feature matrix defined in Sec. 3.3 of the paper.
    """
    bumps = np.asarray(bumps, dtype=float)
    if bumps.ndim != 2 or bumps.shape[1] != 2:
        raise ValueError(f"bumps must have shape (B, 2), got {bumps.shape}")
    centers = tile_grid.tile_centers()  # (m, n, 2)
    diff = centers[np.newaxis, :, :, :] - bumps[:, np.newaxis, np.newaxis, :]
    return np.sqrt(np.sum(diff**2, axis=-1))
