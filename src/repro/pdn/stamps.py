"""Modified nodal analysis (MNA) stamping for the PDN.

The PDN sign-off problem is a sparse linear system ``C x' + G x = B i(t)``
whose matrix is symmetric positive definite (Sec. 2 of the paper).  This
module flattens a :class:`~repro.pdn.grid.PowerGrid` plus a
:class:`~repro.pdn.package.PackageModel` into that algebraic form:

* ``G`` collects every resistive element (stripes, vias, bump resistance,
  decap ESR),
* ``C`` is the (diagonal) node-to-reference capacitance,
* inductors are kept as explicit branch lists so the integrator can apply a
  companion model with the time step of its choice,
* the load incidence simply maps load index to node index because loads are
  ideal current sources to the reference.

The reference node is the ideal supply behind the package; node variables are
voltage *droops* relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.pdn.grid import PowerGrid
from repro.pdn.package import PackageModel

#: Sentinel node index meaning "the reference (ideal supply) node".
REFERENCE_NODE = -1

#: Resistance (ohms) used when an inductor must be treated as a short
#: (static/DC analysis).
INDUCTOR_SHORT_RESISTANCE = 1e-6


def assemble_conductance(
    num_nodes: int,
    branch_a: np.ndarray,
    branch_b: np.ndarray,
    conductance: np.ndarray,
) -> sp.csc_matrix:
    """Assemble a nodal conductance matrix from two-terminal branches.

    ``branch_b`` entries equal to :data:`REFERENCE_NODE` denote branches to
    the reference; they contribute only to the diagonal.  The result is
    symmetric, and positive definite as long as every node has a resistive
    path to the reference.
    """
    branch_a = np.asarray(branch_a, dtype=int)
    branch_b = np.asarray(branch_b, dtype=int)
    conductance = np.asarray(conductance, dtype=float)
    if branch_a.shape != branch_b.shape or branch_a.shape != conductance.shape:
        raise ValueError("branch arrays must have identical shapes")
    if np.any(conductance < 0):
        raise ValueError("branch conductances must be non-negative")

    to_ref = branch_b == REFERENCE_NODE
    internal = ~to_ref

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    a_i = branch_a[internal]
    b_i = branch_b[internal]
    g_i = conductance[internal]
    if a_i.size:
        rows.extend([a_i, b_i, a_i, b_i])
        cols.extend([a_i, b_i, b_i, a_i])
        vals.extend([g_i, g_i, -g_i, -g_i])

    a_r = branch_a[to_ref]
    g_r = conductance[to_ref]
    if a_r.size:
        rows.append(a_r)
        cols.append(a_r)
        vals.append(g_r)

    if not rows:
        return sp.csc_matrix((num_nodes, num_nodes))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = np.concatenate(vals)
    matrix = sp.coo_matrix((val, (row, col)), shape=(num_nodes, num_nodes))
    return matrix.tocsc()


@dataclass
class MNASystem:
    """The assembled PDN in matrix form.

    Attributes
    ----------
    num_nodes:
        Total unknown count (die nodes + package-internal nodes).
    num_die_nodes:
        Count of on-die nodes; these occupy indices ``0 .. num_die_nodes-1``
        and share their numbering with :class:`~repro.pdn.grid.PowerGrid`.
    conductance:
        Sparse symmetric conductance matrix ``G`` (resistive elements only).
    cap_diag:
        Per-node capacitance to the reference (diagonal of ``C``), farads.
    ind_a / ind_b / ind_value:
        Inductive branches; ``ind_b`` may be :data:`REFERENCE_NODE`.
    load_nodes:
        Node index of each current load (current source to reference).
    bump_die_nodes / bump_pkg_nodes:
        Top-metal die node and package-internal node of each bump branch.
    """

    num_nodes: int
    num_die_nodes: int
    conductance: sp.csc_matrix
    cap_diag: np.ndarray
    ind_a: np.ndarray
    ind_b: np.ndarray
    ind_value: np.ndarray
    load_nodes: np.ndarray
    bump_die_nodes: np.ndarray
    bump_pkg_nodes: np.ndarray

    @property
    def num_inductors(self) -> int:
        """Number of inductive branches."""
        return int(self.ind_value.shape[0])

    @property
    def num_loads(self) -> int:
        """Number of current-load ports."""
        return int(self.load_nodes.shape[0])

    def capacitance_matrix(self) -> sp.csc_matrix:
        """The capacitance matrix ``C`` as a sparse diagonal matrix."""
        return sp.diags(self.cap_diag, format="csc")

    def conductance_with_inductor_branches(self, branch_conductance: np.ndarray) -> sp.csc_matrix:
        """``G`` plus each inductive branch replaced by a given conductance.

        The transient engine passes the backward-Euler companion conductance
        ``dt / L``; the static solver passes a near-short.
        """
        branch_conductance = np.asarray(branch_conductance, dtype=float)
        if branch_conductance.shape != self.ind_value.shape:
            raise ValueError(
                "branch_conductance must have one entry per inductor, "
                f"expected shape {self.ind_value.shape}, got {branch_conductance.shape}"
            )
        extra = assemble_conductance(self.num_nodes, self.ind_a, self.ind_b, branch_conductance)
        return (self.conductance + extra).tocsc()

    def static_conductance(self) -> sp.csc_matrix:
        """``G`` with inductors shorted — the DC/static-analysis matrix."""
        shorts = np.full(self.ind_value.shape, 1.0 / INDUCTOR_SHORT_RESISTANCE)
        return self.conductance_with_inductor_branches(shorts)

    def load_incidence(self) -> sp.csc_matrix:
        """The load-port incidence ``B`` as a sparse matrix.

        Column ``k`` is the unit current-injection pattern of load ``k``:
        ``B @ i`` equals :meth:`load_vector` applied to the per-load currents
        ``i``.  Shape ``(num_nodes, num_loads)``.  This is the input map the
        reduced-order projection (:mod:`repro.sim.rom`) compresses.
        """
        values = np.ones(self.num_loads)
        columns = np.arange(self.num_loads)
        return sp.csc_matrix(
            (values, (self.load_nodes, columns)), shape=(self.num_nodes, self.num_loads)
        )

    def inductor_incidence(self) -> sp.csc_matrix:
        """Signed inductor-branch incidence ``E``.

        Column ``k`` carries ``+1`` at ``ind_a[k]`` and ``-1`` at ``ind_b[k]``
        (omitted when the branch returns to the reference), so branch
        voltages are ``E.T @ x`` and branch-current scatter into the nodal
        RHS is ``-E @ i_L``.  Shape ``(num_nodes, num_inductors)``.  Used by
        the reduced-order projection to keep inductor currents exact.
        """
        to_ref = self.ind_b == REFERENCE_NODE
        internal = ~to_ref
        rows = np.concatenate([self.ind_a, self.ind_b[internal]])
        cols = np.concatenate(
            [np.arange(self.num_inductors), np.arange(self.num_inductors)[internal]]
        )
        values = np.concatenate([np.ones(self.num_inductors), -np.ones(int(internal.sum()))])
        return sp.csc_matrix(
            (values, (rows, cols)), shape=(self.num_nodes, self.num_inductors)
        )

    def load_vector(self, load_currents: np.ndarray) -> np.ndarray:
        """Scatter per-load currents into a full right-hand-side vector.

        Parameters
        ----------
        load_currents:
            Array of shape ``(num_loads,)`` with instantaneous currents in A.
        """
        load_currents = np.asarray(load_currents, dtype=float)
        if load_currents.shape != (self.num_loads,):
            raise ValueError(
                f"load_currents must have shape ({self.num_loads},), got {load_currents.shape}"
            )
        rhs = np.zeros(self.num_nodes)
        np.add.at(rhs, self.load_nodes, load_currents)
        return rhs

    def load_vector_block(self, load_currents: np.ndarray) -> np.ndarray:
        """Scatter a block of per-load currents into stacked RHS columns.

        The block form of :meth:`load_vector`: one scatter call covers every
        column, and column ``k`` of the result is bit-identical to
        ``load_vector(load_currents[k])`` (loads sharing a node accumulate in
        the same order).  This is the right-hand-side builder of the lockstep
        transient path (:meth:`repro.sim.transient.TransientEngine.run_many`).

        Parameters
        ----------
        load_currents:
            Array of shape ``(k, num_loads)``: one row of instantaneous load
            currents (A) per right-hand side.

        Returns
        -------
        RHS block of shape ``(num_nodes, k)``.
        """
        load_currents = np.asarray(load_currents, dtype=float)
        if load_currents.ndim != 2 or load_currents.shape[1] != self.num_loads:
            raise ValueError(
                f"load_currents must have shape (k, {self.num_loads}), "
                f"got {load_currents.shape}"
            )
        rhs = np.zeros((self.num_nodes, load_currents.shape[0]))
        np.add.at(rhs, self.load_nodes, load_currents.T)
        return rhs


def build_mna(grid: PowerGrid, package: Optional[PackageModel] = None) -> MNASystem:
    """Stamp a power grid (plus optional package) into an :class:`MNASystem`.

    Without a package model every bump node is tied to the reference through
    a small resistance (an ideal-supply approximation, useful for quick static
    studies).  With a package model each bump gets a series R-L branch to the
    reference and a share of the bulk decap on the package-internal node.
    """
    num_die = grid.num_nodes
    res_a = [grid.res_a]
    res_b = [grid.res_b]
    res_v = [grid.res_value]

    cap_nodes = [grid.cap_node]
    cap_vals = [grid.cap_value]

    ind_a_list: list[int] = []
    ind_b_list: list[int] = []
    ind_v_list: list[float] = []

    next_node = num_die
    bump_pkg_nodes = np.empty(grid.num_bumps, dtype=int)

    if package is None:
        # Ideal supply: bump nodes tied to reference through the bump
        # resistance of a default package.
        bump_r = PackageModel().bump_resistance
        res_a.append(grid.bump_nodes)
        res_b.append(np.full(grid.num_bumps, REFERENCE_NODE))
        res_v.append(np.full(grid.num_bumps, bump_r))
        bump_pkg_nodes[:] = REFERENCE_NODE
    else:
        pkg_nodes = np.arange(next_node, next_node + grid.num_bumps)
        next_node += grid.num_bumps
        bump_pkg_nodes[:] = pkg_nodes

        # Die bump node --R_bump-- package node.
        res_a.append(grid.bump_nodes)
        res_b.append(pkg_nodes)
        res_v.append(np.full(grid.num_bumps, package.bump_resistance))

        # Package node --L_bump-- reference.
        ind_a_list.extend(pkg_nodes.tolist())
        ind_b_list.extend([REFERENCE_NODE] * grid.num_bumps)
        ind_v_list.extend([package.bump_inductance] * grid.num_bumps)

        if package.bulk_decap > 0:
            share = package.bulk_decap / grid.num_bumps
            if package.bulk_decap_esr > 0:
                esr_nodes = np.arange(next_node, next_node + grid.num_bumps)
                next_node += grid.num_bumps
                res_a.append(pkg_nodes)
                res_b.append(esr_nodes)
                res_v.append(np.full(grid.num_bumps, package.bulk_decap_esr))
                cap_nodes.append(esr_nodes)
                cap_vals.append(np.full(grid.num_bumps, share))
            else:
                cap_nodes.append(pkg_nodes)
                cap_vals.append(np.full(grid.num_bumps, share))

    num_nodes = next_node

    all_res_a = np.concatenate(res_a).astype(int)
    all_res_b = np.concatenate(res_b).astype(int)
    all_res_v = np.concatenate(res_v).astype(float)
    if np.any(all_res_v <= 0):
        raise ValueError("all resistances must be positive")
    conductance = assemble_conductance(num_nodes, all_res_a, all_res_b, 1.0 / all_res_v)

    cap_diag = np.zeros(num_nodes)
    np.add.at(cap_diag, np.concatenate(cap_nodes).astype(int), np.concatenate(cap_vals))

    return MNASystem(
        num_nodes=num_nodes,
        num_die_nodes=num_die,
        conductance=conductance,
        cap_diag=cap_diag,
        ind_a=np.asarray(ind_a_list, dtype=int),
        ind_b=np.asarray(ind_b_list, dtype=int),
        ind_value=np.asarray(ind_v_list, dtype=float),
        load_nodes=grid.load_nodes.copy(),
        bump_die_nodes=grid.bump_nodes.copy(),
        bump_pkg_nodes=bump_pkg_nodes,
    )
