"""Package and board macro-model.

Commercial worst-case noise validation models the package and board as
compact macro-models attached to the on-die grid through the C4 bumps
(Sec. 1 of the paper).  The dominant dynamic effect is the *die-package
resonance*: the loop inductance of the package resonates with the on-die
decap, producing mid-frequency droop that exceeds the purely resistive IR
drop.  We model each bump connection as a series R-L branch to the ideal
supply plus an optional shared bulk decap on the package side, which is
sufficient to reproduce that first-droop resonance behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_positive


@dataclass(frozen=True)
class PackageModel:
    """Per-bump series R-L branch plus package-side bulk decap.

    Attributes
    ----------
    bump_resistance:
        Series resistance per bump branch in ohms (bump + package routing).
    bump_inductance:
        Series inductance per bump branch in henries.
    bulk_decap:
        Total package-side decoupling capacitance in farads, split evenly
        over the package-internal nodes of all bump branches.
    bulk_decap_esr:
        Effective series resistance of the bulk decap in ohms (applied as a
        series resistor per bump share).  Zero disables the ESR branch and
        connects the decap share directly to the package node.
    """

    bump_resistance: float = 20e-3
    bump_inductance: float = 30e-12
    bulk_decap: float = 0.0
    bulk_decap_esr: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.bump_resistance, "bump_resistance")
        check_positive(self.bump_inductance, "bump_inductance")
        if self.bulk_decap < 0:
            raise ValueError(f"bulk_decap must be >= 0, got {self.bulk_decap}")
        if self.bulk_decap_esr < 0:
            raise ValueError(f"bulk_decap_esr must be >= 0, got {self.bulk_decap_esr}")

    def resonance_frequency(self, die_decap: float) -> float:
        """Estimate the die-package resonance frequency in Hz.

        ``f = 1 / (2 * pi * sqrt(L_eff * C_die))`` with ``L_eff`` the parallel
        combination of all bump inductances.  Used by the workload generator
        to shape excitation bursts near resonance, where worst-case dynamic
        noise is triggered (Sec. 1).
        """
        check_positive(die_decap, "die_decap")
        return 1.0 / (2.0 * np.pi * np.sqrt(self.bump_inductance * die_decap))

    def effective_inductance(self, num_bumps: int) -> float:
        """Parallel combination of ``num_bumps`` identical bump inductances."""
        if num_bumps < 1:
            raise ValueError(f"num_bumps must be >= 1, got {num_bumps}")
        return self.bump_inductance / num_bumps

    def effective_resistance(self, num_bumps: int) -> float:
        """Parallel combination of ``num_bumps`` identical bump resistances."""
        if num_bumps < 1:
            raise ValueError(f"num_bumps must be >= 1, got {num_bumps}")
        return self.bump_resistance / num_bumps


def default_package_for(num_bumps: int, die_area_um2: float) -> PackageModel:
    """A reasonable package model scaled to design size.

    Larger dies get proportionally more bulk decap; the per-bump branch
    parameters stay in the range typical of flip-chip packages.
    """
    check_positive(die_area_um2, "die_area_um2")
    if num_bumps < 1:
        raise ValueError(f"num_bumps must be >= 1, got {num_bumps}")
    bulk = 1e-9 * (die_area_um2 / 1e6)  # ~1 nF per mm^2
    return PackageModel(
        bump_resistance=25e-3,
        bump_inductance=40e-12,
        bulk_decap=bulk,
        bulk_decap_esr=5e-3,
    )
