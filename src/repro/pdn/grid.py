"""On-die power grid electrical model.

The on-die grid is modelled the way power-integrity sign-off tools model it
(Sec. 2 of the paper): a multi-layer mesh of resistive stripes connected by
vias, decoupling capacitance to the ground network, C4 bumps tying the top
metal to the package, and per-instance switching current sources attached to
the bottom metal.

All electrical quantities are expressed in the *droop* frame of reference:
node variable ``x_i`` is the deviation of the local supply from the ideal
rail, resistive/capacitive elements stamp as usual, and switching instances
inject positive current (drawing charge raises the droop).  With every node
resistively connected to the reference through the bump/package branches the
conductance matrix is symmetric positive definite, the standard property
exploited by power-grid solvers [5-9].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.pdn.geometry import DieArea, TileGrid
from repro.utils import check_positive, get_logger

_LOG = get_logger("pdn.grid")


@dataclass(frozen=True)
class GridLayer:
    """One metal layer of the on-die power grid.

    Attributes
    ----------
    name:
        Layer name, e.g. ``"M1"`` or ``"RDL"``.
    nx, ny:
        Number of grid nodes along x and y.  Coarser (upper) layers use
        smaller values, mirroring the wider pitch of upper metals.
    sheet_resistance:
        Effective resistance of one stripe segment per unit length
        (ohm / um).  Upper metals are thicker, hence lower values.
    direction:
        ``"both"`` meshes the layer in x and y; ``"horizontal"`` /
        ``"vertical"`` produce stripes in one direction only, as real
        alternating-direction grids do.
    """

    name: str
    nx: int
    ny: int
    sheet_resistance: float
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError(
                f"layer {self.name!r} needs at least a 2x2 mesh, got {self.nx}x{self.ny}"
            )
        check_positive(self.sheet_resistance, "sheet_resistance")
        if self.direction not in ("both", "horizontal", "vertical"):
            raise ValueError(f"unknown layer direction {self.direction!r}")

    @property
    def num_nodes(self) -> int:
        """Number of electrical nodes contributed by this layer."""
        return self.nx * self.ny


@dataclass
class PowerGrid:
    """Assembled multi-layer power grid.

    Construction happens through :func:`build_power_grid`; the resulting
    object stores flat element arrays that the MNA stamping code
    (:mod:`repro.pdn.stamps`) converts into sparse matrices.

    Attributes
    ----------
    die:
        Die outline.
    layers:
        Layer specifications, ordered bottom (index 0, instance-facing) to
        top (bump-facing).
    node_layer / node_x / node_y:
        Per-node metadata arrays of length ``num_nodes``.
    res_a / res_b / res_value:
        Resistor element arrays; ``res_value`` in ohms.
    cap_node / cap_value:
        Grounded capacitance (decap + intrinsic) per node, in farads.
    bump_nodes / bump_xy:
        Top-layer node index and (x, y) location of every power bump.
    load_nodes / load_xy:
        Bottom-layer node index and location of every current-load port.
    """

    die: DieArea
    layers: tuple[GridLayer, ...]
    node_layer: np.ndarray
    node_x: np.ndarray
    node_y: np.ndarray
    res_a: np.ndarray
    res_b: np.ndarray
    res_value: np.ndarray
    cap_node: np.ndarray
    cap_value: np.ndarray
    bump_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    bump_xy: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    load_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    load_xy: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))

    @property
    def num_nodes(self) -> int:
        """Number of on-die electrical nodes (excluding package-internal nodes)."""
        return int(self.node_layer.shape[0])

    @property
    def num_resistors(self) -> int:
        """Number of resistive segments (stripes + vias)."""
        return int(self.res_value.shape[0])

    @property
    def num_bumps(self) -> int:
        """Number of power bumps."""
        return int(self.bump_nodes.shape[0])

    @property
    def num_loads(self) -> int:
        """Number of current-load attachment points."""
        return int(self.load_nodes.shape[0])

    @property
    def total_decap(self) -> float:
        """Total on-die decoupling capacitance in farads."""
        return float(np.sum(self.cap_value))

    def layer_nodes(self, layer_index: int) -> np.ndarray:
        """Return the node indices belonging to ``layer_index``."""
        return np.nonzero(self.node_layer == layer_index)[0]

    def summary(self) -> dict:
        """Human-readable size/electrical summary used by Table 1 reporting."""
        return {
            "num_nodes": self.num_nodes,
            "num_resistors": self.num_resistors,
            "num_bumps": self.num_bumps,
            "num_loads": self.num_loads,
            "num_layers": len(self.layers),
            "total_decap_nF": self.total_decap * 1e9,
            "die_width_um": self.die.width,
            "die_height_um": self.die.height,
        }


def _nearest_node(xs: np.ndarray, ys: np.ndarray, px: float, py: float) -> int:
    """Index (into the layer-local grid) of the node nearest to (px, py)."""
    ix = int(np.argmin(np.abs(xs - px)))
    iy = int(np.argmin(np.abs(ys - py)))
    return iy * xs.shape[0] + ix


def _mesh_layer(
    layer: GridLayer,
    die: DieArea,
    node_offset: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Mesh a single layer.

    Returns ``(x, y, res_a, res_b, res_value)`` where ``x``/``y`` give node
    coordinates and resistor endpoints are global node indices (already
    shifted by ``node_offset``).
    """
    xs, ys = die.grid_points(layer.nx, layer.ny)
    gx, gy = np.meshgrid(xs, ys)  # shape (ny, nx)
    x = gx.ravel()
    y = gy.ravel()

    def node_id(ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        return node_offset + iy * layer.nx + ix

    res_a_parts: list[np.ndarray] = []
    res_b_parts: list[np.ndarray] = []
    res_v_parts: list[np.ndarray] = []

    pitch_x = die.width / layer.nx
    pitch_y = die.height / layer.ny

    if layer.direction in ("both", "horizontal"):
        # Horizontal stripes: connect (ix, iy) to (ix + 1, iy).
        ix, iy = np.meshgrid(np.arange(layer.nx - 1), np.arange(layer.ny))
        a = node_id(ix.ravel(), iy.ravel())
        b = node_id(ix.ravel() + 1, iy.ravel())
        res_a_parts.append(a)
        res_b_parts.append(b)
        res_v_parts.append(np.full(a.shape, layer.sheet_resistance * pitch_x))

    if layer.direction in ("both", "vertical"):
        # Vertical stripes: connect (ix, iy) to (ix, iy + 1).
        ix, iy = np.meshgrid(np.arange(layer.nx), np.arange(layer.ny - 1))
        a = node_id(ix.ravel(), iy.ravel())
        b = node_id(ix.ravel(), iy.ravel() + 1)
        res_a_parts.append(a)
        res_b_parts.append(b)
        res_v_parts.append(np.full(a.shape, layer.sheet_resistance * pitch_y))

    res_a = np.concatenate(res_a_parts) if res_a_parts else np.empty(0, dtype=int)
    res_b = np.concatenate(res_b_parts) if res_b_parts else np.empty(0, dtype=int)
    res_v = np.concatenate(res_v_parts) if res_v_parts else np.empty(0, dtype=float)
    return x, y, res_a, res_b, res_v


def build_power_grid(
    die: DieArea,
    layers: Sequence[GridLayer],
    bump_locations: np.ndarray,
    load_locations: np.ndarray,
    via_resistance: float = 0.5,
    vias_per_connection: int = 4,
    decap_per_area: float = 1e-15,
    load_decap: float = 5e-15,
    intrinsic_cap_per_node: float = 1e-16,
) -> PowerGrid:
    """Assemble a :class:`PowerGrid` from layer specs and attachment points.

    Parameters
    ----------
    die:
        Die outline in um.
    layers:
        Metal layers ordered bottom to top.  Adjacent layers are connected by
        via arrays: every node of the *coarser* layer connects to the nearest
        node of the finer layer below it.
    bump_locations:
        ``(B, 2)`` bump coordinates; bumps attach to the nearest node of the
        topmost layer.
    load_locations:
        ``(L, 2)`` current-load coordinates; loads attach to the nearest node
        of the bottommost layer.
    via_resistance:
        Resistance of a single via cut in ohms.
    vias_per_connection:
        Number of parallel via cuts per inter-layer connection.
    decap_per_area:
        Distributed decap density in F/um^2, spread over bottom-layer nodes.
    load_decap:
        Extra local decap (F) added at each load node, modelling intentional
        decap cells placed next to aggressors.
    intrinsic_cap_per_node:
        Small parasitic capacitance (F) at every node; keeps the capacitance
        matrix strictly positive so transient integration is well posed.
    """
    if len(layers) < 1:
        raise ValueError("at least one metal layer is required")
    check_positive(via_resistance, "via_resistance")
    if vias_per_connection < 1:
        raise ValueError(f"vias_per_connection must be >= 1, got {vias_per_connection}")

    bump_locations = np.atleast_2d(np.asarray(bump_locations, dtype=float))
    load_locations = np.atleast_2d(np.asarray(load_locations, dtype=float))
    if bump_locations.shape[1] != 2:
        raise ValueError(f"bump_locations must have shape (B, 2), got {bump_locations.shape}")
    if load_locations.shape[1] != 2:
        raise ValueError(f"load_locations must have shape (L, 2), got {load_locations.shape}")

    node_x_parts: list[np.ndarray] = []
    node_y_parts: list[np.ndarray] = []
    node_layer_parts: list[np.ndarray] = []
    res_a_parts: list[np.ndarray] = []
    res_b_parts: list[np.ndarray] = []
    res_v_parts: list[np.ndarray] = []

    layer_offsets: list[int] = []
    layer_axes: list[tuple[np.ndarray, np.ndarray]] = []
    offset = 0
    for li, layer in enumerate(layers):
        layer_offsets.append(offset)
        x, y, ra, rb, rv = _mesh_layer(layer, die, offset)
        node_x_parts.append(x)
        node_y_parts.append(y)
        node_layer_parts.append(np.full(x.shape, li, dtype=int))
        res_a_parts.append(ra)
        res_b_parts.append(rb)
        res_v_parts.append(rv)
        layer_axes.append(die.grid_points(layer.nx, layer.ny))
        offset += layer.num_nodes

    # Inter-layer vias: each node of the upper layer drops to the nearest node
    # of the layer below.
    effective_via_r = via_resistance / vias_per_connection
    for li in range(1, len(layers)):
        upper = layers[li]
        lower = layers[li - 1]
        up_off = layer_offsets[li]
        low_off = layer_offsets[li - 1]
        up_xs, up_ys = layer_axes[li]
        low_xs, low_ys = layer_axes[li - 1]
        # Vectorised nearest-node mapping: independent along x and y because
        # both layers are axis-aligned uniform grids.
        map_x = np.argmin(np.abs(low_xs[np.newaxis, :] - up_xs[:, np.newaxis]), axis=1)
        map_y = np.argmin(np.abs(low_ys[np.newaxis, :] - up_ys[:, np.newaxis]), axis=1)
        ix, iy = np.meshgrid(np.arange(upper.nx), np.arange(upper.ny))
        upper_nodes = up_off + iy.ravel() * upper.nx + ix.ravel()
        lower_nodes = low_off + map_y[iy.ravel()] * lower.nx + map_x[ix.ravel()]
        res_a_parts.append(upper_nodes)
        res_b_parts.append(lower_nodes)
        res_v_parts.append(np.full(upper_nodes.shape, effective_via_r))

    node_x = np.concatenate(node_x_parts)
    node_y = np.concatenate(node_y_parts)
    node_layer = np.concatenate(node_layer_parts)
    res_a = np.concatenate(res_a_parts).astype(int)
    res_b = np.concatenate(res_b_parts).astype(int)
    res_value = np.concatenate(res_v_parts).astype(float)

    num_nodes = node_x.shape[0]

    # --- Capacitance -----------------------------------------------------
    cap_value = np.full(num_nodes, intrinsic_cap_per_node, dtype=float)
    bottom = layers[0]
    bottom_nodes = np.arange(layer_offsets[0], layer_offsets[0] + bottom.num_nodes)
    if decap_per_area > 0:
        per_node_decap = decap_per_area * die.area / bottom.num_nodes
        cap_value[bottom_nodes] += per_node_decap

    # --- Bumps (top layer) ------------------------------------------------
    top_index = len(layers) - 1
    top_off = layer_offsets[top_index]
    top_xs, top_ys = layer_axes[top_index]
    bump_nodes = np.array(
        [top_off + _nearest_node(top_xs, top_ys, bx, by) for bx, by in bump_locations],
        dtype=int,
    )

    # --- Loads (bottom layer) ----------------------------------------------
    low_xs, low_ys = layer_axes[0]
    load_nodes = np.array(
        [layer_offsets[0] + _nearest_node(low_xs, low_ys, lx, ly) for lx, ly in load_locations],
        dtype=int,
    )
    if load_decap > 0:
        np.add.at(cap_value, load_nodes, load_decap)

    grid = PowerGrid(
        die=die,
        layers=tuple(layers),
        node_layer=node_layer,
        node_x=node_x,
        node_y=node_y,
        res_a=res_a,
        res_b=res_b,
        res_value=res_value,
        cap_node=np.arange(num_nodes),
        cap_value=cap_value,
        bump_nodes=bump_nodes,
        bump_xy=bump_locations,
        load_nodes=load_nodes,
        load_xy=load_locations,
    )
    _LOG.debug("built power grid: %s", grid.summary())
    return grid


def load_tile_indices(grid: PowerGrid, tile_grid: TileGrid) -> np.ndarray:
    """Flat tile index of every current load, used for per-tile aggregation."""
    row, col = tile_grid.tile_of(grid.load_xy[:, 0], grid.load_xy[:, 1])
    return tile_grid.flat_index(row, col)


def node_tile_indices(grid: PowerGrid, tile_grid: TileGrid) -> np.ndarray:
    """Flat tile index of every grid node (used for per-tile noise maxima)."""
    row, col = tile_grid.tile_of(grid.node_x, grid.node_y)
    return tile_grid.flat_index(row, col)
