"""Power distribution network (PDN) modelling.

This subpackage is the substrate the paper takes for granted: a model of the
on-die power grid (multi-layer resistive mesh, decap, bumps), the package
macro-model, current-load placement, and the MNA matrices the simulator
solves.  The reference designs D1-D4 are synthetic analogues of the paper's
four commercial designs (see DESIGN.md for the substitution rationale).
"""

from repro.pdn.geometry import (
    DieArea,
    TileGrid,
    distance_to_bumps,
    jittered_bump_array,
    perimeter_bump_array,
    uniform_bump_array,
)
from repro.pdn.grid import GridLayer, PowerGrid, build_power_grid, load_tile_indices, node_tile_indices
from repro.pdn.loads import LoadPlacement, generate_load_placement
from repro.pdn.package import PackageModel, default_package_for
from repro.pdn.stamps import REFERENCE_NODE, MNASystem, assemble_conductance, build_mna
from repro.pdn.designs import (
    Design,
    DesignSpec,
    LayerSpec,
    design_from_name,
    make_design,
    reference_design,
    reference_design_names,
    small_test_design,
)
from repro.pdn.netlist import Netlist, netlist_to_string, read_netlist, write_netlist

__all__ = [
    "DieArea",
    "TileGrid",
    "distance_to_bumps",
    "uniform_bump_array",
    "perimeter_bump_array",
    "jittered_bump_array",
    "GridLayer",
    "PowerGrid",
    "build_power_grid",
    "load_tile_indices",
    "node_tile_indices",
    "LoadPlacement",
    "generate_load_placement",
    "PackageModel",
    "default_package_for",
    "REFERENCE_NODE",
    "MNASystem",
    "assemble_conductance",
    "build_mna",
    "Design",
    "DesignSpec",
    "LayerSpec",
    "design_from_name",
    "make_design",
    "reference_design",
    "reference_design_names",
    "small_test_design",
    "Netlist",
    "netlist_to_string",
    "read_netlist",
    "write_netlist",
]
