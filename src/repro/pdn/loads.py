"""Placement and sizing of switching-current loads.

Each *current load* stands for a group of standard-cell instances (or a
macro) that draws switching current from the bottom metal of the power grid.
The paper's designs have between 2.5k and 810k loads (Table 1); the generator
here produces a mixture of uniformly spread background loads and clustered
"hotspot" regions, which is what gives real designs their uneven worst-case
noise maps (hotspot ratios between 22% and 58% in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pdn.geometry import DieArea
from repro.utils import check_positive
from repro.utils.random import RandomState, ensure_rng


@dataclass(frozen=True)
class LoadPlacement:
    """Locations and nominal current scales of all loads in a design.

    Attributes
    ----------
    locations:
        ``(L, 2)`` load coordinates in um.
    nominal_currents:
        ``(L,)`` per-load nominal (average) switching current in amperes;
        the workload generator modulates these over time.
    cluster_id:
        ``(L,)`` integer id of the activity cluster each load belongs to
        (``-1`` for background loads).  Workloads use this to switch whole
        regions together, which is how realistic hotspots arise.
    """

    locations: np.ndarray
    nominal_currents: np.ndarray
    cluster_id: np.ndarray

    def __post_init__(self) -> None:
        if self.locations.ndim != 2 or self.locations.shape[1] != 2:
            raise ValueError(f"locations must have shape (L, 2), got {self.locations.shape}")
        if self.nominal_currents.shape != (self.locations.shape[0],):
            raise ValueError("nominal_currents must have one entry per load")
        if self.cluster_id.shape != (self.locations.shape[0],):
            raise ValueError("cluster_id must have one entry per load")

    @property
    def num_loads(self) -> int:
        """Number of loads."""
        return int(self.locations.shape[0])

    @property
    def num_clusters(self) -> int:
        """Number of activity clusters (excluding background)."""
        ids = self.cluster_id[self.cluster_id >= 0]
        return int(ids.max()) + 1 if ids.size else 0

    @property
    def total_nominal_current(self) -> float:
        """Sum of nominal currents in amperes."""
        return float(np.sum(self.nominal_currents))


def generate_load_placement(
    die: DieArea,
    num_loads: int,
    total_current: float,
    num_clusters: int = 4,
    cluster_fraction: float = 0.5,
    cluster_radius_fraction: float = 0.12,
    current_spread: float = 0.5,
    seed: RandomState = None,
) -> LoadPlacement:
    """Generate a mixed background + clustered load placement.

    Parameters
    ----------
    die:
        Die outline.
    num_loads:
        Total number of current loads to place.
    total_current:
        Sum of nominal currents across all loads, in amperes.  This sets the
        overall power level of the design and, together with the grid
        impedance, the worst-case noise magnitude.
    num_clusters:
        Number of high-activity clusters (cores, accelerators, PHYs ...).
    cluster_fraction:
        Fraction of loads (and of current) assigned to clusters rather than
        the uniform background.
    cluster_radius_fraction:
        Cluster radius as a fraction of the smaller die dimension.
    current_spread:
        Relative spread (log-normal sigma) of per-load nominal currents.
    seed:
        Source of randomness.
    """
    if num_loads < 1:
        raise ValueError(f"num_loads must be >= 1, got {num_loads}")
    check_positive(total_current, "total_current")
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ValueError(f"cluster_fraction must be in [0, 1], got {cluster_fraction}")
    if num_clusters < 0:
        raise ValueError(f"num_clusters must be >= 0, got {num_clusters}")
    rng = ensure_rng(seed)

    num_clustered = int(round(num_loads * cluster_fraction)) if num_clusters > 0 else 0
    num_background = num_loads - num_clustered

    locations = np.empty((num_loads, 2), dtype=float)
    cluster_id = np.full(num_loads, -1, dtype=int)

    # Background loads: uniform over the die.
    locations[:num_background, 0] = rng.uniform(0.0, die.width, num_background)
    locations[:num_background, 1] = rng.uniform(0.0, die.height, num_background)

    # Clustered loads: Gaussian blobs around random centres.
    if num_clustered > 0:
        radius = cluster_radius_fraction * min(die.width, die.height)
        centers = np.column_stack(
            [
                rng.uniform(0.15 * die.width, 0.85 * die.width, num_clusters),
                rng.uniform(0.15 * die.height, 0.85 * die.height, num_clusters),
            ]
        )
        assignment = rng.integers(0, num_clusters, num_clustered)
        offsets = rng.normal(0.0, radius, size=(num_clustered, 2))
        pts = centers[assignment] + offsets
        pts[:, 0] = np.clip(pts[:, 0], 0.0, die.width)
        pts[:, 1] = np.clip(pts[:, 1], 0.0, die.height)
        locations[num_background:] = pts
        cluster_id[num_background:] = assignment

    # Per-load nominal currents: log-normal spread, cluster loads drawing more.
    raw = rng.lognormal(mean=0.0, sigma=current_spread, size=num_loads)
    raw[cluster_id >= 0] *= 2.0
    nominal = raw * (total_current / np.sum(raw))

    return LoadPlacement(
        locations=locations,
        nominal_currents=nominal,
        cluster_id=cluster_id,
    )
