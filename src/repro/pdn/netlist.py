"""SPICE-style netlist export and import for power grids.

Commercial PDN flows exchange the extracted grid as a (huge) SPICE deck.  To
make the synthetic designs inspectable with standard circuit tools — and to
give the test suite a round-trip check on the electrical model — this module
writes and reads a conventional subset of SPICE:

* ``R<name> <node+> <node-> <value>`` resistors,
* ``C<name> <node+> 0 <value>`` grounded capacitors,
* ``L<name> <node+> <node-> <value>`` inductors,
* ``I<name> <node+> 0 <value>`` DC current loads (nominal currents),
* ``*`` comment lines carrying bump/load/metadata annotations.

Node ``0`` is the reference (ideal supply in the droop frame).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from repro.pdn.stamps import REFERENCE_NODE, MNASystem


@dataclass
class Netlist:
    """Parsed flat netlist (element lists with integer node ids).

    Node ``0`` is the reference; internal nodes are numbered from 1 in the
    file but stored zero-based here (file node ``k`` maps to ``k - 1``),
    with the reference represented by :data:`REFERENCE_NODE`.
    """

    num_nodes: int = 0
    res_a: list[int] = field(default_factory=list)
    res_b: list[int] = field(default_factory=list)
    res_value: list[float] = field(default_factory=list)
    cap_node: list[int] = field(default_factory=list)
    cap_value: list[float] = field(default_factory=list)
    ind_a: list[int] = field(default_factory=list)
    ind_b: list[int] = field(default_factory=list)
    ind_value: list[float] = field(default_factory=list)
    load_node: list[int] = field(default_factory=list)
    load_value: list[float] = field(default_factory=list)

    @property
    def num_resistors(self) -> int:
        """Number of resistor elements."""
        return len(self.res_value)

    @property
    def num_capacitors(self) -> int:
        """Number of capacitor elements."""
        return len(self.cap_value)

    @property
    def num_inductors(self) -> int:
        """Number of inductor elements."""
        return len(self.ind_value)

    @property
    def num_loads(self) -> int:
        """Number of current-source elements."""
        return len(self.load_value)


def _file_node(index: int) -> str:
    """Map an internal node index to its name in the netlist file."""
    return "0" if index == REFERENCE_NODE else str(index + 1)


def _internal_node(token: str) -> int:
    """Map a netlist node name back to the internal index."""
    value = int(token)
    return REFERENCE_NODE if value == 0 else value - 1


def write_netlist(
    mna: MNASystem,
    destination: Union[str, Path, TextIO],
    nominal_load_currents: Optional[np.ndarray] = None,
    title: str = "repro PDN netlist",
) -> None:
    """Write an :class:`~repro.pdn.stamps.MNASystem` as a SPICE-style deck.

    Resistive elements are recovered from the assembled conductance matrix
    (upper triangle for node-to-node, diagonal surplus for node-to-reference),
    so the file describes exactly the electrical system the simulator solves.
    """
    close = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w", encoding="utf-8")
        close = True
    else:
        handle = destination
    try:
        _write_netlist_to(handle, mna, nominal_load_currents, title)
    finally:
        if close:
            handle.close()


def _write_netlist_to(
    out: TextIO,
    mna: MNASystem,
    nominal_load_currents: Optional[np.ndarray],
    title: str,
) -> None:
    """Write the deck body (see :func:`write_netlist`)."""
    coo = mna.conductance.tocoo()
    out.write(f"* {title}\n")
    out.write(f"* nodes={mna.num_nodes} die_nodes={mna.num_die_nodes}\n")

    # Node-to-node resistors from the strict upper triangle.
    element = 0
    upper = coo.row < coo.col
    offdiag_rows = coo.row[upper]
    offdiag_cols = coo.col[upper]
    offdiag_vals = coo.data[upper]
    # Accumulate the total off-diagonal conductance per node so we can
    # recover the to-reference conductance from the diagonal.
    to_ref = np.zeros(mna.num_nodes)
    diag = np.zeros(mna.num_nodes)
    full_off = coo.row != coo.col
    np.add.at(to_ref, coo.row[full_off], coo.data[full_off])
    diag_mask = coo.row == coo.col
    np.add.at(diag, coo.row[diag_mask], coo.data[diag_mask])
    ref_conductance = diag + to_ref  # off-diagonal entries are negative

    for a, b, g in zip(offdiag_rows, offdiag_cols, offdiag_vals):
        conductance = -g
        if conductance <= 0:
            continue
        out.write(f"R{element} {_file_node(int(a))} {_file_node(int(b))} {1.0 / conductance:.6e}\n")
        element += 1
    for node, g in enumerate(ref_conductance):
        if g > 1e-12:
            out.write(f"R{element} {_file_node(node)} 0 {1.0 / g:.6e}\n")
            element += 1

    for index, (node, value) in enumerate(zip(range(mna.num_nodes), mna.cap_diag)):
        if value > 0:
            out.write(f"C{index} {_file_node(node)} 0 {value:.6e}\n")

    for index, (a, b, value) in enumerate(zip(mna.ind_a, mna.ind_b, mna.ind_value)):
        out.write(f"L{index} {_file_node(int(a))} {_file_node(int(b))} {value:.6e}\n")

    currents = nominal_load_currents
    if currents is None:
        currents = np.zeros(mna.num_loads)
    for index, (node, value) in enumerate(zip(mna.load_nodes, currents)):
        out.write(f"I{index} {_file_node(int(node))} 0 {value:.6e}\n")
    out.write(".end\n")


def netlist_to_string(mna: MNASystem, nominal_load_currents: Optional[np.ndarray] = None) -> str:
    """Return the SPICE deck as a string (convenience wrapper)."""
    buffer = io.StringIO()
    write_netlist(mna, buffer, nominal_load_currents)
    return buffer.getvalue()


def read_netlist(source: Union[str, Path, TextIO]) -> Netlist:
    """Parse a SPICE-style deck written by :func:`write_netlist`.

    Only the subset produced by :func:`write_netlist` is supported; unknown
    cards raise ``ValueError`` so silent mis-parses cannot happen.
    """
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        return _read_netlist_from(handle)
    finally:
        if close:
            handle.close()


def _read_netlist_from(handle: TextIO) -> Netlist:
    """Parse the deck body (see :func:`read_netlist`)."""
    netlist = Netlist()
    max_node = -1
    for raw_line in handle:
        line = raw_line.strip()
        if not line or line.startswith("*"):
            continue
        if line.lower() == ".end":
            break
        tokens = line.split()
        if len(tokens) != 4:
            raise ValueError(f"malformed netlist card: {line!r}")
        card, node_a, node_b, value_text = tokens
        kind = card[0].upper()
        a = _internal_node(node_a)
        b = _internal_node(node_b)
        value = float(value_text)
        max_node = max(max_node, a, b)
        if kind == "R":
            netlist.res_a.append(a)
            netlist.res_b.append(b)
            netlist.res_value.append(value)
        elif kind == "C":
            if b != REFERENCE_NODE:
                raise ValueError(f"only grounded capacitors are supported: {line!r}")
            netlist.cap_node.append(a)
            netlist.cap_value.append(value)
        elif kind == "L":
            netlist.ind_a.append(a)
            netlist.ind_b.append(b)
            netlist.ind_value.append(value)
        elif kind == "I":
            if b != REFERENCE_NODE:
                raise ValueError(f"only grounded current sources are supported: {line!r}")
            netlist.load_node.append(a)
            netlist.load_value.append(value)
        else:
            raise ValueError(f"unsupported netlist card type {kind!r} in line {line!r}")
    netlist.num_nodes = max_node + 1
    return netlist
