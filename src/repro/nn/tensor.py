"""A small reverse-mode automatic-differentiation engine on numpy arrays.

The paper's model is implemented in PyTorch; PyTorch is not available in this
environment, so this module provides the minimal tensor/autograd substrate
the model needs: a :class:`Tensor` wrapping a numpy array, a :class:`Function`
base class for differentiable operations, and reverse-mode backpropagation
over the recorded graph.  The op set is intentionally small — exactly what a
U-Net-style CNN with temporal reductions requires — and every op's gradient
is covered by numerical-gradient tests in ``tests/nn``.

Tensors carry one of the kernel dtypes (``float64`` by default — the
bit-exact training/reference precision — or ``float32`` for the low-precision
inference path; see :mod:`repro.nn.kernels`).  Operations preserve their
operands' dtype: scalars and lists are coerced at the promoted dtype of the
tensor operands, so a float32 forward pass stays float32 end to end instead
of silently promoting to float64 at the first ``x * 0.5``.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.nn import kernels

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Convert any accepted operand into a kernel-dtype numpy array.

    Arrays already carrying a supported kernel dtype pass through unchanged
    (no copy) when no explicit ``dtype`` is requested; everything else —
    scalars, lists, integer or exotic-dtype arrays — is coerced to ``dtype``
    (default float64).
    """
    if isinstance(value, Tensor):
        return value.data
    if (
        dtype is None
        and isinstance(value, (np.ndarray, np.generic))
        and value.dtype in kernels.SUPPORTED_DTYPES
    ):
        # np.generic covers 0-d results of reductions (np.sum of a float32
        # array returns a numpy scalar): they keep their precision too.
        return np.asarray(value)
    return np.asarray(value, dtype=dtype if dtype is not None else np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Context:
    """Per-call scratch space a :class:`Function` uses to stash forward data."""

    __slots__ = ("saved", "attrs", "needs_input_grad")

    def __init__(self) -> None:
        self.saved: tuple = ()
        self.attrs: dict = {}
        #: One flag per positional input: whether a gradient will ever reach
        #: it (set by :meth:`Function.apply`).  Expensive backward rules can
        #: skip computing adjoints nobody consumes — e.g. the col2im fold for
        #: a first-layer convolution whose input is the minibatch itself.
        self.needs_input_grad: tuple = ()

    def save(self, *arrays) -> None:
        """Save arrays (or any values) needed by the backward pass."""
        self.saved = arrays


class Function:
    """Base class of differentiable operations.

    Subclasses implement ``forward(ctx, *arrays, **kwargs) -> np.ndarray`` and
    ``backward(ctx, grad) -> tuple[Optional[np.ndarray], ...]`` returning one
    gradient (or ``None``) per positional input, in order.
    """

    @staticmethod
    def forward(ctx: Context, *args, **kwargs) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):  # pragma: no cover - interface
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs: ArrayLike, **kwargs) -> "Tensor":
        """Run the forward pass and record the node for backpropagation.

        Non-tensor operands (Python scalars, lists) are coerced at the
        promoted dtype of the tensor/array operands, so e.g. ``x * 0.5`` on a
        float32 tensor stays float32 instead of promoting to float64 through
        a strongly-typed 0-d float64 scalar array.
        """
        common: Optional[np.dtype] = None
        for value in inputs:
            data = value.data if isinstance(value, Tensor) else value
            if isinstance(data, np.ndarray) and data.dtype in kernels.SUPPORTED_DTYPES:
                common = (
                    data.dtype if common is None else np.promote_types(common, data.dtype)
                )
        if common is None:
            common = kernels.DEFAULT_DTYPE
        tensors = [
            value if isinstance(value, Tensor) else Tensor(_as_array(value, dtype=common))
            for value in inputs
        ]
        ctx = Context()
        output_data = cls.forward(ctx, *[tensor.data for tensor in tensors], **kwargs)
        requires_grad = any(tensor.requires_grad for tensor in tensors) and grad_enabled()
        output = Tensor(output_data, requires_grad=requires_grad)
        if requires_grad:
            output._parents = tuple(tensors)
            output._function = cls
            output._ctx = ctx
            ctx.needs_input_grad = tuple(
                tensor.requires_grad or tensor._function is not None for tensor in tensors
            )
            tape = getattr(_GRAD_STATE, "tape", None)
            if tape is not None:
                tape.append(output)
        return output


# Thread-local so a serving thread running under no_grad can never disable
# graph recording for a training step happening concurrently on another
# thread (each thread sees its own flag, defaulting to enabled).
_GRAD_STATE = threading.local()


def grad_enabled() -> bool:
    """Whether operations currently record the autograd graph (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


class no_grad:
    """Context manager disabling graph recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._previous = grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GRAD_STATE.enabled = self._previous


class record_graph:
    """Context manager recording created nodes on a tape (per thread).

    Inside the context every recorded :class:`Function` output is appended to
    a tape in creation order.  Creation order is a topological order of the
    graph, so a ``backward()`` call on the tape's last node can walk the tape
    in reverse instead of re-deriving the order with a depth-first search —
    the training loop builds an identically-shaped graph every step, and the
    tape makes its traversal order a straight list replay.  Contexts nest;
    each re-entry starts a fresh tape and restores the previous one on exit.
    """

    def __enter__(self) -> "record_graph":
        self._previous = getattr(_GRAD_STATE, "tape", None)
        _GRAD_STATE.tape = []
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GRAD_STATE.tape = self._previous


def _topological_order(roots: Sequence["Tensor"]) -> list["Tensor"]:
    """Nodes reachable from ``roots`` in reverse topological order.

    A multi-root depth-first search; reversing its post-order yields an
    order where every node precedes all of its parents, which is what the
    backward accumulation loop consumes.
    """
    visited: set[int] = set()
    order: list[Tensor] = []

    stack: list[tuple[Tensor, bool]] = [(root, False) for root in reversed(roots)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return list(reversed(order))


class Tensor:
    """A numpy array plus the bookkeeping required for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_function", "_ctx")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple = ()
        self._function: Optional[type[Function]] = None
        self._ctx: Optional[Context] = None

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying array (one of the kernel dtypes)."""
        return self.data.dtype

    def astype(self, dtype) -> "Tensor":
        """Cast to another kernel dtype (differentiable; grad casts back)."""
        dtype = kernels.canonical_dtype(dtype)
        if self.data.dtype == dtype:
            return self
        return Cast.apply(self, dtype=dtype)

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The raw numpy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # autograd
    # ------------------------------------------------------------------ #

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1 for scalar tensors (the usual loss case).
        When the graph was built inside a :class:`record_graph` context and
        this tensor is the tape's newest node (a training-loop loss always
        is), the tape's creation order is replayed in reverse instead of
        running the depth-first topological sort — same gradients, none of
        the per-step graph-walk overhead.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        gradients: dict[int, np.ndarray] = {id(self): grad}
        # Interior nodes a gradient has been queued for, so pending work can
        # be recovered if the tape replay does not visit them.
        pending: dict[int, Tensor] = {}
        # Buffers allocated *by this accumulation loop* may be added into in
        # place; the first gradient reaching a node is adopted as-is (it can
        # alias a Function's scratch space, so it must not be mutated).
        owned: set[int] = set()

        def _accumulate_leaf(leaf: "Tensor", leaf_grad: np.ndarray) -> None:
            leaf.grad = leaf_grad if leaf.grad is None else leaf.grad + leaf_grad

        def _propagate(order: Iterable["Tensor"]) -> None:
            for node in order:
                node_grad = gradients.pop(id(node), None)
                if node_grad is None:
                    continue
                pending.pop(id(node), None)
                if node._function is None:
                    if node.requires_grad:
                        _accumulate_leaf(node, node_grad)
                    continue
                input_grads = node._function.backward(node._ctx, node_grad)
                if not isinstance(input_grads, tuple):
                    input_grads = (input_grads,)
                for parent, parent_grad in zip(node._parents, input_grads):
                    if parent_grad is None:
                        continue
                    if parent._function is None:
                        # Leaf tensor: accumulate straight into .grad so the
                        # tape replay (which only visits interior nodes) sees
                        # it too.
                        if parent.requires_grad:
                            _accumulate_leaf(parent, parent_grad)
                        continue
                    key = id(parent)
                    existing = gradients.get(key)
                    if existing is None:
                        gradients[key] = parent_grad
                        pending[key] = parent
                    elif key in owned:
                        existing += parent_grad
                    else:
                        gradients[key] = existing + parent_grad
                        owned.add(key)

        tape = getattr(_GRAD_STATE, "tape", None)
        if tape is not None and tape and tape[-1] is self:
            _propagate(reversed(tape))
            if gradients:
                # Interior nodes built *before* the recording context opened
                # (e.g. a cached subgraph reused inside it) never appear on
                # the tape; finish them with a depth-first order rooted at
                # every node still holding a queued gradient.
                _propagate(_topological_order(list(pending.values())))
        else:
            _propagate(self._topological_order())

    def _topological_order(self) -> list["Tensor"]:
        """Nodes reachable from ``self`` in reverse topological order."""
        return _topological_order([self])

    # ------------------------------------------------------------------ #
    # arithmetic operators (implemented by Functions defined below)
    # ------------------------------------------------------------------ #

    def __add__(self, other: ArrayLike) -> "Tensor":
        return Add.apply(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return Add.apply(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return Subtract.apply(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Subtract.apply(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return Multiply.apply(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return Multiply.apply(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return Divide.apply(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Divide.apply(other, self)

    def __neg__(self) -> "Tensor":
        return Multiply.apply(self, -1.0)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return MatMul.apply(self, other)

    def __pow__(self, exponent: float) -> "Tensor":
        return Power.apply(self, exponent=float(exponent))

    def __getitem__(self, index) -> "Tensor":
        return GetItem.apply(self, index=index)

    # ------------------------------------------------------------------ #
    # math / shape methods
    # ------------------------------------------------------------------ #

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        return ReLU.apply(self)

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        return Abs.apply(self)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return Sqrt.apply(self)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        return Exp.apply(self)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        return Log.apply(self)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        return Sigmoid.apply(self)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axes."""
        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over the given axes."""
        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axes (gradient flows to the first argmax)."""
        return Max.apply(self, axis=axis, keepdims=keepdims, mode="max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over the given axes (gradient flows to the first argmin)."""
        return Max.apply(self, axis=axis, keepdims=keepdims, mode="min")

    def reshape(self, *shape) -> "Tensor":
        """Reshape without copying data."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        """Permute axes."""
        return Transpose.apply(self, axes=tuple(axes) if axes is not None else None)

    def broadcast_to(self, *shape) -> "Tensor":
        """Broadcast to a larger shape (numpy broadcasting rules)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return BroadcastTo.apply(self, shape=shape)

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """Population standard deviation, composed from differentiable primitives."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        variance = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return (variance + eps).sqrt()


# ---------------------------------------------------------------------- #
# elementwise operations
# ---------------------------------------------------------------------- #


class Add(Function):
    """Elementwise addition with numpy broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.attrs["shapes"] = (a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape_a, shape_b = ctx.attrs["shapes"]
        return _unbroadcast(grad, shape_a), _unbroadcast(grad, shape_b)


class Subtract(Function):
    """Elementwise subtraction with numpy broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.attrs["shapes"] = (a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape_a, shape_b = ctx.attrs["shapes"]
        return _unbroadcast(grad, shape_a), _unbroadcast(-grad, shape_b)


class Multiply(Function):
    """Elementwise multiplication with numpy broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return a * b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class Divide(Function):
    """Elementwise division with numpy broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return a / b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        grad_a = _unbroadcast(grad / b, a.shape)
        grad_b = _unbroadcast(-grad * a / (b * b), b.shape)
        return grad_a, grad_b


class Power(Function):
    """Elementwise power with a constant exponent."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, exponent: float = 2.0) -> np.ndarray:
        ctx.save(a)
        ctx.attrs["exponent"] = exponent
        return a**exponent

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        exponent = ctx.attrs["exponent"]
        return (grad * exponent * a ** (exponent - 1.0),)


class ReLU(Function):
    """Rectified linear unit."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        ctx.save(mask)
        return a * mask

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved
        return (grad * mask,)


class Abs(Function):
    """Absolute value (sub-gradient 0 at the origin)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (sign,) = ctx.saved
        return (grad * sign,)


class Sqrt(Function):
    """Elementwise square root."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        result = np.sqrt(a)
        ctx.save(result)
        return result

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (result,) = ctx.saved
        return (grad / (2.0 * result),)


class Exp(Function):
    """Elementwise exponential."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        result = np.exp(a)
        ctx.save(result)
        return result

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (result,) = ctx.saved
        return (grad * result,)


class Log(Function):
    """Elementwise natural logarithm."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save(a)
        return np.log(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        return (grad / a,)


class Sigmoid(Function):
    """Logistic sigmoid."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        result = 1.0 / (1.0 + np.exp(-a))
        ctx.save(result)
        return result

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (result,) = ctx.saved
        return (grad * result * (1.0 - result),)


# ---------------------------------------------------------------------- #
# linear algebra
# ---------------------------------------------------------------------- #


class MatMul(Function):
    """Matrix multiplication (2-D by 2-D, or batched via numpy semantics).

    Dispatches through :func:`repro.nn.kernels.matmul`, so backend selection
    and batch sharding apply to both the forward product and the two
    backward contractions.
    """

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save(a, b)
        return kernels.matmul(a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        grad_a = kernels.matmul(grad, np.swapaxes(b, -1, -2))
        grad_b = kernels.matmul(np.swapaxes(a, -1, -2), grad)
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)


# ---------------------------------------------------------------------- #
# reductions
# ---------------------------------------------------------------------- #


def _expand_reduced(grad: np.ndarray, original_shape: tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the original shape."""
    if axis is None:
        return np.broadcast_to(grad, original_shape).copy()
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(original_shape) for a in axes)
        grad = np.expand_dims(grad, axes)
    return np.broadcast_to(grad, original_shape).copy()


class Sum(Function):
    """Summation over axes."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (
            _expand_reduced(grad, ctx.attrs["shape"], ctx.attrs["axis"], ctx.attrs["keepdims"]),
        )


class Mean(Function):
    """Arithmetic mean over axes."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        result = a.mean(axis=axis, keepdims=keepdims)
        count = a.size / result.size
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims, count=count)
        return result

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        expanded = _expand_reduced(
            grad, ctx.attrs["shape"], ctx.attrs["axis"], ctx.attrs["keepdims"]
        )
        return (expanded / ctx.attrs["count"],)


class Max(Function):
    """Maximum or minimum over axes; gradient goes to the first extremum."""

    @staticmethod
    def forward(
        ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False, mode: str = "max"
    ) -> np.ndarray:
        op = np.max if mode == "max" else np.min
        result = op(a, axis=axis, keepdims=True)
        if grad_enabled():
            mask = a == result
            # Split the gradient among ties to keep the operator's adjoint exact.
            counts = mask.sum(axis=axis, keepdims=True)
            ctx.save(mask, counts)
        ctx.attrs.update(shape=a.shape, axis=axis, keepdims=keepdims)
        return result if keepdims else np.squeeze(result, axis=axis) if axis is not None else result.reshape(())

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        mask, counts = ctx.saved
        expanded = _expand_reduced(grad, ctx.attrs["shape"], ctx.attrs["axis"], ctx.attrs["keepdims"])
        return (expanded * mask / counts,)


# ---------------------------------------------------------------------- #
# shape manipulation
# ---------------------------------------------------------------------- #


class Reshape(Function):
    """Reshape (view) operation."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: tuple[int, ...] = ()) -> np.ndarray:
        ctx.attrs["shape"] = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad.reshape(ctx.attrs["shape"]),)


class Transpose(Function):
    """Axis permutation."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axes: Optional[tuple[int, ...]] = None) -> np.ndarray:
        ctx.attrs["axes"] = axes if axes is not None else tuple(reversed(range(a.ndim)))
        return np.transpose(a, axes)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axes = ctx.attrs["axes"]
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)


class BroadcastTo(Function):
    """Broadcast to a target shape; backward sums over the broadcast axes."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: tuple[int, ...] = ()) -> np.ndarray:
        ctx.attrs["shape"] = a.shape
        # Materialise the broadcast so downstream ops (e.g. im2col's stride
        # tricks) see an ordinary contiguous array rather than a view.
        return np.ascontiguousarray(np.broadcast_to(a, shape))

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (_unbroadcast(grad, ctx.attrs["shape"]),)


class Cast(Function):
    """Dtype cast between kernel dtypes; backward casts the gradient back."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, dtype=None) -> np.ndarray:
        ctx.attrs["dtype"] = a.dtype
        return a.astype(dtype)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad.astype(ctx.attrs["dtype"]),)


class GetItem(Function):
    """Basic and advanced indexing; backward scatter-adds into the source."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, index=None) -> np.ndarray:
        ctx.attrs.update(shape=a.shape, index=index, dtype=a.dtype)
        return a[index]

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        out = np.zeros(ctx.attrs["shape"], dtype=ctx.attrs["dtype"])
        np.add.at(out, ctx.attrs["index"], grad)
        return (out,)


class Concatenate(Function):
    """Concatenation along an axis (variadic)."""

    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        ctx.attrs["axis"] = axis
        ctx.attrs["sizes"] = [array.shape[axis] for array in arrays]
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axis = ctx.attrs["axis"]
        sizes = ctx.attrs["sizes"]
        split_points = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, split_points, axis=axis))


class Stack(Function):
    """Stack along a new axis (variadic)."""

    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        ctx.attrs["axis"] = axis
        return np.stack(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axis = ctx.attrs["axis"]
        pieces = np.split(grad, grad.shape[axis], axis=axis)
        return tuple(np.squeeze(piece, axis=axis) for piece in pieces)


# ---------------------------------------------------------------------- #
# module-level convenience functions
# ---------------------------------------------------------------------- #


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    return Concatenate.apply(*tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    return Stack.apply(*tensors, axis=axis)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Wrap a value in a :class:`Tensor` (no copy for numpy inputs)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
