"""Loss functions.

The paper trains with an L1 loss over the predicted noise map (Eq. 3); MSE
and Huber are provided for ablations.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor, as_tensor


def l1_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean (or summed) absolute error — the paper's training loss (Eq. 3)."""
    target = as_tensor(target)
    difference = (prediction - target).abs()
    return _reduce(difference, reduction)


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean (or summed) squared error."""
    target = as_tensor(target)
    difference = prediction - target
    return _reduce(difference * difference, reduction)


def huber_loss(prediction: Tensor, target, delta: float = 1.0, reduction: str = "mean") -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails.

    Implemented with differentiable primitives only:
    ``0.5 * d^2`` for ``|d| <= delta`` and ``delta * (|d| - 0.5 * delta)``
    otherwise, blended through a ReLU-based split of ``|d|``.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    target = as_tensor(target)
    absolute = (prediction - target).abs()
    # |d| = small + excess with small <= delta and excess = relu(|d| - delta).
    excess = (absolute - delta).relu()
    small = absolute - excess
    loss = 0.5 * small * small + delta * excess
    return _reduce(loss, reduction)


def _reduce(values: Tensor, reduction: str) -> Tensor:
    """Apply the requested reduction."""
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'")
