"""Optimisers.

The paper trains with Adam at a learning rate of 1e-4 (Sec. 3.4.4); plain SGD
with momentum is included for ablations and tests.

Both optimisers run *fused*: optimiser state (momentum / Adam moments) lives
in one flat contiguous buffer per kind, the per-step gradients are gathered
into a flat workspace, and the update math is a handful of vectorised numpy
expressions over the whole parameter vector instead of a Python loop over
dozens of small arrays.  The fused step is bit-exact with the per-parameter
reference formulation (identical elementwise expressions, only the array
layout changes); when some parameter has no gradient the step falls back to
the reference loop so skip semantics are preserved exactly.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.nn.modules import Parameter
from repro.utils import check_positive


class Optimizer:
    """Base class holding the parameter list and the flat-buffer layout.

    The flat layout maps every parameter to a slice of a single contiguous
    vector (in registration order).  Subclasses store their state as flat
    buffers plus per-parameter views of those buffers, so the fused and the
    per-parameter fallback paths always see the same state.
    """

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        offsets = np.cumsum([0] + [parameter.size for parameter in self.parameters])
        self._slices = [
            slice(int(start), int(stop)) for start, stop in zip(offsets[:-1], offsets[1:])
        ]
        self._num_scalars = int(offsets[-1])
        self._grad_buffer: Optional[np.ndarray] = None
        self._data_buffer: Optional[np.ndarray] = None

    def zero_grad(self) -> None:
        """Drop every parameter's gradient (sets them to ``None``).

        Setting to ``None`` instead of filling zero arrays means the next
        backward pass *writes* the first gradient contribution rather than
        accumulating into freshly-allocated zeros — no allocation churn on
        the training hot path.
        """
        for parameter in self.parameters:
            parameter.zero_grad()

    # -- flat-buffer plumbing ------------------------------------------- #

    def _flat_state(self) -> tuple[np.ndarray, list[np.ndarray]]:
        """A zeroed flat state buffer plus its per-parameter reshaped views."""
        flat = np.zeros(self._num_scalars, dtype=np.float64)
        views = [
            flat[piece].reshape(parameter.data.shape)
            for piece, parameter in zip(self._slices, self.parameters)
        ]
        return flat, views

    def _gather_gradients(self) -> Optional[np.ndarray]:
        """Copy all gradients into the flat workspace; ``None`` if any is missing."""
        if any(parameter.grad is None for parameter in self.parameters):
            return None
        if self._grad_buffer is None:
            self._grad_buffer = np.empty(self._num_scalars, dtype=np.float64)
        for parameter, piece in zip(self.parameters, self._slices):
            self._grad_buffer[piece] = parameter.grad.reshape(-1)
        return self._grad_buffer

    def _gather_data(self) -> np.ndarray:
        """Copy all parameter values into the flat data workspace."""
        if self._data_buffer is None:
            self._data_buffer = np.empty(self._num_scalars, dtype=np.float64)
        for parameter, piece in zip(self.parameters, self._slices):
            self._data_buffer[piece] = parameter.data.reshape(-1)
        return self._data_buffer

    def _scatter_update(self, update: np.ndarray) -> None:
        """Apply ``data <- data - update`` slice by slice."""
        for parameter, piece in zip(self.parameters, self._slices):
            parameter.data = parameter.data - update[piece].reshape(parameter.data.shape)

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------- #

    def state_dict(self) -> dict:
        """Copy of the optimiser state (flat buffers + counters).

        The layout is what training checkpoints persist; restoring it with
        :meth:`load_state_dict` into a freshly-built optimiser over the same
        parameter list makes the next :meth:`step` bit-identical to one of
        an uninterrupted run.
        """
        return {"kind": type(self).__name__.lower()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        Raises
        ------
        ValueError
            When the state belongs to a different optimiser kind or a
            different parameter layout (flat-buffer size mismatch).
        """
        if state.get("kind") != type(self).__name__.lower():
            raise ValueError(
                f"optimizer state is for {state.get('kind')!r}, "
                f"not {type(self).__name__.lower()!r}"
            )

    def _check_flat(self, name: str, value: np.ndarray) -> np.ndarray:
        """Validate one flat state buffer against this optimiser's layout."""
        flat = np.asarray(value, dtype=np.float64).reshape(-1)
        if flat.size != self._num_scalars:
            raise ValueError(
                f"optimizer state buffer {name!r} has {flat.size} scalars, "
                f"parameters need {self._num_scalars}"
            )
        return flat


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        check_positive(learning_rate, "learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity_flat, self._velocity = self._flat_state()

    def state_dict(self) -> dict:
        """Copy of the momentum buffer (see :meth:`Optimizer.state_dict`)."""
        state = super().state_dict()
        state["velocity"] = self._velocity_flat.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the momentum buffer in place (views stay valid)."""
        super().load_state_dict(state)
        self._velocity_flat[:] = self._check_flat("velocity", state["velocity"])

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients.

        Runs the fused flat-buffer update when every parameter carries a
        gradient; otherwise falls back to the per-parameter reference loop
        (skipping gradient-less parameters, exactly like the fused path
        never touches state it should not).
        """
        gradient = self._gather_gradients()
        if gradient is not None:
            if self.weight_decay:
                gradient += self.weight_decay * self._gather_data()
            self._velocity_flat *= self.momentum
            self._velocity_flat += gradient
            self._scatter_update(self.learning_rate * self._velocity_flat)
            return
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += gradient
            parameter.data = parameter.data - self.learning_rate * velocity


class Adam(Optimizer):
    """Adam optimiser [Kingma & Ba, 2015] — the paper's training optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        check_positive(learning_rate, "learning_rate")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        check_positive(epsilon, "epsilon")
        self.learning_rate = learning_rate
        self.betas = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment_flat, self._first_moment = self._flat_state()
        self._second_moment_flat, self._second_moment = self._flat_state()

    def state_dict(self) -> dict:
        """Copy of the Adam moments + step count (see :meth:`Optimizer.state_dict`)."""
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["first_moment"] = self._first_moment_flat.copy()
        state["second_moment"] = self._second_moment_flat.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore moments and step count in place (views stay valid)."""
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._first_moment_flat[:] = self._check_flat("first_moment", state["first_moment"])
        self._second_moment_flat[:] = self._check_flat(
            "second_moment", state["second_moment"]
        )

    def step(self) -> None:
        """Apply one Adam update using the currently accumulated gradients.

        The fused path runs the whole moment/bias-correction/update math as
        flat vector expressions (bit-exact with the per-parameter reference);
        the reference loop is kept as the fallback for steps where some
        parameter has no gradient and must keep its state untouched.
        """
        self._step_count += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1**self._step_count
        bias_correction2 = 1.0 - beta2**self._step_count

        gradient = self._gather_gradients()
        if gradient is not None:
            if self.weight_decay:
                gradient += self.weight_decay * self._gather_data()
            first, second = self._first_moment_flat, self._second_moment_flat
            first *= beta1
            first += (1.0 - beta1) * gradient
            second *= beta2
            second += (1.0 - beta2) * gradient * gradient
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            self._scatter_update(
                self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)
            )
            return
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            first *= beta1
            first += (1.0 - beta1) * gradient
            second *= beta2
            second += (1.0 - beta2) * gradient * gradient
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
