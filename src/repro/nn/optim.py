"""Optimisers.

The paper trains with Adam at a learning rate of 1e-4 (Sec. 3.4.4); plain SGD
with momentum is included for ablations and tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.modules import Parameter
from repro.utils import check_positive


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        check_positive(learning_rate, "learning_rate")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += gradient
            parameter.data = parameter.data - self.learning_rate * velocity


class Adam(Optimizer):
    """Adam optimiser [Kingma & Ba, 2015] — the paper's training optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        check_positive(learning_rate, "learning_rate")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        check_positive(epsilon, "epsilon")
        self.learning_rate = learning_rate
        self.betas = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]
        self._second_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def step(self) -> None:
        """Apply one Adam update using the currently accumulated gradients."""
        self._step_count += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1**self._step_count
        bias_correction2 = 1.0 - beta2**self._step_count
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            first *= beta1
            first += (1.0 - beta1) * gradient
            second *= beta2
            second += (1.0 - beta2) * gradient * gradient
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
