"""Minimal dataset / batching utilities used by the training loops."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.utils.random import RandomState, ensure_rng


class ArrayDataset:
    """A dataset of parallel arrays (all indexed along axis 0)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("at least one array is required")
        lengths = {np.asarray(array).shape[0] for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"all arrays must share the first dimension, got lengths {lengths}")
        self.arrays = tuple(np.asarray(array) for array in arrays)

    def __len__(self) -> int:
        return self.arrays[0].shape[0]

    def __getitem__(self, index) -> tuple[np.ndarray, ...]:
        return tuple(array[index] for array in self.arrays)


class BatchIterator:
    """Iterate a dataset in (optionally shuffled) mini-batches.

    Unlike a full dataloader there is no worker machinery: the datasets in
    this project comfortably fit in memory.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 8,
        shuffle: bool = True,
        seed: RandomState = None,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = ensure_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        return full if (self.drop_last or remainder == 0) else full + 1

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and batch.shape[0] < self.batch_size:
                return
            yield self.dataset[batch]
