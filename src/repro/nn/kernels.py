"""Kernel dispatch: the single owner of matmul/im2col/col2im entry points.

Every dense kernel the network executes — the batched GEMM behind a
convolution, the im2col unfold, the col2im fold, the workspace pool feeding
them — routes through this module, so precision policy, threading and
backend selection live in exactly one place:

* **Dtype policy.**  Kernels run in ``float64`` (the bit-exact reference,
  the only dtype the training path accepts) or ``float32`` (the serving
  fast path, roughly half the memory traffic and twice the GEMM
  throughput).  :data:`SUPPORTED_DTYPES` is the closed set; the workspace
  pool is keyed by ``(shape, dtype)`` so a float32 serving thread recycles
  buffers exactly like the float64 training loop does.
* **Thread sharding.**  :func:`matmul` shards a *batched* product across a
  thread pool when the batch is large enough and more than one kernel
  thread is configured (:func:`set_kernel_threads` / the
  ``REPRO_KERNEL_THREADS`` environment variable).  Each shard is an
  independent slice of the batch computed by the same backend call, so the
  sharded result is bit-identical to the single-thread one at any thread
  count — reproducibility is a matter of pinning the thread count in
  config, not of tolerating nondeterminism.
* **Backend registry.**  The pure-numpy :class:`NumpyBackend` is the
  reference implementation; an accelerated backend (a compiled extension,
  a GPU bridge) plugs in behind the same three entry points via
  :func:`register_backend` + :func:`set_backend` (or the scoped
  :class:`use_backend`), without touching any caller.  The ``numpy``
  backend can never be unregistered, so the bit-exact reference is always
  one :func:`set_backend` call away.

Callers (``repro.nn.conv``, ``repro.nn.tensor``) import the module-level
:func:`matmul` / :func:`im2col` / :func:`col2im` functions; they dispatch to
the active backend at call time.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Union

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "canonical_dtype",
    "clear_workspace_pool",
    "col2im",
    "dtype_name",
    "get_backend",
    "get_backend_name",
    "im2col",
    "kernel_threads",
    "matmul",
    "register_backend",
    "release_workspace",
    "set_backend",
    "set_kernel_threads",
    "take_workspace",
    "use_backend",
    "use_kernel_threads",
    "workspace_pool_stats",
]

DtypeLike = Union[str, type, np.dtype]

#: The dtypes kernels may run in.  ``float64`` is the bit-exact reference
#: (and the only dtype the training path accepts); ``float32`` is the
#: low-precision inference path.
SUPPORTED_DTYPES: tuple[np.dtype, ...] = (np.dtype(np.float64), np.dtype(np.float32))

#: Dtype used when nothing selects one explicitly.
DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)


def canonical_dtype(dtype: DtypeLike) -> np.dtype:
    """Validate and normalise a dtype spec to one of :data:`SUPPORTED_DTYPES`.

    Accepts the ``np.dtype`` itself, the scalar type (``np.float32``) or a
    string (``"float32"``); raises ``TypeError`` for anything outside the
    supported set so precision bugs fail loudly at the boundary instead of
    silently deoptimizing deep inside a forward pass.
    """
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise TypeError(f"unsupported kernel dtype {resolved.name!r}; expected one of: {supported}")
    return resolved


def dtype_name(dtype: DtypeLike) -> str:
    """Canonical string name (``"float32"`` / ``"float64"``) of a dtype spec."""
    return canonical_dtype(dtype).name


# ---------------------------------------------------------------------- #
# reference kernels (pure numpy)
# ---------------------------------------------------------------------- #


def _im2col_numpy(
    x_padded: np.ndarray, kernel: int, stride: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unfold sliding windows into columns (reference implementation).

    Parameters
    ----------
    x_padded:
        Padded input, shape ``(N, C, H, W)``.
    kernel / stride:
        Square kernel size and stride.
    out:
        Optional preallocated C-contiguous destination of shape
        ``(N, C * kernel * kernel, OH * OW)`` (e.g. a pooled workspace);
        allocated when omitted.

    Returns
    -------
    Array of shape ``(N, C * kernel * kernel, OH * OW)`` (``out`` if given).
    """
    batch, channels, height, width = x_padded.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x_padded, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]  # (N, C, OH, OW, k, k)
    if out is None:
        out = np.empty((batch, channels * kernel * kernel, out_h * out_w), dtype=x_padded.dtype)
    # Write the transposed windows straight into the (pooled) destination —
    # one fused copy instead of reshape-copy + ascontiguousarray.
    np.copyto(
        out.reshape(batch, channels, kernel, kernel, out_h, out_w),
        windows.transpose(0, 1, 4, 5, 2, 3),
    )
    return out


def _col2im_numpy(
    columns: np.ndarray,
    padded_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col_numpy`: scatter-add columns back into an array."""
    batch, channels, height, width = padded_shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    columns = columns.reshape(batch, channels, kernel, kernel, out_h, out_w)
    output = np.zeros(padded_shape, dtype=columns.dtype)
    for row_offset in range(kernel):
        row_end = row_offset + stride * out_h
        for col_offset in range(kernel):
            col_end = col_offset + stride * out_w
            output[:, :, row_offset:row_end:stride, col_offset:col_end:stride] += columns[
                :, :, row_offset, col_offset, :, :
            ]
    return output


class KernelBackend:
    """Interface an accelerated kernel backend implements.

    A backend owns the three dense entry points.  The contract mirrors the
    reference :class:`NumpyBackend` exactly: same shapes, same dtypes in and
    out, gradients produced by the same adjoint pairing (``im2col`` vs
    ``col2im``).  Accuracy may differ within the tolerance its users gate on
    (the smoke baseline for serving) — the pure-numpy backend remains the
    bit-exact reference an alternative is validated against.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product with numpy broadcasting semantics."""
        raise NotImplementedError

    def im2col(
        self, x_padded: np.ndarray, kernel: int, stride: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Unfold sliding windows into ``(N, C*k*k, OH*OW)`` columns."""
        raise NotImplementedError

    def col2im(
        self,
        columns: np.ndarray,
        padded_shape: tuple[int, int, int, int],
        kernel: int,
        stride: int,
    ) -> np.ndarray:
        """Adjoint of :meth:`im2col`: scatter-add columns into an image."""
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """The pure-numpy reference backend (always registered, never removed)."""

    name = "numpy"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Plain ``np.matmul`` — BLAS GEMM, broadcast over leading axes."""
        return np.matmul(a, b)

    def im2col(
        self, x_padded: np.ndarray, kernel: int, stride: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Stride-tricks unfold with a single fused copy into ``out``."""
        return _im2col_numpy(x_padded, kernel, stride, out=out)

    def col2im(
        self,
        columns: np.ndarray,
        padded_shape: tuple[int, int, int, int],
        kernel: int,
        stride: int,
    ) -> np.ndarray:
        """Loop-over-kernel-offsets scatter-add (k*k strided additions)."""
        return _col2im_numpy(columns, padded_shape, kernel, stride)


# ---------------------------------------------------------------------- #
# backend registry
# ---------------------------------------------------------------------- #

_REGISTRY_LOCK = threading.Lock()
_BACKENDS: dict[str, KernelBackend] = {"numpy": NumpyBackend()}
_ACTIVE_BACKEND = "numpy"
# Thread-local override so `use_backend` on a serving thread can never flip
# the backend under a training loop running concurrently on another thread.
_THREAD_STATE = threading.local()


def register_backend(name: str, backend: KernelBackend, activate: bool = False) -> None:
    """Register an accelerated backend under ``name``.

    Registration alone changes nothing — callers opt in per process with
    :func:`set_backend` or per scope with :class:`use_backend`.  Re-registering
    a name replaces the backend (except ``"numpy"``, which is the immutable
    reference implementation).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name == "numpy":
        raise ValueError("the 'numpy' reference backend cannot be replaced")
    with _REGISTRY_LOCK:
        _BACKENDS[name] = backend
    if activate:
        set_backend(name)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (``"numpy"`` is always present)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_BACKENDS))


def set_backend(name: str) -> None:
    """Select the process-wide active backend by name."""
    with _REGISTRY_LOCK:
        if name not in _BACKENDS:
            raise KeyError(
                f"unknown kernel backend {name!r}; registered: {sorted(_BACKENDS)}"
            )
    global _ACTIVE_BACKEND
    _ACTIVE_BACKEND = name


def get_backend_name() -> str:
    """Name of the backend the calling thread dispatches to."""
    override = getattr(_THREAD_STATE, "backend", None)
    return override if override is not None else _ACTIVE_BACKEND


def get_backend() -> KernelBackend:
    """The backend instance the calling thread dispatches to."""
    with _REGISTRY_LOCK:
        return _BACKENDS[get_backend_name()]


class use_backend:
    """Context manager selecting a backend for the calling thread only."""

    def __init__(self, name: str):
        with _REGISTRY_LOCK:
            if name not in _BACKENDS:
                raise KeyError(
                    f"unknown kernel backend {name!r}; registered: {sorted(_BACKENDS)}"
                )
        self._name = name

    def __enter__(self) -> "use_backend":
        self._previous = getattr(_THREAD_STATE, "backend", None)
        _THREAD_STATE.backend = self._name
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _THREAD_STATE.backend = self._previous


# ---------------------------------------------------------------------- #
# thread sharding
# ---------------------------------------------------------------------- #

def _threads_from_env() -> int:
    raw = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_KERNEL_THREADS must be an integer, got {raw!r}"
        ) from None


_GLOBAL_THREADS = _threads_from_env()

#: Batches smaller than this are never sharded — the shard hand-off costs
#: more than the GEMMs it would parallelise.
_MIN_SHARD_BATCH = 8

_EXECUTOR_LOCK = threading.Lock()
_EXECUTORS: dict[int, ThreadPoolExecutor] = {}


def set_kernel_threads(count: int) -> None:
    """Pin the process-wide kernel thread count (>= 1; 1 = no sharding).

    The thread count is part of the reproducibility config: runs record it
    (e.g. bench trajectories) so a measurement can be replayed bit-identically
    — sharding itself never changes results, only wall-clock.
    """
    if int(count) < 1:
        raise ValueError(f"kernel thread count must be >= 1, got {count}")
    global _GLOBAL_THREADS
    _GLOBAL_THREADS = int(count)


def kernel_threads() -> int:
    """Kernel threads the calling thread dispatches with (thread-local first)."""
    override = getattr(_THREAD_STATE, "threads", None)
    return override if override is not None else _GLOBAL_THREADS


class use_kernel_threads:
    """Context manager pinning the kernel thread count for the calling thread."""

    def __init__(self, count: int):
        if int(count) < 1:
            raise ValueError(f"kernel thread count must be >= 1, got {count}")
        self._count = int(count)

    def __enter__(self) -> "use_kernel_threads":
        self._previous = getattr(_THREAD_STATE, "threads", None)
        _THREAD_STATE.threads = self._count
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _THREAD_STATE.threads = self._previous


def _executor(threads: int) -> ThreadPoolExecutor:
    with _EXECUTOR_LOCK:
        pool = _EXECUTORS.get(threads)
        if pool is None:
            pool = _EXECUTORS[threads] = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix=f"repro-kernel-{threads}"
            )
        return pool


def _shard_bounds(batch: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slices splitting ``batch`` into ``shards`` parts."""
    base, extra = divmod(batch, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


def _sharded_matmul(
    backend: KernelBackend, a: np.ndarray, b: np.ndarray, threads: int
) -> np.ndarray:
    """Shard a batched matmul over the batch axis across ``threads`` workers.

    Each shard is the same backend call on a contiguous batch slice, so the
    result is bit-identical to the unsharded product (numpy's batched matmul
    runs one GEMM per batch element either way).
    """
    a_batched = a.ndim == 3
    b_batched = b.ndim == 3
    batch = a.shape[0] if a_batched else b.shape[0]
    rows = a.shape[-2]
    cols = b.shape[-1]
    out = np.empty((batch, rows, cols), dtype=np.result_type(a, b))

    def run(lo: int, hi: int) -> None:
        out[lo:hi] = backend.matmul(
            a[lo:hi] if a_batched else a, b[lo:hi] if b_batched else b
        )

    bounds = _shard_bounds(batch, min(threads, batch))
    pool = _executor(threads)
    futures = [pool.submit(run, lo, hi) for lo, hi in bounds[1:]]
    run(*bounds[0])  # the caller works too instead of only waiting
    for future in futures:
        future.result()
    return out


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product via the active backend, batch-sharded when configured.

    The dispatch entry point behind every GEMM in the network (tensor
    ``MatMul``, conv forward/backward contractions).  With the default
    single kernel thread this is exactly one backend ``matmul`` call; with
    ``kernel_threads() > 1`` and a batched operand of at least
    ``_MIN_SHARD_BATCH`` items, the batch axis is sharded across the thread
    pool (bit-identical results — see :func:`_sharded_matmul`).
    """
    backend = get_backend()
    threads = kernel_threads()
    if threads > 1 and max(a.ndim, b.ndim) == 3:
        batch = a.shape[0] if a.ndim == 3 else b.shape[0]
        compatible = a.ndim != 3 or b.ndim != 3 or a.shape[0] == b.shape[0]
        if compatible and batch >= _MIN_SHARD_BATCH:
            return _sharded_matmul(backend, a, b, threads)
    return backend.matmul(a, b)


def im2col(
    x_padded: np.ndarray, kernel: int, stride: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unfold sliding windows into columns via the active backend.

    See :func:`_im2col_numpy` for the shape contract.
    """
    return get_backend().im2col(x_padded, kernel, stride, out=out)


def col2im(
    columns: np.ndarray,
    padded_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` via the active backend."""
    return get_backend().col2im(columns, padded_shape, kernel, stride)


# ---------------------------------------------------------------------- #
# workspace pool
# ---------------------------------------------------------------------- #
#
# The unfolded-columns buffer is by far the largest allocation of a
# convolution, and a training step re-creates one per layer per step with
# identical shapes.  Instead of paying the allocator (and page faults) every
# step, released buffers are parked in a per-thread pool keyed by
# (shape, dtype) and handed back out to the next forward pass that needs the
# same buffer.  Ownership is exclusive between take and release, so a buffer
# saved for a backward pass can never be overwritten by a concurrent forward.
#
# The pool dict is ordered by *recency* — taking or releasing a key moves it
# to the back — so when the byte cap forces eviction, the coldest shapes go
# first and a service whose request shapes drift keeps pooling its current
# hot set.

_WORKSPACES = threading.local()

#: Buffers parked per (shape, dtype) key; more than this and extras go to GC.
_MAX_POOLED_PER_KEY = 4

#: Total bytes parked per thread.  A long-lived serving thread sees many
#: distinct (batch, layer, design, dtype) keys over its lifetime; without a
#: global cap each would park up to ``_MAX_POOLED_PER_KEY`` buffers forever.
_MAX_POOLED_BYTES = 64 * 2**20


def _pool() -> "OrderedDict[tuple, list[np.ndarray]]":
    pool = getattr(_WORKSPACES, "pool", None)
    if pool is None:
        pool = _WORKSPACES.pool = OrderedDict()
        _WORKSPACES.pooled_bytes = 0
    return pool


def take_workspace(shape: tuple[int, ...], dtype: DtypeLike = np.float64) -> np.ndarray:
    """Pop a pooled buffer of ``(shape, dtype)``, or allocate a fresh one.

    Always returns a usable buffer: unsupported dtypes simply never hit the
    pool (allocate-only), so callers need no dtype gate of their own.
    """
    dtype = np.dtype(dtype)
    key = (tuple(shape), dtype)
    pool = _pool()
    stack = pool.get(key)
    if stack:
        buffer = stack.pop()
        if not stack:
            del pool[key]
        else:
            pool.move_to_end(key)  # reuse refreshes the key's recency
        _WORKSPACES.pooled_bytes -= buffer.nbytes
        return buffer
    return np.empty(shape, dtype=dtype)


def release_workspace(array: np.ndarray) -> None:
    """Park a buffer for reuse by a later :func:`take_workspace`.

    Only C-contiguous buffers of a :data:`SUPPORTED_DTYPES` member are
    pooled; anything else is left to the garbage collector.
    """
    if array.dtype not in SUPPORTED_DTYPES or not array.flags.c_contiguous:
        return
    pool = _pool()
    if array.nbytes > _MAX_POOLED_BYTES:
        return
    # Evict least-recently-*used* keys until the new buffer fits (the dict is
    # kept in recency order by take/release), so the hottest shapes survive
    # request-shape drift.
    while _WORKSPACES.pooled_bytes + array.nbytes > _MAX_POOLED_BYTES and pool:
        coldest_key = next(iter(pool))
        stack = pool[coldest_key]
        if stack:
            _WORKSPACES.pooled_bytes -= stack.pop().nbytes
        if not stack:
            del pool[coldest_key]
    key = (array.shape, array.dtype)
    stack = pool.setdefault(key, [])
    pool.move_to_end(key)  # releasing refreshes the key's recency too
    if len(stack) < _MAX_POOLED_PER_KEY:
        stack.append(array)
        _WORKSPACES.pooled_bytes += array.nbytes


def workspace_pool_stats() -> dict:
    """Pooled bytes and per-key buffer counts of the calling thread's pool."""
    pool = _pool()
    return {
        "pooled_bytes": int(getattr(_WORKSPACES, "pooled_bytes", 0)),
        "keys": {
            (shape, dtype.name): len(stack) for (shape, dtype), stack in pool.items()
        },
    }


def clear_workspace_pool() -> None:
    """Drop every pooled buffer of the calling thread (tests, memory pressure)."""
    _pool().clear()
    _WORKSPACES.pooled_bytes = 0
