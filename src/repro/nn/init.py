"""Parameter initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.random import RandomState, ensure_rng


def kaiming_uniform(shape: tuple[int, ...], fan_in: int, seed: RandomState = None) -> np.ndarray:
    """He/Kaiming uniform initialisation, the right choice for ReLU networks.

    Samples from ``U(-bound, bound)`` with ``bound = sqrt(6 / fan_in)``.
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    rng = ensure_rng(seed)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, seed: RandomState = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for linear (non-ReLU) layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    rng = ensure_rng(seed)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)
